//! `minnow-run` — command-line driver for the simulated machine.
//!
//! Run any paper workload under any scheduler configuration, on generated
//! analogues or on your own graph files (DIMACS `.gr` / edge lists):
//!
//! ```sh
//! minnow-run sssp --threads 16 --sched wdp
//! minnow-run pr --scale 0.5 --sched software --policy fifo
//! minnow-run bfs --graph my-graph.gr --sched minnow
//! minnow-run cc --sched wdp --credits 64 --csv
//! minnow-run bfs --reorder bfs-order   # renumber nodes before running
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use minnow::algos::WorkloadKind;
use minnow::bench::cli::ArgStream;
use minnow::engine::offload::{MinnowConfig, MinnowScheduler};
use minnow::graph::{io, Csr};
use minnow::runtime::sim_exec::{run, ExecConfig, RunReport};
use minnow::runtime::{PolicyKind, SoftwareScheduler};
use minnow::sim::MemoryHierarchy;

#[derive(Debug)]
struct Args {
    workload: WorkloadKind,
    threads: usize,
    scale: f64,
    seed: u64,
    sched: String,
    policy: Option<String>,
    credits: u32,
    graph_file: Option<String>,
    reorder: Option<String>,
    csv: bool,
}

const USAGE: &str = "\
usage: minnow-run <sssp|bfs|g500|cc|pr|tc|bc> [options]

options:
  --threads N        simulated cores/threads (default 8)
  --scale X          generated-input scale factor (default 0.5)
  --seed N           generator seed (default 42)
  --sched KIND       software | minnow | wdp  (default wdp)
  --policy NAME      software policy: fifo|lifo|chunked|obim|strict
                     (default: the workload's paper policy)
  --credits N        prefetch credits for --sched wdp (default 32)
  --graph FILE       run on a DIMACS .gr or edge-list file instead of a
                     generated input
  --reorder KIND     renumber nodes first: bfs-order | degree-order
  --csv              machine-readable one-line output
";

fn parse_args() -> Result<Args, String> {
    let mut argv = ArgStream::from_env();
    let workload = match argv.next().as_deref() {
        Some("sssp") => WorkloadKind::Sssp,
        Some("bfs") => WorkloadKind::Bfs,
        Some("g500") => WorkloadKind::G500,
        Some("cc") => WorkloadKind::Cc,
        Some("pr") => WorkloadKind::Pr,
        Some("tc") => WorkloadKind::Tc,
        Some("bc") => WorkloadKind::Bc,
        Some(other) => return Err(format!("unknown workload `{other}`")),
        None => return Err("missing workload".into()),
    };
    let mut args = Args {
        workload,
        threads: 8,
        scale: 0.5,
        seed: 42,
        sched: "wdp".into(),
        policy: None,
        credits: 32,
        graph_file: None,
        reorder: None,
        csv: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--threads" => args.threads = argv.parse_at_least("--threads", 1)? as usize,
            "--scale" => args.scale = argv.parse("--scale")?,
            "--seed" => args.seed = argv.parse("--seed")?,
            "--sched" => args.sched = argv.value("--sched")?,
            "--policy" => args.policy = Some(argv.value("--policy")?),
            "--credits" => args.credits = argv.parse("--credits")?,
            "--graph" => args.graph_file = Some(argv.value("--graph")?),
            "--reorder" => args.reorder = Some(argv.value("--reorder")?),
            "--csv" => args.csv = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.threads > 64 {
        return Err("--threads must be in 1..=64".into());
    }
    Ok(args)
}

fn parse_policy(name: &str, default_lg: u32) -> Result<PolicyKind, String> {
    Ok(match name {
        "fifo" => PolicyKind::Fifo,
        "lifo" => PolicyKind::Lifo,
        "chunked" => PolicyKind::Chunked(16),
        "obim" => PolicyKind::Obim(default_lg),
        "strict" => PolicyKind::Strict,
        other => return Err(format!("unknown policy `{other}`")),
    })
}

fn load_graph(args: &Args) -> Result<Arc<Csr>, String> {
    let mut graph = match &args.graph_file {
        None => (*args.workload.input(args.scale, args.seed)).clone(),
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            if path.ends_with(".gr") {
                io::read_dimacs(file).map_err(|e| format!("{path}: {e}"))?
            } else {
                io::read_edge_list(file).map_err(|e| format!("{path}: {e}"))?
            }
        }
    };
    if let Some(kind) = &args.reorder {
        use minnow::graph::reorder;
        let perm = match kind.as_str() {
            "bfs-order" => reorder::bfs_order(&graph, 0),
            "degree-order" => reorder::degree_order(&graph),
            other => return Err(format!("unknown reorder `{other}`")),
        };
        graph = reorder::relabel(&graph, &perm);
    }
    if args.workload == WorkloadKind::Tc {
        graph.sort_adjacency();
    }
    Ok(Arc::new(graph))
}

fn execute(args: &Args, graph: Arc<Csr>) -> Result<(RunReport, String), String> {
    let mut op = args.workload.operator_on(graph.clone());
    let cfg = ExecConfig::new(args.threads);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let report = match args.sched.as_str() {
        "software" => {
            let policy = match &args.policy {
                Some(p) => parse_policy(p, args.workload.lg_bucket())?,
                None => args.workload.build_policy(),
            };
            let mut sched = SoftwareScheduler::new(policy.build(), args.threads);
            run(op.as_mut(), &mut sched, &mut mem, &cfg)
        }
        "minnow" | "wdp" => {
            let mut mc = MinnowConfig::paper(args.workload.lg_bucket());
            mc.prefetch_credits = (args.sched == "wdp").then_some(args.credits);
            let mut sched = MinnowScheduler::new(
                graph,
                op.address_map(),
                op.prefetch_kind(),
                args.threads,
                mc,
            );
            run(op.as_mut(), &mut sched, &mut mem, &cfg)
        }
        other => return Err(format!("unknown scheduler `{other}`")),
    };
    let verdict = match op.check() {
        Ok(()) => "verified".to_string(),
        Err(e) if report.timed_out => format!("not verified (timed out): {e}"),
        Err(e) => format!("WRONG: {e}"),
    };
    Ok((report, verdict))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match load_graph(&args) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (report, verdict) = match execute(&args, graph.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.csv {
        println!(
            "workload,sched,threads,nodes,edges,cycles,tasks,instructions,mpki,prefetch_efficiency,verdict"
        );
        println!(
            "{},{},{},{},{},{},{},{},{:.2},{:.3},{}",
            args.workload,
            args.sched,
            args.threads,
            graph.nodes(),
            graph.edges(),
            report.makespan,
            report.tasks,
            report.instructions,
            report.mpki(),
            report.prefetch_efficiency(),
            verdict
        );
    } else {
        println!("{} on {} nodes / {} edges, {} threads, scheduler `{}`", args.workload, graph.nodes(), graph.edges(), args.threads, args.sched);
        println!("  cycles:       {}", report.makespan);
        println!("  tasks:        {}", report.tasks);
        println!("  instructions: {}", report.instructions);
        println!("  L2 MPKI:      {:.2}", report.mpki());
        if report.prefetch_fills > 0 {
            println!(
                "  prefetching:  {} fills, {:.1}% used before eviction",
                report.prefetch_fills,
                report.prefetch_efficiency() * 100.0
            );
        }
        println!("  result:       {verdict}");
    }
    if verdict.starts_with("WRONG") {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

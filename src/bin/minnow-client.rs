//! `minnow-client` — talk to a running `minnow-serve` daemon.
//!
//! The round-trip example for the serve protocol: build a request,
//! send it over the daemon's Unix socket, and print the deterministic
//! report that comes back (in microseconds when the daemon has seen
//! the point before).
//!
//! ```sh
//! minnow-client ping
//! minnow-client eval --workload SSSP --sched minnow-wdp --threads 8 --scale 0.1
//! minnow-client sweep smoke --scale 0.1 --seed 7 --out smoke.jsonl
//! minnow-client explore smoke --strategy halving
//! minnow-client stats
//! minnow-client shutdown
//! ```

use std::process::ExitCode;

use minnow::algos::WorkloadKind;
use minnow::bench::cli::{write_with_parents, ArgStream};
use minnow::bench::eval::run_to_json;
use minnow::bench::json::JsonObject;
use minnow::bench::runner::{BenchRun, SchedSpec};
use minnow::serve::client::{request_ok, wait_ready};
use minnow::serve::ServeAddr;

const USAGE: &str = "\
usage: minnow-client [--socket ADDR] <command> [options]

commands:
  ping                      check the daemon is up
  eval [flags]              evaluate one configuration, print the report
  sweep NAME [options]      run a named sweep through the daemon
  explore SPACE [options]   run a design-space search through the daemon
  stats                     print daemon statistics
  shutdown                  stop the daemon

common:
  --socket ADDR    daemon address: socket path or host:port
                   (default target/minnow-serve/serve.sock)
  --wait SECS      wait up to SECS for the daemon to come up (default 0)

eval flags:
  --workload W     SSSP|BFS|G500|CC|PR|TC|BC (default BFS)
  --sched S        software|minnow|minnow-wdp|bsp (default minnow)
  --credits N      WDP credit budget (with --sched minnow-wdp)
  --threads N      simulated cores (default 4)
  --scale F        input scale factor (default 0.1)
  --seed N         input seed (default 42)
  --space NS       store namespace (default adhoc)

sweep options:
  --scale F --seed N --headline-threads N --max-threads N
  --filter S       only points whose id contains S
  --out FILE       write the per-point JSONL artifact
  --breakdown FILE write the cycle-accounting JSONL artifact
  --require-cached fail unless every point was served from the store

explore options:
  --strategy KIND  grid | random | halving (default halving)
  --samples N --eta N --seed N --max-fresh N
  --out FILE       write the frontier JSONL artifact
";

fn fail(e: &str) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut argv = ArgStream::from_env();
    let mut addr = ServeAddr::parse("target/minnow-serve/serve.sock");
    let mut wait_secs = 0u64;
    let mut command: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--socket" if command.is_none() => match argv.value("--socket") {
                Ok(v) => addr = ServeAddr::parse(&v),
                Err(e) => return fail(&e),
            },
            "--wait" if command.is_none() => match argv.parse::<u64>("--wait") {
                Ok(v) => wait_secs = v,
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if command.is_none() => command = Some(arg),
            _ => rest.push(arg),
        }
    }
    let Some(command) = command else {
        eprintln!("error: missing command\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    if wait_secs > 0 {
        if let Err(e) = wait_ready(&addr, std::time::Duration::from_secs(wait_secs)) {
            return fail(&e);
        }
    }
    let mut argv = ArgStream::from_vec(rest);
    let outcome = match command.as_str() {
        "ping" => cmd_simple(&addr, "ping"),
        "stats" => cmd_stats(&addr),
        "shutdown" => cmd_simple(&addr, "shutdown"),
        "eval" => cmd_eval(&addr, &mut argv),
        "sweep" => cmd_sweep(&addr, &mut argv),
        "explore" => cmd_explore(&addr, &mut argv),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match outcome {
        Ok(code) => code,
        Err(e) => fail(&e),
    }
}

fn cmd_simple(addr: &ServeAddr, op: &str) -> Result<ExitCode, String> {
    request_ok(addr, &JsonObject::new().str("op", op).finish())?;
    eprintln!("{op}: ok");
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(addr: &ServeAddr) -> Result<ExitCode, String> {
    let doc = request_ok(addr, "{\"op\":\"stats\"}")?;
    let stats = doc.get("serve_stats").ok_or("missing serve_stats")?;
    let store = doc.get("store").ok_or("missing store")?;
    let queue = doc.get("queue").ok_or("missing queue")?;
    println!(
        "requests {}  hits {}  misses {}  coalesced {}  rejected {}",
        stats.u64_field("requests")?,
        stats.u64_field("hits")?,
        stats.u64_field("misses")?,
        stats.u64_field("coalesced")?,
        stats.u64_field("rejected")?,
    );
    println!(
        "sims: {} local, {} via workers ({} requeued); {} evicted",
        stats.u64_field("sim_invocations")?,
        stats.u64_field("worker_results")?,
        stats.u64_field("requeues")?,
        stats.u64_field("evictions")?,
    );
    println!(
        "store: {} entries, {} / {} bytes{}",
        store.u64_field("entries")?,
        store.u64_field("bytes")?,
        store.u64_field("cap_bytes")?,
        if store.bool_field("persistent")? {
            " (persistent)"
        } else {
            " (memory-only)"
        },
    );
    println!(
        "queue: {} pending, {} open (cap {}); {} workers, {} local executors",
        queue.u64_field("pending")?,
        queue.u64_field("open")?,
        queue.u64_field("cap")?,
        doc.u64_field("workers")?,
        doc.u64_field("local_executors")?,
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_eval(addr: &ServeAddr, argv: &mut ArgStream) -> Result<ExitCode, String> {
    let mut workload = "BFS".to_string();
    let mut sched = "minnow".to_string();
    let mut credits: Option<u32> = None;
    let mut threads = 4usize;
    let mut scale = 0.1f64;
    let mut seed = 42u64;
    let mut space = "adhoc".to_string();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--workload" => workload = argv.value("--workload")?,
            "--sched" => sched = argv.value("--sched")?,
            "--credits" => credits = Some(argv.parse("--credits")?),
            "--threads" => threads = argv.parse_at_least("--threads", 1)? as usize,
            "--scale" => scale = argv.parse("--scale")?,
            "--seed" => seed = argv.parse("--seed")?,
            "--space" => space = argv.value("--space")?,
            other => return Err(format!("unknown eval flag `{other}`")),
        }
    }
    let kind = WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(&workload))
        .ok_or_else(|| format!("unknown workload `{workload}`"))?;
    let mut run = match sched.as_str() {
        "software" => BenchRun::software_default(kind, threads),
        "minnow" => BenchRun::minnow(kind, threads),
        "minnow-wdp" => {
            let mut r = BenchRun::minnow(kind, threads);
            r.sched = SchedSpec::Minnow {
                wdp_credits: Some(credits.unwrap_or(32)),
            };
            r
        }
        "bsp" => BenchRun::new(kind, threads, SchedSpec::Bsp(None)),
        other => return Err(format!("unknown sched `{other}`")),
    };
    run.scale = scale;
    run.seed = seed;
    let line = JsonObject::new()
        .str("op", "eval")
        .str("space", &space)
        .str("id", &format!("client/{}/{}", kind.name(), run.sched.label()))
        .raw("run", &run_to_json(&run))
        .finish();
    let doc = request_ok(addr, &line)?;
    let report = doc.get("report").ok_or("missing report")?;
    let cached = doc.bool_field("cached")?;
    println!(
        "{} {} t{} scale {scale} seed {seed}: makespan {} cycles, {} tasks, \
         {} instructions, {} L2 misses{}",
        kind.name(),
        run.sched.label(),
        threads,
        report.u64_field("makespan")?,
        report.u64_field("tasks")?,
        report.u64_field("instructions")?,
        report.u64_field("l2_misses")?,
        if report.bool_field("timed_out")? {
            " (timed out)"
        } else {
            ""
        },
    );
    println!(
        "served in {} us ({})",
        doc.u64_field("wall_us")?,
        if cached { "store hit" } else { "fresh simulation" },
    );
    Ok(ExitCode::SUCCESS)
}

fn str_opt(obj: JsonObject, key: &str, v: &Option<String>) -> JsonObject {
    match v {
        Some(s) => obj.str(key, s),
        None => obj,
    }
}

fn cmd_sweep(addr: &ServeAddr, argv: &mut ArgStream) -> Result<ExitCode, String> {
    let mut name: Option<String> = None;
    let mut scale: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut headline: Option<u64> = None;
    let mut max_threads: Option<u64> = None;
    let mut filter: Option<String> = None;
    let mut out: Option<String> = None;
    let mut breakdown: Option<String> = None;
    let mut require_cached = false;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--scale" => scale = Some(argv.parse("--scale")?),
            "--seed" => seed = Some(argv.parse("--seed")?),
            "--headline-threads" => headline = Some(argv.parse_at_least("--headline-threads", 1)?),
            "--max-threads" => max_threads = Some(argv.parse_at_least("--max-threads", 1)?),
            "--filter" => filter = Some(argv.value("--filter")?),
            "--out" => out = Some(argv.value("--out")?),
            "--breakdown" => breakdown = Some(argv.value("--breakdown")?),
            "--require-cached" => require_cached = true,
            other if !other.starts_with('-') && name.is_none() => name = Some(flag),
            other => return Err(format!("unknown sweep flag `{other}`")),
        }
    }
    let name = name.ok_or("missing sweep name")?;
    let mut obj = JsonObject::new().str("op", "sweep").str("sweep", &name);
    if let Some(v) = scale {
        obj = obj.raw("scale", &format!("{v}"));
    }
    if let Some(v) = seed {
        obj = obj.u64("seed", v);
    }
    if let Some(v) = headline {
        obj = obj.u64("headline_threads", v);
    }
    if let Some(v) = max_threads {
        obj = obj.u64("max_threads", v);
    }
    obj = str_opt(obj, "filter", &filter);
    let doc = request_ok(addr, &obj.finish())?;
    let (points, cached, fresh) = (
        doc.u64_field("points")?,
        doc.u64_field("cached")?,
        doc.u64_field("fresh")?,
    );
    eprintln!(
        "sweep {name}: {points} points, {cached} cached, {fresh} fresh, {} us",
        doc.u64_field("wall_us")?,
    );
    if let Some(path) = out {
        write_with_parents(&path, doc.str_field("jsonl")?)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = breakdown {
        write_with_parents(&path, doc.str_field("breakdown")?)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if require_cached && fresh > 0 {
        return Err(format!(
            "--require-cached: {fresh} of {points} points missed the store"
        ));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_explore(addr: &ServeAddr, argv: &mut ArgStream) -> Result<ExitCode, String> {
    let mut space: Option<String> = None;
    let mut strategy: Option<String> = None;
    let mut samples: Option<u64> = None;
    let mut eta: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut max_fresh: Option<u64> = None;
    let mut out: Option<String> = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--strategy" => strategy = Some(argv.value("--strategy")?),
            "--samples" => samples = Some(argv.parse_at_least("--samples", 1)?),
            "--eta" => eta = Some(argv.parse_at_least("--eta", 2)?),
            "--seed" => seed = Some(argv.parse("--seed")?),
            "--max-fresh" => max_fresh = Some(argv.parse("--max-fresh")?),
            "--out" => out = Some(argv.value("--out")?),
            other if !other.starts_with('-') && space.is_none() => space = Some(flag),
            other => return Err(format!("unknown explore flag `{other}`")),
        }
    }
    let space = space.ok_or("missing space name")?;
    let mut obj = JsonObject::new().str("op", "explore").str("space", &space);
    obj = str_opt(obj, "strategy", &strategy);
    if let Some(v) = samples {
        obj = obj.u64("samples", v);
    }
    if let Some(v) = eta {
        obj = obj.u64("eta", v);
    }
    if let Some(v) = seed {
        obj = obj.u64("seed", v);
    }
    if let Some(v) = max_fresh {
        obj = obj.u64("max_fresh", v);
    }
    let doc = request_ok(addr, &obj.finish())?;
    match doc.str_field("status")? {
        "complete" => {
            eprintln!(
                "explore {space}: complete, {} fresh, {} resumed, {} evaluated",
                doc.u64_field("fresh")?,
                doc.u64_field("resumed")?,
                doc.u64_field("evaluated")?,
            );
            print!("{}", doc.str_field("table")?);
            if let Some(path) = out {
                write_with_parents(&path, doc.str_field("frontier_jsonl")?)
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote {path}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "paused" => {
            eprintln!(
                "explore {space}: paused in wave {} ({} fresh this pass); \
                 re-run to resume",
                doc.u64_field("wave")?,
                doc.u64_field("fresh")?,
            );
            Ok(ExitCode::from(3))
        }
        other => Err(format!("unexpected explore status `{other}`")),
    }
}

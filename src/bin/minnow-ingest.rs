//! `minnow-ingest` — bounded-memory graph ingestion and on-disk CSR images.
//!
//! Converts real-world graph files (edge list, Matrix Market, Graph500
//! binary tuples, DIMACS) into `minnow-csr-image/v1` files via external
//! sort: only the run buffer (`--budget-mb`) and the row-pointer array are
//! ever resident, so scale-20+ inputs build without materializing the edge
//! list in RAM. The same binary streams RMAT edge samples to disk
//! (`--gen`), giving CI and the memory-ceiling check a large input without
//! shipping one.
//!
//! ```sh
//! minnow-ingest graph.el -o graph.mcsr --symmetrize --dedup
//! minnow-ingest --gen rmat:20:16 --seed 42 -o big.el
//! minnow-ingest big.el -o big.mcsr --budget-mb 64 \
//!     --symmetrize --dedup --drop-self-loops --nodes 1048576
//! minnow-sweep smoke --input big.mcsr
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use minnow_bench::cli::{write_with_parents, ArgStream};
use minnow_bench::json::JsonObject;
use minnow_graph::gen::rmat::{self, RmatConfig};
use minnow_graph::ingest::{ingest_file_to_image, IngestOptions};
use minnow_graph::io::GraphSource;

#[derive(Debug)]
struct Args {
    input: Option<String>,
    out: Option<String>,
    format: Option<String>,
    gen: Option<String>,
    seed: u64,
    dedup: bool,
    symmetrize: bool,
    drop_self_loops: bool,
    strip_weights: bool,
    budget_mb: Option<u64>,
    nodes: Option<u64>,
    temp_dir: Option<String>,
    bench_out: Option<String>,
}

const USAGE: &str = "\
usage: minnow-ingest <input> -o <image.mcsr> [options]
       minnow-ingest --gen rmat:<scale>:<edge-factor> --seed N -o <file>

Converts a graph file into a minnow-csr-image/v1 CSR image using
bounded-memory external sort, or streams RMAT edge samples to disk.

input formats (detected from the extension, or forced with --format):
  edge-list (.el/.tsv/.txt)   whitespace-separated `src dst [weight]`,
                              0-based, `#`/`%` comments
  matrix-market (.mtx)        coordinate pattern/integer/real,
                              general or symmetric
  graph500 (.g500/.bin)       16-byte little-endian u64 (src, dst) records
  dimacs (.gr)                `p sp` problem line + `a` arc lines, 1-based

options:
  -o PATH         output path (required). With --gen, the extension picks
                  the rendering: .g500/.bin binary tuples, else text
                  edge list
  --format F      input format: edge-list | matrix-market | graph500 |
                  dimacs (aliases: el, tsv, mtx, g500, bin, gr)
  --dedup         keep one copy of each (src, dst) pair (the minimum
                  weight among duplicates survives)
  --symmetrize    add the reverse of every edge (before dedup)
  --drop-self-loops
                  discard u -> u edges
  --strip-weights ignore input weights; the image stores none
  --budget-mb N   external-sort memory budget in MiB (default 256);
                  smaller budgets spill more sorted runs, output is
                  identical for every value
  --nodes N       node-count floor (pads isolated tail nodes the input's
                  max id cannot express)
  --temp-dir DIR  directory for spill/section temp files (default: the
                  system temp dir)
  --bench-out F   append an ingestion-throughput JSON document
                  (minnow-ingest-throughput/v1) to F
  --gen SPEC      generate instead of ingest: rmat:<scale>:<edge-factor>
                  streams the raw directed RMAT samples (self-loops
                  dropped) to -o without holding them in memory;
                  re-ingesting with --symmetrize --dedup
                  --drop-self-loops --nodes 2^scale reproduces the
                  simulator's generated graph exactly
  --seed N        generator seed (default 42; --gen only)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        out: None,
        format: None,
        gen: None,
        seed: 42,
        dedup: false,
        symmetrize: false,
        drop_self_loops: false,
        strip_weights: false,
        budget_mb: None,
        nodes: None,
        temp_dir: None,
        bench_out: None,
    };
    let mut argv = ArgStream::from_env();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "-o" | "--out" => args.out = Some(argv.value("-o")?),
            "--format" => args.format = Some(argv.value("--format")?),
            "--gen" => args.gen = Some(argv.value("--gen")?),
            "--seed" => args.seed = argv.parse("--seed")?,
            "--dedup" => args.dedup = true,
            "--symmetrize" => args.symmetrize = true,
            "--drop-self-loops" => args.drop_self_loops = true,
            "--strip-weights" => args.strip_weights = true,
            "--budget-mb" => args.budget_mb = Some(argv.parse_at_least("--budget-mb", 1)?),
            "--nodes" => args.nodes = Some(argv.parse_at_least("--nodes", 1)?),
            "--temp-dir" => args.temp_dir = Some(argv.value("--temp-dir")?),
            "--bench-out" => args.bench_out = Some(argv.value("--bench-out")?),
            other if !other.starts_with('-') && args.input.is_none() => {
                args.input = Some(other.to_string())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.out.is_none() {
        return Err("missing -o <output>".into());
    }
    if args.gen.is_none() && args.input.is_none() {
        return Err("missing input file (or --gen)".into());
    }
    if args.gen.is_some() && args.input.is_some() {
        return Err("--gen and an input file are mutually exclusive".into());
    }
    Ok(args)
}

/// Parses `rmat:<scale>:<edge-factor>` into a generator configuration.
fn parse_gen(spec: &str) -> Result<RmatConfig, String> {
    let mut parts = spec.split(':');
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some("rmat"), Some(scale), Some(ef), None) => {
            let scale: u32 = scale
                .parse()
                .map_err(|_| format!("bad scale in --gen `{spec}`"))?;
            let ef: usize = ef
                .parse()
                .map_err(|_| format!("bad edge factor in --gen `{spec}`"))?;
            if scale == 0 || scale > 28 {
                return Err(format!("--gen scale {scale} out of range (1-28)"));
            }
            Ok(RmatConfig::graph500(scale, ef))
        }
        _ => Err(format!(
            "bad --gen spec `{spec}` (expected rmat:<scale>:<edge-factor>)"
        )),
    }
}

/// Streams RMAT samples to `out`: Graph500 binary tuples for `.g500`/`.bin`
/// extensions, a text edge list otherwise.
fn generate(cfg: &RmatConfig, seed: u64, out: &Path) -> std::io::Result<u64> {
    use std::io::Write;
    let binary = matches!(GraphSource::detect(out), GraphSource::Graph500);
    let file = std::fs::File::create(out)?;
    let mut w = std::io::BufWriter::new(file);
    let mut written = 0u64;
    let mut err = None;
    rmat::for_each_edge(cfg, seed, |u, v| {
        if err.is_some() {
            return;
        }
        let r = if binary {
            w.write_all(&u64::from(u).to_le_bytes())
                .and_then(|()| w.write_all(&u64::from(v).to_le_bytes()))
        } else {
            writeln!(w, "{u} {v}")
        };
        match r {
            Ok(()) => written += 1,
            Err(e) => err = Some(e),
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    Ok(written)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let out = args.out.as_deref().expect("checked in parse_args");

    if let Some(spec) = &args.gen {
        let cfg = match parse_gen(spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        let t0 = Instant::now();
        match generate(&cfg, args.seed, Path::new(out)) {
            Ok(edges) => {
                eprintln!(
                    "generated {spec} seed {}: {edges} directed samples -> {out} \
                     ({:.1}s)",
                    args.seed,
                    t0.elapsed().as_secs_f64()
                );
                eprintln!(
                    "reproduce the simulator's graph with: minnow-ingest {out} \
                     -o <image.mcsr> --symmetrize --dedup --drop-self-loops --nodes {}",
                    cfg.nodes()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: writing {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let input = args.input.as_deref().expect("checked in parse_args");
    let format = match args.format.as_deref() {
        None => None,
        Some(s) => match GraphSource::parse(s) {
            Some(GraphSource::Image) => {
                eprintln!("error: the input is already an image; nothing to ingest");
                return ExitCode::FAILURE;
            }
            Some(f) => Some(f),
            None => {
                eprintln!("error: unknown --format `{s}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
    };
    let opts = IngestOptions {
        dedup: args.dedup,
        drop_self_loops: args.drop_self_loops,
        symmetrize: args.symmetrize,
        strip_weights: args.strip_weights,
        budget_bytes: args.budget_mb.map_or(256 << 20, |mb| (mb as usize) << 20),
        nodes_hint: args.nodes,
        temp_dir: args.temp_dir.as_ref().map(Into::into),
    };

    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let report = match ingest_file_to_image(Path::new(input), format, Path::new(out), &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: ingesting {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = t0.elapsed();
    let out_bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    let rate = if wall.as_secs_f64() > 0.0 {
        report.edges_read as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    eprintln!(
        "ingested {input}: {} edges read, {} kept, {} nodes, {} ({} sorted run(s)) \
         -> {out} ({} bytes) in {:.1}s ({:.0} edges/s)",
        report.edges_read,
        report.edges_kept,
        report.nodes,
        if report.weighted {
            "weighted"
        } else {
            "unweighted"
        },
        report.runs,
        out_bytes,
        wall.as_secs_f64(),
        rate
    );

    if let Some(path) = &args.bench_out {
        let doc = JsonObject::new()
            .str("schema", "minnow-ingest-throughput/v1")
            .str("input", input)
            .str("image", out)
            .u64("input_bytes", in_bytes)
            .u64("image_bytes", out_bytes)
            .u64("edges_read", report.edges_read)
            .u64("edges_kept", report.edges_kept)
            .u64("nodes", report.nodes)
            .bool("weighted", report.weighted)
            .u64("runs", report.runs as u64)
            .u64("budget_bytes", opts.budget_bytes as u64)
            .u64("wall_ms", wall.as_millis() as u64)
            .f64("edges_per_sec", rate)
            .finish()
            + "\n";
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| {
                use std::io::Write;
                f.write_all(doc.as_bytes())
            });
        let result = match appended {
            Ok(()) => Ok(()),
            // Fall back to creating parents for fresh paths.
            Err(_) => write_with_parents(path, &doc),
        };
        if let Err(e) = result {
            eprintln!("error: writing benchmark document to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("appended ingestion-throughput document to {path}");
    }
    ExitCode::SUCCESS
}

//! `minnow-sweep` — parallel sweep driver for the evaluation figures.
//!
//! Enumerates a named sweep (a figure's full set of simulation points),
//! fans the points across a work-stealing thread pool, and writes
//! machine-readable artifacts: one JSON object per point
//! (`<sweep>.jsonl`) plus a summary (`<sweep>.summary.json`).
//!
//! ```sh
//! minnow-sweep --list
//! minnow-sweep fig16 --threads 8
//! minnow-sweep fig15 --filter /SSSP/ --out results/
//! minnow-sweep smoke --scale 0.05 --stdout
//! minnow-sweep credits --dry-run      # enumerate, don't simulate
//! ```
//!
//! Output is deterministic: for a fixed sweep, filter, scale, and seed,
//! the JSON-lines artifact is byte-identical regardless of `--threads`
//! (the across-point pool) and `--point-threads` (bound-weave
//! simulation threads inside each point).

use std::process::ExitCode;

use minnow_bench::cli::{validate_point_budget, write_with_parents, ArgStream};
use minnow_bench::runner::InputSpec;
use minnow_bench::sweep::{run_sweep, IngestStats, Sweep, SweepConfig, SweepParams};
use minnow_graph::image::LoadMode;
use minnow_graph::io::GraphSource;

#[derive(Debug)]
struct Args {
    sweep: Option<String>,
    list: bool,
    dry_run: bool,
    threads: Option<usize>,
    point_threads: Option<usize>,
    pin_point_threads: bool,
    front_shards: Option<usize>,
    speculate: Option<bool>,
    filter: Option<String>,
    out: String,
    scale: Option<f64>,
    seed: Option<u64>,
    stdout: bool,
    input: Option<String>,
    input_format: Option<String>,
    input_mode: Option<String>,
    trace_out: Option<String>,
    bench_out: Option<String>,
    bench_baseline: Option<String>,
    bench_baseline_line: usize,
}

const USAGE: &str = "\
usage: minnow-sweep <sweep> [options]
       minnow-sweep --list

sweeps: fig15 | fig16 | credits | channels | smoke

options:
  --threads N     sweep-pool worker threads (default: MINNOW_SWEEP_THREADS
                  or the machine's available parallelism)
  --point-threads N
                  host threads simulating each single point (default 1;
                  N >= 2 enables sharded bound-weave mode — simulated
                  results and every artifact stay byte-identical, only
                  host wall-clock changes; traced points always run
                  serially). An adaptive fallback runs tiny points
                  serially so N >= 2 is never a wall-clock regression
  --pin-point-threads
                  disable the adaptive fallback: always shard when
                  --point-threads >= 2, even for tiny workloads or on
                  narrow hosts (determinism testing; outcomes are
                  identical either way)
  --front-shards N
                  split each point's --point-threads budget explicitly:
                  N front threads own contiguous blocks of simulated
                  cores (relaying the simulation spine on the epoch
                  min-clock), the rest serve as weave lanes. Requires
                  --point-threads >= 2 and N within the budget. Default:
                  the planner splits the budget evenly. Artifacts are
                  byte-identical for every split
  --speculate on|off
                  speculative shard overlap: with >= 2 front shards,
                  idle shards pre-execute the private prefix of their
                  next task in canonical order and the holder commits
                  validated records (default on; also settable via
                  MINNOW_SPECULATE). Artifacts are byte-identical either
                  way — only host wall-clock and the --bench-out
                  speculation counters change
  --filter STR    run only points whose id contains STR
  --out DIR       artifact directory (default target/minnow-sweep)
  --scale X       input scale factor (default: MINNOW_BENCH_SCALE or 0.3)
  --seed N        sweep seed; point seeds are derived from it
                  (default: MINNOW_BENCH_SEED or 42)
  --stdout        print the JSON-lines records instead of writing files
  --input PATH    run every point on this external graph instead of the
                  generated inputs (edge list, Matrix Market, Graph500
                  binary, DIMACS, or a minnow-csr-image file; format
                  detected from the extension). Per-point JSONL records
                  are unchanged: the same graph via text, image, or mmap
                  yields byte-identical artifacts
  --input-format F
                  override format detection: edge-list | matrix-market |
                  graph500 | dimacs | image (aliases: el, tsv, mtx, g500,
                  bin, gr, mcsr)
  --input-mode M  how to load an image input: auto (default) | mmap | read
  --dry-run       print the selected points (id, workload, scheduler,
                  threads, scale, seed) without simulating anything
  --trace-out F   capture structured traces and write a Chrome
                  trace_event JSON (Perfetto-loadable) to F; simulation
                  results and the JSONL artifact are unchanged
  --bench-out F   write a host wall-clock benchmark document to F
                  (per-point wall time, tasks/sec, accesses/sec);
                  simulation results and the JSONL artifact are unchanged
  --bench-baseline F
                  regression gate: read a prior --bench-out document
                  from F and exit non-zero if this run's total wall_ms
                  exceeds the baseline's by more than 25%
  --bench-baseline-line N
                  which line of the baseline file to gate against when
                  it holds several benchmark documents (1-based,
                  default 1)
  --list          list sweep names and point counts, then exit
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sweep: None,
        list: false,
        dry_run: false,
        threads: None,
        point_threads: None,
        pin_point_threads: false,
        front_shards: None,
        speculate: None,
        filter: None,
        out: "target/minnow-sweep".into(),
        scale: None,
        seed: None,
        stdout: false,
        input: None,
        input_format: None,
        input_mode: None,
        trace_out: None,
        bench_out: None,
        bench_baseline: None,
        bench_baseline_line: 1,
    };
    let mut argv = ArgStream::from_env();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--list" => args.list = true,
            "--dry-run" => args.dry_run = true,
            "--threads" => args.threads = Some(argv.parse_at_least("--threads", 1)? as usize),
            "--point-threads" => {
                args.point_threads = Some(argv.parse_at_least("--point-threads", 1)? as usize)
            }
            "--pin-point-threads" => args.pin_point_threads = true,
            "--front-shards" => {
                args.front_shards = Some(argv.parse_at_least("--front-shards", 1)? as usize)
            }
            "--speculate" => {
                args.speculate = Some(match argv.value("--speculate")?.as_str() {
                    "on" | "1" | "true" => true,
                    "off" | "0" | "false" => false,
                    other => {
                        return Err(format!("--speculate expects on|off, got `{other}`"))
                    }
                })
            }
            "--filter" => args.filter = Some(argv.value("--filter")?),
            "--out" => args.out = argv.value("--out")?,
            "--scale" => args.scale = Some(argv.parse("--scale")?),
            "--seed" => args.seed = Some(argv.parse("--seed")?),
            "--stdout" => args.stdout = true,
            "--input" => args.input = Some(argv.value("--input")?),
            "--input-format" => args.input_format = Some(argv.value("--input-format")?),
            "--input-mode" => args.input_mode = Some(argv.value("--input-mode")?),
            "--trace-out" => args.trace_out = Some(argv.value("--trace-out")?),
            "--bench-out" => args.bench_out = Some(argv.value("--bench-out")?),
            "--bench-baseline" => args.bench_baseline = Some(argv.value("--bench-baseline")?),
            "--bench-baseline-line" => {
                args.bench_baseline_line = argv.parse_at_least("--bench-baseline-line", 1)? as usize
            }
            other if !other.starts_with('-') && args.sweep.is_none() => {
                args.sweep = Some(other.to_string())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !args.list && args.sweep.is_none() {
        return Err("missing sweep name".into());
    }
    if let Some(warning) =
        validate_point_budget(args.point_threads, args.front_shards, args.pin_point_threads)?
    {
        eprintln!("{warning}");
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut params = SweepParams::from_env();
    if let Some(scale) = args.scale {
        params.scale = scale;
    }
    if let Some(seed) = args.seed {
        params.seed = seed;
    }

    if args.list {
        println!("{:<10} {:>7}  axes", "sweep", "points");
        for name in Sweep::NAMES {
            let sweep = Sweep::named(name, &params).expect("every listed name enumerates");
            println!("{:<10} {:>7}  {}", name, sweep.points.len(), sweep_axes(name));
        }
        return ExitCode::SUCCESS;
    }

    let name = args.sweep.as_deref().expect("checked in parse_args");
    let Some(sweep) = Sweep::named(name, &params) else {
        eprintln!("error: unknown sweep `{name}`\n\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut cfg = SweepConfig::from_env();
    if let Some(threads) = args.threads {
        cfg.threads = threads;
    }
    if let Some(pt) = args.point_threads {
        cfg.point_threads = pt;
    }
    cfg.pin_point_threads = args.pin_point_threads;
    cfg.front_shards = args.front_shards;
    cfg.speculate = args.speculate;
    cfg.filter = args.filter.clone();
    cfg.trace = args.trace_out.is_some();

    // Pre-load any external input before fanning points out: a bad file
    // fails fast with one clear message, the load is timed once for the
    // bench document, and the process-wide cache is warm for every worker.
    let mut ingest_stats = None;
    if let Some(path) = &args.input {
        let format = match args.input_format.as_deref() {
            None => None,
            Some(s) => match GraphSource::parse(s) {
                Some(f) => Some(f),
                None => {
                    eprintln!("error: unknown --input-format `{s}`\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let mode = match args.input_mode.as_deref() {
            None => LoadMode::Auto,
            Some(s) => match LoadMode::parse(s) {
                Some(m) => m,
                None => {
                    eprintln!("error: unknown --input-mode `{s}`\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let spec = InputSpec {
            path: path.into(),
            format,
            mode,
        };
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let t0 = std::time::Instant::now();
        match minnow_algos::suite::file_input(&spec.path, spec.format, spec.mode, false) {
            Ok(g) => {
                let wall = t0.elapsed();
                eprintln!(
                    "input {path}: {} nodes, {} edges ({} bytes, loaded in {:.1} ms)",
                    g.nodes(),
                    g.edges(),
                    bytes,
                    wall.as_secs_f64() * 1e3
                );
                ingest_stats = Some(IngestStats {
                    path: path.clone(),
                    mode: mode.label().into(),
                    nodes: g.nodes() as u64,
                    edges: g.edges() as u64,
                    bytes,
                    wall_us: wall.as_micros() as u64,
                });
            }
            Err(e) => {
                eprintln!("error: input {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        cfg.input = Some(spec);
    }

    let selected = sweep.selected(&cfg);
    if selected.is_empty() {
        eprintln!(
            "error: filter `{}` matches none of {}'s {} points",
            args.filter.as_deref().unwrap_or(""),
            sweep.name,
            sweep.points.len()
        );
        return ExitCode::FAILURE;
    }

    if args.dry_run {
        let id_width = selected
            .iter()
            .map(|p| p.id.len())
            .max()
            .unwrap_or(2)
            .max("id".len());
        println!(
            "{:<id_width$} {:<8} {:<10} {:>7} {:>7} {:>20}",
            "id", "workload", "sched", "threads", "scale", "seed"
        );
        for point in &selected {
            println!(
                "{:<id_width$} {:<8} {:<10} {:>7} {:>7} {:>20}",
                point.id,
                point.run.kind.name(),
                point.run.sched.label(),
                point.run.threads,
                point.run.scale,
                point.run.seed
            );
        }
        eprintln!(
            "dry run: {}/{} points selected, nothing simulated",
            selected.len(),
            sweep.points.len()
        );
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "sweep {}: {}/{} points, pool of {} thread(s), scale {}, seed {}",
        sweep.name,
        selected.len(),
        sweep.points.len(),
        cfg.threads.max(1).min(selected.len()),
        params.scale,
        params.seed
    );

    let mut result = run_sweep(&sweep, &cfg);
    result.ingest = ingest_stats;
    let timed_out = result.points.iter().filter(|p| p.report.timed_out).count();

    if let Some(path) = &args.trace_out {
        let doc = result
            .chrome_trace_json()
            .expect("tracing was enabled, every point captured a trace");
        if let Err(e) = write_with_parents(path, &doc) {
            eprintln!("error: writing trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote trace to {path} (load in https://ui.perfetto.dev)");
    }

    if let Some(path) = &args.bench_out {
        let doc = result.bench_json() + "\n";
        if let Err(e) = write_with_parents(path, &doc) {
            eprintln!("error: writing benchmark document to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote wall-clock benchmark document to {path}");
    }

    if args.stdout {
        print!("{}", result.jsonl());
        eprintln!("{}", result.summary_json());
    } else {
        match result.write_artifacts(std::path::Path::new(&args.out)) {
            Ok((jsonl, summary)) => {
                eprintln!("wrote {} and {}", jsonl.display(), summary.display());
            }
            Err(e) => {
                eprintln!("error: writing artifacts under {}: {e}", args.out);
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "done: {} points in {:.1}s{}",
        result.points.len(),
        result.wall.as_secs_f64(),
        if timed_out > 0 {
            format!(" ({timed_out} timed out)")
        } else {
            String::new()
        }
    );

    if let Some(path) = &args.bench_baseline {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: reading benchmark baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(line) = doc.lines().filter(|l| !l.trim().is_empty()).nth(args.bench_baseline_line - 1)
        else {
            eprintln!(
                "error: benchmark baseline {path} has no line {}",
                args.bench_baseline_line
            );
            return ExitCode::FAILURE;
        };
        let Some(baseline_ms) = baseline_wall_ms(line) else {
            eprintln!(
                "error: no \"wall_ms\" field on line {} of benchmark baseline {path}",
                args.bench_baseline_line
            );
            return ExitCode::FAILURE;
        };
        let now_ms = result.wall.as_millis() as u64;
        // >25% slower than the baseline fails the gate. Ratios are
        // compared in integer arithmetic: now * 100 > baseline * 125.
        if now_ms * 100 > baseline_ms * 125 {
            eprintln!(
                "error: wall-clock regression: {now_ms} ms vs baseline {baseline_ms} ms \
                 (> +25%; baseline {path})"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("bench gate: {now_ms} ms vs baseline {baseline_ms} ms (within +25%)");
    }
    ExitCode::SUCCESS
}

/// Extracts the total `"wall_ms"` value from one `--bench-out` document.
///
/// The document is this binary's own fixed-order serialization
/// (`minnow-bench-wallclock/v1`), whose first `"wall_ms"` key is the
/// sweep total — per-point timings use `"wall_us"` — so a plain scan
/// suffices and avoids a JSON-parser dependency.
fn baseline_wall_ms(doc: &str) -> Option<u64> {
    let at = doc.find("\"wall_ms\":")? + "\"wall_ms\":".len();
    let rest = &doc[at..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn sweep_axes(name: &str) -> &'static str {
    match name {
        "fig15" => "scalability: workload x {serial,galois,minnow} x threads",
        "fig16" => "overall speedup: workload x {software,minnow,wdp}",
        "credits" => "figs 18-20: workload x {nopf,c1..c256,imp}",
        "channels" => "fig 21: workload x {nopf,wdp} x DRAM channels",
        "smoke" => "tiny end-to-end check: 2 workloads x 3 schedulers",
        _ => "",
    }
}

//! `minnow-explore` — checkpointed design-space exploration.
//!
//! Searches a declared parameter space (prefetch credits, L2 geometry,
//! engine queue sizing, thread counts, workloads) for configurations
//! that buy the most simulated speedup per mm² of engine silicon
//! (§5.4 area model). Every simulated evaluation is journaled before
//! the search advances, so a killed run resumes exactly where it
//! stopped and produces a byte-identical frontier.
//!
//! ```sh
//! minnow-explore --list
//! minnow-explore smoke --strategy grid
//! minnow-explore golden-fig16 --strategy halving --eta 2
//! minnow-explore --space-file my.space --strategy random --samples 16
//! minnow-explore credits-bfs --max-evals 10     # budgeted slice; exit 3 = paused
//! minnow-explore credits-bfs                    # ...and this resumes it
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use minnow::bench::cli::{validate_point_budget, ArgStream};
use minnow::explore::{
    explore, write_frontier_artifacts, ExploreConfig, ExploreOutcome, Space, Strategy,
};

/// Exit code for a budget pause: the search is consistent on disk and a
/// re-invocation continues it (distinct from failure's 1).
const EXIT_PAUSED: u8 = 3;

#[derive(Debug)]
struct Args {
    space: Option<String>,
    space_file: Option<String>,
    list: bool,
    dry_run: bool,
    fresh: bool,
    verbose: bool,
    strategy: String,
    samples: usize,
    eta: usize,
    seed: u64,
    threads: Option<usize>,
    point_threads: usize,
    pin_point_threads: bool,
    front_shards: Option<usize>,
    speculate: Option<bool>,
    out: String,
    max_evals: Option<usize>,
}

const USAGE: &str = "\
usage: minnow-explore <space> [options]
       minnow-explore --space-file FILE [options]
       minnow-explore --list

spaces: smoke | golden-fig16 | credits-bfs | --space-file FILE

options:
  --strategy KIND  grid | random | halving  (default halving)
  --samples N      candidates for --strategy random (default 8)
  --eta N          halving reduction factor (default 2): the top
                   ceil(n/eta) of each area class survive a rung
  --seed N         search seed: graphs and random sampling (default 42)
  --threads N      sweep-pool worker threads (default:
                   MINNOW_SWEEP_THREADS or available parallelism)
  --point-threads N
                   bound-weave threads per simulation point (default 1;
                   an adaptive fallback runs tiny points serially)
  --pin-point-threads
                   disable the adaptive fallback: always shard when
                   --point-threads >= 2 (outcomes identical either way)
  --front-shards N split each point's --point-threads budget: N front
                   threads over the simulated cores, the rest as weave
                   lanes (requires --point-threads >= 2; outcomes are
                   identical for every split)
  --speculate on|off
                   speculative shard overlap between front shards
                   (default on with >= 2 fronts; outcome-neutral)
  --out DIR        artifact + journal directory
                   (default target/minnow-explore)
  --max-evals N    run at most N fresh simulations, then checkpoint and
                   exit with code 3; re-invoking resumes (the final
                   frontier is byte-identical to an uninterrupted run)
  --fresh          delete any existing journal for this search first
  --dry-run        print the space's configurations without simulating
  --verbose        narrate waves and per-point results to stderr
  --list           list built-in spaces and their sizes, then exit

exit codes: 0 complete, 1 error, 3 paused (budget exhausted)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        space: None,
        space_file: None,
        list: false,
        dry_run: false,
        fresh: false,
        verbose: false,
        strategy: "halving".into(),
        samples: 8,
        eta: 2,
        seed: 42,
        threads: None,
        point_threads: 1,
        pin_point_threads: false,
        front_shards: None,
        speculate: None,
        out: "target/minnow-explore".into(),
        max_evals: None,
    };
    let mut argv = ArgStream::from_env();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--list" => args.list = true,
            "--dry-run" => args.dry_run = true,
            "--fresh" => args.fresh = true,
            "--verbose" => args.verbose = true,
            "--space-file" => args.space_file = Some(argv.value("--space-file")?),
            "--strategy" => args.strategy = argv.value("--strategy")?,
            "--samples" => args.samples = argv.parse_at_least("--samples", 1)? as usize,
            "--eta" => args.eta = argv.parse_at_least("--eta", 2)? as usize,
            "--seed" => args.seed = argv.parse("--seed")?,
            "--threads" => args.threads = Some(argv.parse_at_least("--threads", 1)? as usize),
            "--point-threads" => {
                args.point_threads = argv.parse_at_least("--point-threads", 1)? as usize
            }
            "--pin-point-threads" => args.pin_point_threads = true,
            "--front-shards" => {
                args.front_shards = Some(argv.parse_at_least("--front-shards", 1)? as usize)
            }
            "--speculate" => {
                args.speculate = Some(match argv.value("--speculate")?.as_str() {
                    "on" | "1" | "true" => true,
                    "off" | "0" | "false" => false,
                    other => {
                        return Err(format!("--speculate expects on|off, got `{other}`"))
                    }
                })
            }
            "--out" => args.out = argv.value("--out")?,
            "--max-evals" => args.max_evals = Some(argv.parse::<u64>("--max-evals")? as usize),
            other if !other.starts_with('-') && args.space.is_none() => {
                args.space = Some(other.to_string())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !args.list && args.space.is_none() && args.space_file.is_none() {
        return Err("missing space name (or --space-file)".into());
    }
    if args.space.is_some() && args.space_file.is_some() {
        return Err("give either a space name or --space-file, not both".into());
    }
    if let Some(warning) =
        validate_point_budget(Some(args.point_threads), args.front_shards, args.pin_point_threads)?
    {
        eprintln!("{warning}");
    }
    Ok(args)
}

fn load_space(args: &Args) -> Result<Space, String> {
    if let Some(path) = &args.space_file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        return Space::parse(&text).map_err(|e| format!("{path}: {e}"));
    }
    let name = args.space.as_deref().expect("checked in parse_args");
    Space::named(name)
        .ok_or_else(|| format!("unknown space `{name}` (try --list or --space-file)"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        println!("{:<14} {:>8} {:>7}  rungs", "space", "configs", "rungs");
        for name in Space::NAMES {
            let space = Space::named(name).expect("every listed name resolves");
            let rungs: Vec<String> = space.rungs.iter().map(|r| format!("{r}")).collect();
            println!(
                "{:<14} {:>8} {:>7}  {}",
                name,
                space.configs().len(),
                space.rungs.len(),
                rungs.join(" -> ")
            );
        }
        return ExitCode::SUCCESS;
    }

    let space = match load_space(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let strategy = match Strategy::from_flags(&args.strategy, args.samples, args.eta) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.dry_run {
        let configs = space.configs();
        let id_width = configs.iter().map(|c| c.id.len()).max().unwrap_or(2).max(2);
        println!("{:<id_width$} {:>10}", "id", "area mm2");
        for c in &configs {
            println!("{:<id_width$} {:>10.4}", c.id, c.area_mm2());
        }
        eprintln!(
            "dry run: space {} has {} configurations over {} rungs, nothing simulated",
            space.name,
            configs.len(),
            space.rungs.len()
        );
        return ExitCode::SUCCESS;
    }

    let out = PathBuf::from(&args.out);
    let journal_path = out.join(format!(
        "{}.{}.s{}.journal.jsonl",
        space.name,
        strategy.label(),
        args.seed
    ));
    if args.fresh {
        match std::fs::remove_file(&journal_path) {
            Ok(()) => eprintln!("removed journal {}", journal_path.display()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!("error: removing {}: {e}", journal_path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let cfg = ExploreConfig {
        space,
        strategy,
        seed: args.seed,
        pool_threads: args.threads.unwrap_or_else(minnow::bench::sweep_threads),
        point_threads: args.point_threads,
        pin_point_threads: args.pin_point_threads,
        front_shards: args.front_shards,
        speculate: args.speculate,
        max_fresh_evals: args.max_evals,
        journal_path,
        verbose: args.verbose,
    };
    eprintln!(
        "explore {}: strategy {}, seed {}, {} configurations, journal {}",
        cfg.space.name,
        cfg.strategy.label(),
        cfg.seed,
        cfg.space.configs().len(),
        cfg.journal_path.display()
    );

    match explore(&cfg) {
        Ok(ExploreOutcome::Complete {
            frontier,
            fresh,
            resumed,
        }) => {
            match write_frontier_artifacts(&out, &frontier) {
                Ok((jsonl, table)) => {
                    eprintln!("wrote {} and {}", jsonl.display(), table.display());
                }
                Err(e) => {
                    eprintln!("error: writing frontier under {}: {e}", out.display());
                    return ExitCode::FAILURE;
                }
            }
            print!("{}", frontier.table());
            eprintln!(
                "done: {} fresh simulations, {} from the journal, {} sim tasks, \
                 {} Pareto-optimal of {} evaluated",
                fresh,
                resumed,
                frontier.sim_tasks,
                frontier.pareto_ids().len(),
                frontier.evaluated
            );
            ExitCode::SUCCESS
        }
        Ok(ExploreOutcome::Paused {
            fresh,
            resumed,
            wave,
            remaining_in_wave,
        }) => {
            eprintln!(
                "paused: budget of {} fresh simulations exhausted in wave {wave} \
                 ({remaining_in_wave} evaluations still pending there; {resumed} were \
                 already journaled). Re-run the same command to resume.",
                fresh
            );
            ExitCode::from(EXIT_PAUSED)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

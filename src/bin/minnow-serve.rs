//! `minnow-serve` — the resident evaluation daemon (and its workers).
//!
//! In daemon mode the process binds a Unix domain socket (plus an
//! optional HTTP/1.1 listener), keeps the hot input graphs in memory,
//! and memoizes every evaluation in a content-addressed store so a
//! repeated request is answered in microseconds without touching the
//! simulator. In worker mode (`--worker ADDR`) the process connects
//! *out* to a daemon and pulls simulation jobs, streaming back
//! journal-schema results; a killed worker's unacknowledged job is
//! simply re-issued.
//!
//! ```sh
//! minnow-serve --socket target/serve.sock --store target/store.jsonl &
//! minnow-client --socket target/serve.sock sweep smoke --scale 0.1
//! minnow-serve --worker target/serve.sock        # extra horsepower
//! minnow-client --socket target/serve.sock shutdown
//! ```
//!
//! There is no signal handling: stop the daemon with the `shutdown` op
//! (`minnow-client shutdown`). A hard kill is safe — the store and the
//! exploration journals are append-only with torn-tail recovery — but
//! skips the shutdown summary.

use std::path::PathBuf;
use std::process::ExitCode;

use minnow::bench::cli::ArgStream;
use minnow::serve::{run_worker, Daemon, ServeAddr, ServeConfig, WorkerConfig};

const USAGE: &str = "\
usage: minnow-serve [options]                start the daemon
       minnow-serve --worker ADDR [options]  pull jobs from a daemon

daemon options:
  --socket PATH     Unix socket to listen on
                    (default target/minnow-serve/serve.sock)
  --http ADDR       also serve HTTP/1.1 on host:port (POST /eval,
                    POST /sweep, POST /explore, GET /stats)
  --store PATH      persist the result store to this JSONL file
                    (default: memory-only)
  --store-cap-mb N  store size cap in MiB (default 64)
  --executors N     local simulation threads (default: host cores;
                    0 = serve only from the store and remote workers)
  --queue-cap N     admission-control cap on open jobs (default 64)
  --point-threads N bound-weave threads per simulation (default 1)
  --out DIR         artifact + journal directory for sweep/explore ops
                    (default target/minnow-serve)
  --verbose         narrate requests to stderr

worker options (with --worker ADDR; ADDR is a socket path or host:port):
  --name NAME       handshake name (default worker-<pid>)
  --point-threads N bound-weave threads per simulation (default 1)
  --die-after N     fault injection: drop the connection, without
                    acknowledging, on receiving job N+1
  --verbose         narrate jobs to stderr

stop the daemon with: minnow-client shutdown
";

struct Args {
    worker: Option<String>,
    socket: String,
    http: Option<String>,
    store: Option<String>,
    store_cap_mb: u64,
    executors: Option<usize>,
    queue_cap: usize,
    point_threads: usize,
    out: String,
    name: Option<String>,
    die_after: Option<usize>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        worker: None,
        socket: "target/minnow-serve/serve.sock".into(),
        http: None,
        store: None,
        store_cap_mb: 64,
        executors: None,
        queue_cap: 64,
        point_threads: 1,
        out: "target/minnow-serve".into(),
        name: None,
        die_after: None,
        verbose: false,
    };
    let mut argv = ArgStream::from_env();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--worker" => args.worker = Some(argv.value("--worker")?),
            "--socket" => args.socket = argv.value("--socket")?,
            "--http" => args.http = Some(argv.value("--http")?),
            "--store" => args.store = Some(argv.value("--store")?),
            "--store-cap-mb" => {
                args.store_cap_mb = argv.parse_at_least("--store-cap-mb", 1)?
            }
            "--executors" => args.executors = Some(argv.parse::<u64>("--executors")? as usize),
            "--queue-cap" => args.queue_cap = argv.parse_at_least("--queue-cap", 1)? as usize,
            "--point-threads" => {
                args.point_threads = argv.parse_at_least("--point-threads", 1)? as usize
            }
            "--out" => args.out = argv.value("--out")?,
            "--name" => args.name = Some(argv.value("--name")?),
            "--die-after" => args.die_after = Some(argv.parse::<u64>("--die-after")? as usize),
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(addr) = &args.worker {
        let mut cfg = WorkerConfig::new(ServeAddr::parse(addr));
        if let Some(name) = args.name {
            cfg.name = name;
        }
        cfg.point_threads = args.point_threads;
        cfg.die_after = args.die_after;
        cfg.verbose = args.verbose;
        eprintln!("minnow-serve worker `{}` pulling from {}", cfg.name, cfg.addr);
        return match run_worker(&cfg) {
            Ok(done) => {
                eprintln!("worker `{}` done: {done} evaluations served", cfg.name);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut cfg = ServeConfig::new(&args.socket);
    cfg.http = args.http;
    cfg.store_path = args.store.map(PathBuf::from);
    cfg.store_cap_bytes = args.store_cap_mb << 20;
    if let Some(n) = args.executors {
        cfg.local_executors = n;
    }
    cfg.queue_cap = args.queue_cap;
    cfg.point_threads = args.point_threads;
    cfg.out_dir = PathBuf::from(&args.out);
    cfg.verbose = args.verbose;

    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "minnow-serve listening on {}{}",
        daemon.socket().display(),
        daemon
            .http_addr()
            .map(|a| format!(" and http://{a}"))
            .unwrap_or_default()
    );
    daemon.join();
    ExitCode::SUCCESS
}

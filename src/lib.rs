//! # minnow — facade crate
//!
//! Re-exports the whole Minnow reproduction stack under one roof. See the
//! individual crates for details:
//!
//! * [`sim`] — timing substrate (caches, NoC, DRAM, OOO core model),
//! * [`graph`] — CSR graphs, generators, statistics,
//! * [`runtime`] — Galois-like task framework (worklists, executors, BSP),
//! * [`engine`] — the Minnow engines themselves (worklist offload,
//!   threadlets, credit-throttled worklist-directed prefetching),
//! * [`prefetch`] — baseline hardware prefetchers (stride, IMP),
//! * [`algos`] — the seven paper workloads (SSSP, BFS, G500, CC, PR, TC, BC),
//! * [`bench`] — the experiment harness (figure benches, the parallel
//!   sweep engine behind `minnow-sweep`),
//! * [`explore`] — checkpointed design-space exploration with early
//!   stopping and Pareto frontier extraction (`minnow-explore`),
//! * [`serve`] — the resident evaluation daemon: content-addressed
//!   memoization, bounded work queue, journal-protocol remote workers
//!   (`minnow-serve`, `minnow-client`).

#![deny(missing_docs)]

pub use minnow_algos as algos;
pub use minnow_bench as bench;
pub use minnow_core as engine;
pub use minnow_explore as explore;
pub use minnow_graph as graph;
pub use minnow_prefetch as prefetch;
pub use minnow_runtime as runtime;
pub use minnow_serve as serve;
pub use minnow_sim as sim;

//! Determinism contract of the parallel sweep engine: the JSON-lines
//! artifact is byte-identical whether points run one at a time or fan
//! out across a work-stealing pool, and identical across repeated runs.
//!
//! The wall-clock speedup check at the bottom is gated on the machine's
//! available parallelism (CI containers are often single-core; a 1-core
//! box cannot show parallel speedup, but it *can* — and does — verify
//! byte-identical output at any pool width).

use minnow::bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};

fn tiny_params() -> SweepParams {
    SweepParams {
        scale: 0.03,
        seed: 1234,
        headline_threads: 4,
        max_threads: 4,
    }
}

#[test]
fn pool_width_never_changes_the_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    let eight = run_sweep(&sweep, &SweepConfig::serial().with_threads(8));
    assert_eq!(
        serial.jsonl(),
        eight.jsonl(),
        "--threads 8 must be byte-identical to serial execution"
    );
    assert_eq!(serial.points.len(), sweep.points.len());
}

#[test]
fn repeated_runs_are_byte_identical() {
    let sweep = Sweep::smoke(&tiny_params());
    let cfg = SweepConfig::serial().with_threads(3);
    let first = run_sweep(&sweep, &cfg);
    let second = run_sweep(&sweep, &cfg);
    assert_eq!(first.jsonl(), second.jsonl());
    // Summaries agree on everything outside the volatile section.
    let stable = |s: &str| s.split(",\"volatile\"").next().unwrap().to_string();
    assert_eq!(
        stable(&first.summary_json()),
        stable(&second.summary_json())
    );
}

#[test]
fn filtered_subset_matches_the_full_run() {
    let sweep = Sweep::fig16(&tiny_params());
    let full = run_sweep(&sweep, &SweepConfig::serial());
    let filtered = run_sweep(
        &sweep,
        &SweepConfig::serial().with_threads(4).with_filter("/BFS/"),
    );
    assert!(!filtered.points.is_empty());
    for point in &filtered.points {
        let whole = full.report(&point.id);
        assert_eq!(
            point.report.makespan, whole.makespan,
            "{}: filtering must not perturb a point's result",
            point.id
        );
    }
}

#[test]
fn tracing_never_changes_the_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let plain = run_sweep(&sweep, &SweepConfig::serial());
    let traced = run_sweep(&sweep, &SweepConfig::serial().with_trace());
    assert_eq!(
        plain.jsonl(),
        traced.jsonl(),
        "--trace-out must leave the JSON-lines artifact byte-identical"
    );
    assert_eq!(
        plain.breakdown_jsonl(),
        traced.breakdown_jsonl(),
        "the cycle-accounting artifact must not depend on tracing"
    );
    assert!(
        plain.chrome_trace_json().is_none(),
        "untraced sweeps export no trace document"
    );
    // The trace itself is deterministic for a fixed seed.
    let again = run_sweep(&sweep, &SweepConfig::serial().with_trace());
    assert_eq!(
        traced.chrome_trace_json(),
        again.chrome_trace_json(),
        "trace export must be deterministic run-to-run"
    );
    assert!(traced.chrome_trace_json().is_some());
}

/// The wall-clock benchmark document (`--bench-out`) is a pure
/// observation: producing it never perturbs the simulated results, so
/// the JSONL artifact stays byte-identical whether or not it is asked
/// for — the same contract tracing honors above.
#[test]
fn bench_document_never_changes_the_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let plain = run_sweep(&sweep, &SweepConfig::serial());
    let benched = run_sweep(&sweep, &SweepConfig::serial());
    let bench = benched.bench_json();
    assert!(!bench.is_empty());
    assert_eq!(
        plain.jsonl(),
        benched.jsonl(),
        "--bench-out must leave the JSON-lines artifact byte-identical"
    );
    assert_eq!(
        plain.breakdown_jsonl(),
        benched.breakdown_jsonl(),
        "the cycle-accounting artifact must not depend on bench export"
    );
    // Rendering the bench document is non-destructive: the simulated
    // artifact is unchanged afterwards, and re-rendering sees the same
    // (volatile) measurements.
    assert_eq!(benched.jsonl(), plain.jsonl());
    assert_eq!(bench, benched.bench_json());
}

/// Schema contract of the benchmark document: versioned schema tag, one
/// entry per sweep point carrying wall time and throughput, and stable
/// simulated fields that agree with the JSONL artifact.
#[test]
fn bench_document_schema_and_content() {
    let sweep = Sweep::smoke(&tiny_params());
    let result = run_sweep(&sweep, &SweepConfig::serial().with_threads(2));
    let bench = result.bench_json();

    assert!(
        bench.starts_with("{\"schema\":\"minnow-bench-wallclock/v1\""),
        "bench document must lead with its schema tag: {bench}"
    );
    for field in [
        "\"sweep\":\"smoke\"",
        "\"pool_threads\":2",
        "\"wall_ms\":",
        "\"total_tasks\":",
        "\"total_mem_accesses\":",
        "\"tasks_per_sec\":",
        "\"accesses_per_sec\":",
        "\"points\":[",
    ] {
        assert!(bench.contains(field), "bench document lacks {field}: {bench}");
    }
    // One point entry per sweep point, each with the per-point fields.
    assert_eq!(
        bench.matches("\"wall_us\":").count(),
        sweep.points.len(),
        "one wall_us measurement per point"
    );
    for point in &result.points {
        assert!(
            bench.contains(&format!("\"id\":\"{}\"", point.id)),
            "bench document is missing point {}",
            point.id
        );
        // The simulated (stable) fields embedded in the bench document
        // must agree with the canonical artifact.
        assert!(
            bench.contains(&format!(
                "\"id\":\"{}\",\"wall_us\":",
                point.id
            )),
            "point {} entry malformed",
            point.id
        );
        assert!(
            bench.contains(&format!("\"makespan\":{}", point.report.makespan)),
            "point {} makespan missing from bench document",
            point.id
        );
    }
    // Totals are the sums of the per-point simulated counters.
    let tasks: u64 = result.points.iter().map(|p| p.report.tasks).sum();
    assert!(bench.contains(&format!("\"total_tasks\":{tasks}")));
}

#[test]
fn breakdown_rows_are_closed() {
    let sweep = Sweep::smoke(&tiny_params());
    let result = run_sweep(&sweep, &SweepConfig::serial());
    for point in &result.points {
        point
            .report
            .accounting
            .verify_closed(point.report.makespan)
            .unwrap_or_else(|e| panic!("{}: {e}", point.id));
    }
    // And the textual table reflects that: every artifact line exists.
    let table = result.breakdown_table();
    for point in &result.points {
        assert!(
            table.contains(&point.id),
            "breakdown table is missing {}",
            point.id
        );
    }
}

#[test]
fn parallel_pool_speeds_up_the_sweep() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping wall-clock speedup check: only {cores} core(s) available");
        return;
    }
    // A fig15-style scalability sweep, scoped down so the test stays
    // quick while each point is still long enough to measure.
    let sweep = Sweep::fig15(&SweepParams {
        scale: 0.06,
        seed: 99,
        headline_threads: 4,
        max_threads: 8,
    });
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    let parallel = run_sweep(&sweep, &SweepConfig::serial().with_threads(8));
    assert_eq!(serial.jsonl(), parallel.jsonl());
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "8-thread pool on {cores} cores only {speedup:.2}x faster than serial"
    );
}

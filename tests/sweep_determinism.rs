//! Determinism contract of the parallel sweep engine: the JSON-lines
//! artifact is byte-identical whether points run one at a time or fan
//! out across a work-stealing pool, whether each point is simulated
//! serially or in bound-weave mode (`--point-threads >= 2`), and
//! identical across repeated runs.
//!
//! The wall-clock speedup check at the bottom is gated on the machine's
//! available parallelism (CI containers are often single-core; a 1-core
//! box cannot show parallel speedup, but it *can* — and does — verify
//! byte-identical output at any pool width).

use minnow::bench::runner::{BenchRun, HwKind, SchedSpec};
use minnow::bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow::runtime::sim_exec::RunReport;

fn tiny_params() -> SweepParams {
    SweepParams {
        scale: 0.03,
        seed: 1234,
        headline_threads: 4,
        max_threads: 4,
    }
}

#[test]
fn pool_width_never_changes_the_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    let eight = run_sweep(&sweep, &SweepConfig::serial().with_threads(8));
    assert_eq!(
        serial.jsonl(),
        eight.jsonl(),
        "--threads 8 must be byte-identical to serial execution"
    );
    assert_eq!(serial.points.len(), sweep.points.len());
}

#[test]
fn repeated_runs_are_byte_identical() {
    let sweep = Sweep::smoke(&tiny_params());
    let cfg = SweepConfig::serial().with_threads(3);
    let first = run_sweep(&sweep, &cfg);
    let second = run_sweep(&sweep, &cfg);
    assert_eq!(first.jsonl(), second.jsonl());
    // Summaries agree on everything outside the volatile section.
    let stable = |s: &str| s.split(",\"volatile\"").next().unwrap().to_string();
    assert_eq!(
        stable(&first.summary_json()),
        stable(&second.summary_json())
    );
}

#[test]
fn filtered_subset_matches_the_full_run() {
    let sweep = Sweep::fig16(&tiny_params());
    let full = run_sweep(&sweep, &SweepConfig::serial());
    let filtered = run_sweep(
        &sweep,
        &SweepConfig::serial().with_threads(4).with_filter("/BFS/"),
    );
    assert!(!filtered.points.is_empty());
    for point in &filtered.points {
        let whole = full.report(&point.id);
        assert_eq!(
            point.report.makespan, whole.makespan,
            "{}: filtering must not perturb a point's result",
            point.id
        );
    }
}

#[test]
fn tracing_never_changes_the_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let plain = run_sweep(&sweep, &SweepConfig::serial());
    let traced = run_sweep(&sweep, &SweepConfig::serial().with_trace());
    assert_eq!(
        plain.jsonl(),
        traced.jsonl(),
        "--trace-out must leave the JSON-lines artifact byte-identical"
    );
    assert_eq!(
        plain.breakdown_jsonl(),
        traced.breakdown_jsonl(),
        "the cycle-accounting artifact must not depend on tracing"
    );
    assert!(
        plain.chrome_trace_json().is_none(),
        "untraced sweeps export no trace document"
    );
    // The trace itself is deterministic for a fixed seed.
    let again = run_sweep(&sweep, &SweepConfig::serial().with_trace());
    assert_eq!(
        traced.chrome_trace_json(),
        again.chrome_trace_json(),
        "trace export must be deterministic run-to-run"
    );
    assert!(traced.chrome_trace_json().is_some());
}

/// The wall-clock benchmark document (`--bench-out`) is a pure
/// observation: producing it never perturbs the simulated results, so
/// the JSONL artifact stays byte-identical whether or not it is asked
/// for — the same contract tracing honors above.
#[test]
fn bench_document_never_changes_the_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let plain = run_sweep(&sweep, &SweepConfig::serial());
    let benched = run_sweep(&sweep, &SweepConfig::serial());
    let bench = benched.bench_json();
    assert!(!bench.is_empty());
    assert_eq!(
        plain.jsonl(),
        benched.jsonl(),
        "--bench-out must leave the JSON-lines artifact byte-identical"
    );
    assert_eq!(
        plain.breakdown_jsonl(),
        benched.breakdown_jsonl(),
        "the cycle-accounting artifact must not depend on bench export"
    );
    // Rendering the bench document is non-destructive: the simulated
    // artifact is unchanged afterwards, and re-rendering sees the same
    // (volatile) measurements.
    assert_eq!(benched.jsonl(), plain.jsonl());
    assert_eq!(bench, benched.bench_json());
}

/// Schema contract of the benchmark document: versioned schema tag, one
/// entry per sweep point carrying wall time and throughput, and stable
/// simulated fields that agree with the JSONL artifact.
#[test]
fn bench_document_schema_and_content() {
    let sweep = Sweep::smoke(&tiny_params());
    let result = run_sweep(&sweep, &SweepConfig::serial().with_threads(2));
    let bench = result.bench_json();

    assert!(
        bench.starts_with("{\"schema\":\"minnow-bench-wallclock/v1\""),
        "bench document must lead with its schema tag: {bench}"
    );
    for field in [
        "\"sweep\":\"smoke\"",
        "\"pool_threads\":2",
        "\"wall_ms\":",
        "\"total_tasks\":",
        "\"total_mem_accesses\":",
        "\"tasks_per_sec\":",
        "\"accesses_per_sec\":",
        "\"points\":[",
    ] {
        assert!(bench.contains(field), "bench document lacks {field}: {bench}");
    }
    // One point entry per sweep point, each with the per-point fields.
    assert_eq!(
        bench.matches("\"wall_us\":").count(),
        sweep.points.len(),
        "one wall_us measurement per point"
    );
    assert_eq!(
        bench.matches("\"pt_used\":").count(),
        sweep.points.len(),
        "one chosen-mode report per point"
    );
    for point in &result.points {
        assert!(
            bench.contains(&format!("\"id\":\"{}\"", point.id)),
            "bench document is missing point {}",
            point.id
        );
        // The simulated (stable) fields embedded in the bench document
        // must agree with the canonical artifact. Every point reports
        // the simulation mode it chose (`pt_used`: 1 = serial oracle,
        // >1 = front shards + weave lanes) right after its id, followed
        // by the front/lane split that budget divided into.
        assert!(
            bench.contains(&format!(
                "\"id\":\"{}\",\"pt_used\":{},\"pt_front_used\":{},\"pt_lane_used\":{},\"wall_us\":",
                point.id,
                point.report.point_threads_used,
                point.report.front_threads_used,
                point.report.lane_threads_used
            )),
            "point {} entry malformed",
            point.id
        );
        assert!(
            bench.contains(&format!("\"makespan\":{}", point.report.makespan)),
            "point {} makespan missing from bench document",
            point.id
        );
    }
    // Totals are the sums of the per-point simulated counters.
    let tasks: u64 = result.points.iter().map(|p| p.report.tasks).sum();
    assert!(bench.contains(&format!("\"total_tasks\":{tasks}")));
}

#[test]
fn breakdown_rows_are_closed() {
    let sweep = Sweep::smoke(&tiny_params());
    let result = run_sweep(&sweep, &SweepConfig::serial());
    for point in &result.points {
        point
            .report
            .accounting
            .verify_closed(point.report.makespan)
            .unwrap_or_else(|e| panic!("{}: {e}", point.id));
    }
    // And the textual table reflects that: every artifact line exists.
    let table = result.breakdown_table();
    for point in &result.points {
        assert!(
            table.contains(&point.id),
            "breakdown table is missing {}",
            point.id
        );
    }
}

/// The bound-weave output contract: any `--point-threads` value yields
/// byte-identical artifacts — JSONL, cycle-accounting breakdowns, and
/// the human-readable table — not merely equal headline numbers.
///
/// The runs are pinned (`--pin-point-threads`): the smoke workloads sit
/// below the adaptive-fallback threshold, so an unpinned run would
/// silently take the serial path and prove nothing about the shards.
#[test]
fn point_threads_never_change_any_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    for pt in [2, 4, 8] {
        let woven = run_sweep(
            &sweep,
            &SweepConfig::serial()
                .with_point_threads(pt)
                .with_pinned_point_threads(),
        );
        assert_eq!(
            serial.jsonl(),
            woven.jsonl(),
            "--point-threads {pt} must be byte-identical to serial simulation"
        );
        assert_eq!(
            serial.breakdown_jsonl(),
            woven.breakdown_jsonl(),
            "--point-threads {pt} perturbed the cycle-accounting artifact"
        );
        assert_eq!(
            serial.breakdown_table(),
            woven.breakdown_table(),
            "--point-threads {pt} perturbed the breakdown table"
        );
    }
}

/// Same contract over the full fig16 sweep (the golden figure): the
/// artifact a 4-thread bound-weave run writes is the one the serial
/// oracle writes, byte for byte, even with the across-point pool active.
#[test]
fn point_threads_never_change_fig16_artifacts() {
    let sweep = Sweep::fig16(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    let woven = run_sweep(
        &sweep,
        &SweepConfig::serial()
            .with_threads(2)
            .with_point_threads(4)
            .with_pinned_point_threads(),
    );
    assert_eq!(serial.jsonl(), woven.jsonl());
    assert_eq!(serial.breakdown_jsonl(), woven.breakdown_jsonl());
}

/// The front+lane split contract: dividing a pinned `--point-threads`
/// budget between front shards (simulated-core partitions relayed on
/// the epoch min-clock) and weave lanes is invisible in every artifact.
/// Every requested split — all-front (no lanes), all-default, and the
/// mixtures between — matches the serial oracle byte for byte, and the
/// per-point report accounts for the whole budget.
#[test]
fn front_shard_splits_never_change_any_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    for (pt, front) in [(2, 1), (2, 2), (4, 1), (4, 2), (4, 4), (8, 4)] {
        let split = run_sweep(
            &sweep,
            &SweepConfig::serial()
                .with_point_threads(pt)
                .with_pinned_point_threads()
                .with_front_shards(front),
        );
        assert_eq!(
            serial.jsonl(),
            split.jsonl(),
            "pt={pt} front={front} must be byte-identical to serial simulation"
        );
        assert_eq!(
            serial.breakdown_jsonl(),
            split.breakdown_jsonl(),
            "pt={pt} front={front} perturbed the cycle-accounting artifact"
        );
        assert_eq!(
            serial.breakdown_table(),
            split.breakdown_table(),
            "pt={pt} front={front} perturbed the breakdown table"
        );
        for point in &split.points {
            let r = &point.report;
            assert_eq!(
                r.point_threads_used, pt,
                "{}: a pinned budget must engage fully",
                point.id
            );
            assert_eq!(
                r.front_threads_used + r.lane_threads_used,
                pt,
                "{}: front {} + lanes {} must spend the whole pt={pt} budget",
                point.id,
                r.front_threads_used,
                r.lane_threads_used
            );
            assert!(
                r.front_threads_used >= 1,
                "{}: at least one front shard always runs",
                point.id
            );
        }
    }
}

/// Same split contract over the golden fig16 sweep with the
/// across-point pool active: the planner's front/lane division is an
/// execution detail, never part of the simulated result.
#[test]
fn front_shard_splits_never_change_fig16_artifacts() {
    let sweep = Sweep::fig16(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    for front in [2, 4] {
        let split = run_sweep(
            &sweep,
            &SweepConfig::serial()
                .with_threads(2)
                .with_point_threads(4)
                .with_pinned_point_threads()
                .with_front_shards(front),
        );
        assert_eq!(
            serial.jsonl(),
            split.jsonl(),
            "front={front} diverged from the serial oracle on fig16"
        );
        assert_eq!(
            serial.breakdown_jsonl(),
            split.breakdown_jsonl(),
            "front={front} perturbed fig16 cycle accounting"
        );
    }
}

/// The speculative-overlap contract: with `--speculate on`, idle front
/// shards pre-execute the private prefix of their next canonical task
/// and the spine commits validated records — yet every artifact stays
/// byte-identical to both the `--speculate off` relay and the serial
/// oracle. Speculation is an execution detail, never part of the
/// simulated result.
#[test]
fn speculation_never_changes_any_artifact() {
    let sweep = Sweep::smoke(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    for (pt, front) in [(2, 2), (4, 2), (4, 4)] {
        let base = SweepConfig::serial()
            .with_point_threads(pt)
            .with_pinned_point_threads()
            .with_front_shards(front);
        let spec_on = run_sweep(&sweep, &base.clone().with_speculate(true));
        let spec_off = run_sweep(&sweep, &base.with_speculate(false));
        assert_eq!(
            serial.jsonl(),
            spec_on.jsonl(),
            "pt={pt} front={front} speculate=on diverged from the serial oracle"
        );
        assert_eq!(
            serial.jsonl(),
            spec_off.jsonl(),
            "pt={pt} front={front} speculate=off diverged from the serial oracle"
        );
        assert_eq!(
            serial.breakdown_jsonl(),
            spec_on.breakdown_jsonl(),
            "pt={pt} front={front} speculation perturbed cycle accounting"
        );
        assert_eq!(
            serial.breakdown_table(),
            spec_on.breakdown_table(),
            "pt={pt} front={front} speculation perturbed the breakdown table"
        );
        // The speculative drive replaces the baton relay outright, and
        // the bench document says so: every consumed record either
        // commits or rolls back (a speculation armed right as the point
        // drains may go unconsumed, so attempts can exceed the sum),
        // and a spec-off relay records no attempts at all.
        for point in &spec_on.points {
            let r = &point.report;
            assert!(
                r.spec_commits + r.spec_rollbacks <= r.spec_attempts,
                "{}: consumed {} + {} speculations exceed the {} attempted",
                point.id,
                r.spec_commits,
                r.spec_rollbacks,
                r.spec_attempts
            );
        }
        for point in &spec_off.points {
            assert_eq!(
                point.report.spec_attempts, 0,
                "{}: a spec-off relay must never speculate",
                point.id
            );
        }
    }
}

/// Same speculation contract over the golden fig16 sweep with the
/// across-point pool active, on vs off vs the serial oracle.
#[test]
fn speculation_never_changes_fig16_artifacts() {
    let sweep = Sweep::fig16(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    let base = SweepConfig::serial()
        .with_threads(2)
        .with_point_threads(4)
        .with_pinned_point_threads()
        .with_front_shards(2);
    let spec_on = run_sweep(&sweep, &base.clone().with_speculate(true));
    let spec_off = run_sweep(&sweep, &base.with_speculate(false));
    assert_eq!(
        serial.jsonl(),
        spec_on.jsonl(),
        "speculation diverged from the serial oracle on fig16"
    );
    assert_eq!(serial.jsonl(), spec_off.jsonl());
    assert_eq!(serial.breakdown_jsonl(), spec_on.breakdown_jsonl());
    assert_eq!(serial.breakdown_jsonl(), spec_off.breakdown_jsonl());
    // fig16's workloads are big enough that speculation actually fires
    // somewhere; an all-zero attempt count would mean the toggle is
    // dead wiring rather than a verified protocol.
    let attempts: u64 = spec_on.points.iter().map(|p| p.report.spec_attempts).sum();
    assert!(
        attempts > 0,
        "speculation never attempted a single task across fig16"
    );
}

/// The full differential oracle under speculation: every workload
/// crossed with every engine family must emit byte-identical artifacts
/// with `--speculate on` against the pt=1 serial oracle, exactly like
/// the non-speculative shard matrix above.
#[test]
fn speculation_matrix_is_byte_identical_for_every_workload_and_engine() {
    use minnow::algos::WorkloadKind;
    use minnow::bench::sweep::SweepPoint;

    let mut points = Vec::new();
    for kind in WorkloadKind::ALL {
        let engines: [(&str, BenchRun); 3] = [
            ("software", BenchRun::software_default(kind, 2)),
            ("minnow", BenchRun::minnow(kind, 2)),
            ("wdp", BenchRun::minnow_wdp(kind, 2)),
        ];
        for (engine, mut run) in engines {
            run.scale = 0.02;
            run.seed = 7;
            points.push(SweepPoint {
                id: format!("spec-matrix/{kind}/{engine}"),
                run,
            });
        }
    }
    let sweep = Sweep {
        name: "spec-matrix".into(),
        points,
    };
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    for (pt, front) in [(2, 2), (4, 2)] {
        let spec = run_sweep(
            &sweep,
            &SweepConfig::serial()
                .with_point_threads(pt)
                .with_pinned_point_threads()
                .with_front_shards(front)
                .with_speculate(true),
        );
        assert_eq!(
            serial.jsonl(),
            spec.jsonl(),
            "pt={pt} front={front} speculation diverged on the engine matrix"
        );
        assert_eq!(
            serial.breakdown_jsonl(),
            spec.breakdown_jsonl(),
            "pt={pt} front={front} speculation perturbed matrix cycle accounting"
        );
    }
}

/// Speculation on a file-loaded graph: the ingest path shares the same
/// byte-identity contract as generated inputs.
#[test]
fn speculation_is_byte_identical_on_file_loaded_graphs() {
    use minnow::bench::runner::InputSpec;

    let dir = std::env::temp_dir().join(format!("minnow-spec-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text_path = dir.join("ring.el");
    let mut text = String::new();
    for u in 0..48u32 {
        let prev = (u + 47) % 48;
        let next = (u + 1) % 48;
        text.push_str(&format!("{u} {}\n{u} {}\n", prev.min(next), prev.max(next)));
    }
    std::fs::write(&text_path, text).unwrap();

    let sweep = Sweep::smoke(&tiny_params());
    let serial = run_sweep(
        &sweep,
        &SweepConfig::serial().with_input(InputSpec::new(&text_path)),
    );
    for speculate in [true, false] {
        let spec = run_sweep(
            &sweep,
            &SweepConfig::serial()
                .with_point_threads(2)
                .with_pinned_point_threads()
                .with_front_shards(2)
                .with_speculate(speculate)
                .with_input(InputSpec::new(&text_path)),
        );
        assert_eq!(
            serial.jsonl(),
            spec.jsonl(),
            "speculate={speculate} diverged on a file-loaded graph"
        );
        assert_eq!(serial.breakdown_jsonl(), spec.breakdown_jsonl());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Trace event streams are part of the determinism contract: traced
/// points are pinned to the serial oracle (the weave refuses to engage
/// under a tracer), so requesting `--point-threads` with `--trace-out`
/// changes nothing — neither the trace document nor the artifacts.
#[test]
fn point_threads_never_change_trace_streams() {
    let sweep = Sweep::smoke(&tiny_params());
    let traced = run_sweep(&sweep, &SweepConfig::serial().with_trace());
    let woven = run_sweep(
        &sweep,
        &SweepConfig::serial().with_trace().with_point_threads(4),
    );
    assert_eq!(
        traced.chrome_trace_json(),
        woven.chrome_trace_json(),
        "point-threads perturbed the trace event stream"
    );
    assert_eq!(traced.jsonl(), woven.jsonl());
    assert_eq!(traced.breakdown_jsonl(), woven.breakdown_jsonl());
}

/// Every field of a report that any artifact serializes, summarized for
/// exact comparison across execution modes.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "makespan={} tasks={} instr={} timed_out={} l2_misses={} mem={} \
         delinquent={} loads={} pf_fills={} pf_used={} supersteps={} \
         breakdown={:?} idle={} drain={}",
        r.makespan,
        r.tasks,
        r.instructions,
        r.timed_out,
        r.l2_misses,
        r.mem_accesses,
        r.delinquent_loads,
        r.total_loads,
        r.prefetch_fills,
        r.prefetch_used,
        r.supersteps,
        r.breakdown,
        r.accounting
            .merged()
            .get(minnow::sim::stats::CycleBin::Idle),
        r.accounting
            .merged()
            .get(minnow::sim::stats::CycleBin::Drain),
    )
}

/// Scheduler configurations the smoke sweep does not cover — the BSP
/// engine (superstep-barrier epochs) and hardware-prefetcher runs
/// (which stay serial by design) — must also be invariant under
/// `point_threads`.
#[test]
fn point_threads_never_change_bsp_and_hw_reports() {
    for sched in [
        SchedSpec::Bsp(None),
        SchedSpec::Bsp(Some(0)),
        SchedSpec::MinnowWithHw(HwKind::Stride),
        SchedSpec::MinnowWithHw(HwKind::Imp),
    ] {
        let mut run = BenchRun::new(minnow::algos::WorkloadKind::Bfs, 2, sched.clone());
        run.scale = 0.03;
        let serial = run.execute();
        run.point_threads = 4;
        run.pin_point_threads = true;
        let woven = run.execute();
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&woven),
            "{sched:?}: point_threads changed the report"
        );
    }
}

/// The full differential oracle for the sharded bound-weave: every
/// workload crossed with every engine family — software worklist,
/// Minnow offload, Minnow + WDP, BSP supersteps, and Minnow + hardware
/// prefetcher — must emit byte-identical JSONL and cycle-accounting
/// artifacts for every shard count in {2, 4, 8} against the pt=1
/// serial oracle. Runs are pinned so the tiny matrix actually
/// exercises the shards instead of the adaptive serial fallback.
#[test]
fn shard_matrix_is_byte_identical_for_every_workload_and_engine() {
    use minnow::algos::WorkloadKind;
    use minnow::bench::sweep::SweepPoint;

    let mut points = Vec::new();
    for kind in WorkloadKind::ALL {
        let engines: [(&str, BenchRun); 5] = [
            ("software", BenchRun::software_default(kind, 2)),
            ("minnow", BenchRun::minnow(kind, 2)),
            ("wdp", BenchRun::minnow_wdp(kind, 2)),
            (
                "bsp",
                BenchRun::new(kind, 2, SchedSpec::Bsp(None)),
            ),
            (
                "hw-pf",
                BenchRun::new(kind, 2, SchedSpec::MinnowWithHw(HwKind::Stride)),
            ),
        ];
        for (engine, mut run) in engines {
            run.scale = 0.02;
            run.seed = 7;
            points.push(SweepPoint {
                id: format!("matrix/{kind}/{engine}"),
                run,
            });
        }
    }
    let sweep = Sweep {
        name: "matrix".into(),
        points,
    };
    assert_eq!(sweep.points.len(), WorkloadKind::ALL.len() * 5);

    let serial = run_sweep(&sweep, &SweepConfig::serial());
    for pt in [2, 4, 8] {
        let woven = run_sweep(
            &sweep,
            &SweepConfig::serial()
                .with_point_threads(pt)
                .with_pinned_point_threads(),
        );
        assert_eq!(
            serial.jsonl(),
            woven.jsonl(),
            "pt={pt} diverged from the serial oracle on the engine matrix"
        );
        assert_eq!(
            serial.breakdown_jsonl(),
            woven.breakdown_jsonl(),
            "pt={pt} perturbed cycle accounting on the engine matrix"
        );
    }
    // The same oracle with the budget explicitly divided between front
    // shards and weave lanes: every (budget, front) split leaves the
    // full workload x engine matrix byte-identical too.
    for (pt, front) in [(2, 2), (4, 2), (4, 4)] {
        let split = run_sweep(
            &sweep,
            &SweepConfig::serial()
                .with_point_threads(pt)
                .with_pinned_point_threads()
                .with_front_shards(front),
        );
        assert_eq!(
            serial.jsonl(),
            split.jsonl(),
            "pt={pt} front={front} diverged from the serial oracle on the engine matrix"
        );
        assert_eq!(
            serial.breakdown_jsonl(),
            split.breakdown_jsonl(),
            "pt={pt} front={front} perturbed cycle accounting on the engine matrix"
        );
    }
}

/// Adaptive serial fallback: a workload below the weave threshold run
/// with `--point-threads 8` (unpinned) must select the serial path —
/// reported as `pt_used: 1` in the wall-clock bench document — and
/// produce byte-identical artifacts in comparable wall time. Pinning
/// overrides the fallback and engages all eight shards, still
/// bit-for-bit equal.
#[test]
fn small_workloads_fall_back_to_the_serial_path() {
    use minnow::runtime::sim_exec::MIN_WEAVE_EDGES;

    let sweep = Sweep::smoke(&tiny_params());
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    let adaptive = run_sweep(&sweep, &SweepConfig::serial().with_point_threads(8));
    assert_eq!(serial.jsonl(), adaptive.jsonl());
    assert_eq!(serial.breakdown_jsonl(), adaptive.breakdown_jsonl());
    // Every point chose the serial oracle, and says so in the bench
    // document.
    let bench = adaptive.bench_json();
    assert_eq!(
        bench.matches("\"pt_used\":1,").count(),
        sweep.points.len(),
        "every smoke point should fall back to serial: {bench}"
    );
    assert_eq!(
        bench.matches("\"pt_front_used\":1,\"pt_lane_used\":0,").count(),
        sweep.points.len(),
        "serial fallback must report a 1-front/0-lane split: {bench}"
    );
    for point in &adaptive.points {
        assert_eq!(
            point.report.point_threads_used, 1,
            "{}: below-threshold point should run serial",
            point.id
        );
    }
    // Identical code path, so comparable wall clock; the generous bound
    // only guards against a pathological regression (e.g. spawning and
    // tearing down idle shard threads per point).
    let ratio =
        adaptive.wall.as_secs_f64() / serial.wall.as_secs_f64().max(1e-9);
    assert!(
        ratio < 10.0,
        "pt=8 fallback took {ratio:.1}x the serial wall time"
    );

    // Directly on one run: the fallback triggers below the threshold,
    // and pinning overrides it without changing the simulated result.
    let mut run = BenchRun::minnow(minnow::algos::WorkloadKind::Bfs, 2);
    run.scale = 0.03;
    run.point_threads = 8;
    let fallback = run.execute();
    assert_eq!(fallback.point_threads_used, 1);
    assert_eq!(fallback.front_threads_used, 1);
    assert_eq!(fallback.lane_threads_used, 0);
    // A requested front split falls back along with the budget.
    run.front_shards = Some(4);
    let split_fallback = run.execute();
    assert_eq!(split_fallback.point_threads_used, 1);
    assert_eq!(split_fallback.front_threads_used, 1);
    run.front_shards = None;
    run.pin_point_threads = true;
    let pinned = run.execute();
    assert_eq!(pinned.point_threads_used, 8);
    assert_eq!(
        pinned.front_threads_used + pinned.lane_threads_used,
        8,
        "a pinned budget must be fully divided between front and lanes"
    );
    assert_eq!(fingerprint(&fallback), fingerprint(&pinned));
    assert_eq!(fingerprint(&fallback), fingerprint(&split_fallback));
    // The fixture must actually sit below the fallback threshold, or
    // the assertions above test nothing.
    let edges = minnow::algos::WorkloadKind::Bfs.input(0.03, run.seed).edges();
    assert!(
        edges < MIN_WEAVE_EDGES,
        "smoke BFS graph grew past the weave threshold ({edges} edges)"
    );
}

/// Ingested inputs honor the same determinism contract: sweeping a
/// graph loaded from a text edge list, from its `minnow-csr-image/v1`
/// rendering via buffered reads, and from the same image via mmap must
/// produce byte-identical artifacts — the input path is an execution
/// detail, never part of the simulated result.
#[test]
fn ingested_inputs_are_byte_identical_across_text_image_and_mmap_paths() {
    use minnow::bench::runner::InputSpec;
    use minnow::graph::image::LoadMode;
    use minnow::graph::ingest::{ingest_file_to_image, IngestOptions};

    let dir = std::env::temp_dir().join(format!("minnow-sweep-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // A bidirectional 48-node ring in canonical (src, dst) order, so the
    // external-sort image and the in-file-order text load agree exactly.
    let text_path = dir.join("ring.el");
    let mut text = String::new();
    for u in 0..48u32 {
        let prev = (u + 47) % 48;
        let next = (u + 1) % 48;
        text.push_str(&format!("{u} {}\n{u} {}\n", prev.min(next), prev.max(next)));
    }
    std::fs::write(&text_path, text).unwrap();
    let image_path = dir.join("ring.mcsr");
    ingest_file_to_image(&text_path, None, &image_path, &IngestOptions::default()).unwrap();

    let sweep = Sweep::smoke(&tiny_params());
    let spec = |path: &std::path::Path, mode: LoadMode| {
        let mut s = InputSpec::new(path);
        s.mode = mode;
        s
    };
    let from_text = run_sweep(
        &sweep,
        &SweepConfig::serial().with_input(spec(&text_path, LoadMode::Auto)),
    );
    let from_image = run_sweep(
        &sweep,
        &SweepConfig::serial().with_input(spec(&image_path, LoadMode::Read)),
    );
    assert_eq!(
        from_text.jsonl(),
        from_image.jsonl(),
        "image ingestion must not perturb the artifact"
    );
    assert_eq!(from_text.breakdown_jsonl(), from_image.breakdown_jsonl());
    #[cfg(unix)]
    {
        let mapped = run_sweep(
            &sweep,
            &SweepConfig::serial().with_input(spec(&image_path, LoadMode::Mmap)),
        );
        assert_eq!(
            from_text.jsonl(),
            mapped.jsonl(),
            "mmap loading must not perturb the artifact"
        );
        assert_eq!(from_text.breakdown_jsonl(), mapped.breakdown_jsonl());
    }
    // The pool-width invariance contract holds for external inputs too.
    let pooled = run_sweep(
        &sweep,
        &SweepConfig::serial()
            .with_threads(4)
            .with_input(spec(&image_path, LoadMode::Auto)),
    );
    assert_eq!(from_text.jsonl(), pooled.jsonl());
    // And so does the sharded bound-weave: a file-loaded graph simulated
    // across 2 or 8 pinned shards — with or without an explicit
    // front/lane split of that budget — matches the serial artifacts
    // byte for byte.
    for (pt, front) in [(2usize, None), (8, None), (2, Some(2)), (8, Some(4))] {
        let mut cfg = SweepConfig::serial()
            .with_point_threads(pt)
            .with_pinned_point_threads()
            .with_input(spec(&image_path, LoadMode::Auto));
        if let Some(front) = front {
            cfg = cfg.with_front_shards(front);
        }
        let woven = run_sweep(&sweep, &cfg);
        assert_eq!(
            from_text.jsonl(),
            woven.jsonl(),
            "pt={pt} front={front:?} diverged on a file-loaded graph"
        );
        assert_eq!(from_text.breakdown_jsonl(), woven.breakdown_jsonl());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_pool_speeds_up_the_sweep() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping wall-clock speedup check: only {cores} core(s) available");
        return;
    }
    // A fig15-style scalability sweep, scoped down so the test stays
    // quick while each point is still long enough to measure.
    let sweep = Sweep::fig15(&SweepParams {
        scale: 0.06,
        seed: 99,
        headline_threads: 4,
        max_threads: 8,
    });
    let serial = run_sweep(&sweep, &SweepConfig::serial());
    let parallel = run_sweep(&sweep, &SweepConfig::serial().with_threads(8));
    assert_eq!(serial.jsonl(), parallel.jsonl());
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "8-thread pool on {cores} cores only {speedup:.2}x faster than serial"
    );
}

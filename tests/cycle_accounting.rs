//! Closed cycle-accounting invariant: for every workload and every
//! executor configuration, the per-core cycle bins partition the run
//! exactly — each core's seven bins sum to the makespan, so the merged
//! bins sum to `makespan x cores` with no lost or double-counted
//! cycles, and the reported [`Breakdown`] is the busy-bin projection of
//! the same books.

use minnow::algos::WorkloadKind;
use minnow::bench::runner::{BenchRun, HwKind, SchedSpec};
use minnow::sim::stats::CycleBin;

const THREADS: usize = 4;
const SCALE: f64 = 0.03;

fn configs(kind: WorkloadKind) -> Vec<(&'static str, SchedSpec)> {
    vec![
        ("software", SchedSpec::Software(kind.build_policy())),
        ("minnow", SchedSpec::Minnow { wdp_credits: None }),
        (
            "minnow-wdp",
            SchedSpec::Minnow {
                wdp_credits: Some(32),
            },
        ),
        ("bsp", SchedSpec::Bsp(None)),
    ]
}

fn assert_closed(label: &str, run: &BenchRun) {
    let report = run.execute();
    assert!(!report.timed_out, "{label}: timed out");
    let acct = &report.accounting;
    acct.verify_closed(report.makespan)
        .unwrap_or_else(|e| panic!("{label}: accounting not closed: {e}"));
    assert_eq!(
        acct.cores(),
        run.threads,
        "{label}: one set of bins per core"
    );
    for core in 0..acct.cores() {
        assert_eq!(
            acct.core(core).total(),
            report.makespan,
            "{label}: core {core} bins must sum to the makespan"
        );
    }
    let merged = acct.merged();
    assert_eq!(
        merged.total(),
        report.makespan * run.threads as u64,
        "{label}: merged bins must sum to makespan x cores"
    );
    // The Fig. 5 breakdown is derived from the same books: each busy
    // component equals the corresponding bin total.
    let b = report.breakdown;
    for (component, bin) in [
        (b.useful, CycleBin::Useful),
        (b.worklist, CycleBin::Worklist),
        (b.memory, CycleBin::Memory),
        (b.fence, CycleBin::Fence),
        (b.branch, CycleBin::Branch),
    ] {
        assert_eq!(
            component,
            acct.bin_total(bin),
            "{label}: breakdown {} must equal the accounting bin",
            bin.name()
        );
    }
    assert!(report.tasks > 0, "{label}: ran no tasks");
}

#[test]
fn every_workload_and_executor_closes_its_books() {
    for kind in WorkloadKind::ALL {
        for (name, sched) in configs(kind) {
            let mut run = BenchRun::new(kind, THREADS, sched);
            run.scale = SCALE;
            assert_closed(&format!("{}/{name}", kind.name()), &run);
        }
    }
}

#[test]
fn hardware_prefetcher_runs_close_their_books_too() {
    for hw in [HwKind::Stride, HwKind::Imp] {
        let mut run = BenchRun::new(
            WorkloadKind::Bfs,
            THREADS,
            SchedSpec::MinnowWithHw(hw),
        );
        run.scale = SCALE;
        assert_closed(&format!("BFS/hw-{hw:?}"), &run);
    }
}

#[test]
fn single_thread_accounting_closes() {
    let mut run = BenchRun::software_default(WorkloadKind::Sssp, 1);
    run.scale = SCALE;
    assert_closed("SSSP/software-1t", &run);
}

#[test]
fn bucketed_bsp_accounting_closes() {
    let mut run = BenchRun::new(WorkloadKind::Sssp, THREADS, SchedSpec::Bsp(Some(2)));
    run.scale = SCALE;
    assert_closed("SSSP/bsp-b2", &run);
}

#[test]
fn timed_out_runs_still_close() {
    let mut run = BenchRun::minnow(WorkloadKind::Pr, 2);
    run.scale = SCALE;
    run.task_limit = 50;
    let report = run.execute();
    assert!(report.timed_out, "tiny task limit must trip the timeout");
    report
        .accounting
        .verify_closed(report.makespan)
        .expect("timeout path must close the books like any other exit");
}

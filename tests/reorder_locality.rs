//! Node reordering end-to-end: a BFS-renumbered graph runs through the same
//! simulated machine with measurably better cache behaviour, and the
//! workload result is unchanged under relabeling.

use std::sync::Arc;

use minnow::algos::bfs::Bfs;
use minnow::graph::gen::uniform::{self, UniformConfig};
use minnow::graph::reorder::{bfs_order, relabel};
use minnow::runtime::sim_exec::{run_software, ExecConfig};
use minnow::runtime::Operator;

#[test]
fn bfs_renumbering_reduces_l2_misses() {
    let original = uniform::generate(&UniformConfig::new(12_000, 4), 21);
    let reordered = relabel(&original, &bfs_order(&original, 0));

    let run = |g: minnow::graph::Csr| {
        let g = Arc::new(g);
        let mut op = Bfs::new(g, 0);
        let policy = op.default_policy();
        let r = run_software(&mut op, policy, &ExecConfig::new(4));
        op.check().expect("BFS must stay exact");
        r
    };
    let before = run(original);
    // The reordered graph's source keeps id 0 (bfs_order maps source -> 0).
    let after = run(reordered);

    assert_eq!(before.tasks, after.tasks, "relabeling must not change work");
    assert!(
        after.l2_misses < before.l2_misses,
        "BFS order must reduce misses: {} -> {}",
        before.l2_misses,
        after.l2_misses
    );
}

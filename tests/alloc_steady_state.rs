//! Steady-state task charging performs zero heap allocation.
//!
//! The hot-path overhaul's contract (see `crates/runtime/src/scratch.rs`)
//! is that once the per-run scratch buffers and the hierarchy's internal
//! tables are warm, the record → replay → charge loop never touches the
//! allocator. This test pins that with a counting `#[global_allocator]`:
//! it replays an identical workload once to warm every buffer, then
//! replays it again and demands the allocation counter does not move.
//!
//! The file deliberately holds a single `#[test]` — the default harness
//! runs tests in this binary concurrently, and a neighbor's allocations
//! would show up in the (process-global) counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use minnow::graph::AddressMap;
use minnow::runtime::op::TaskCtx;
use minnow::runtime::scratch::{charge_task, ChargeCounters, TaskScratch};
use minnow::sim::config::SimConfig;
use minnow::sim::core::{CoreMode, CoreModel};

/// `System` plus an allocation counter. Frees are not counted: the
/// property under test is "no allocation", not "no traffic".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One synthetic task: a few loads with locality, an atomic update, and
/// some arithmetic. `i` drives a deterministic LCG over a bounded node
/// set so the measured pass touches exactly the lines (and directory
/// entries) the warm pass already created.
fn record(ctx: &mut TaskCtx, i: u64) {
    let mut state = i
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    for _ in 0..6 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ctx.load_node(((state >> 33) % 4096) as u32);
    }
    ctx.atomic_node(((state >> 45) % 4096) as u32);
    ctx.add_branches(3);
    ctx.add_instrs(40);
}

#[test]
fn steady_state_charging_allocates_nothing() {
    const TASKS: u64 = 2000;

    let cfg = SimConfig::small(4);
    let core_model = CoreModel::new(cfg.ooo, CoreMode::realistic(), 0.05);
    let mut mem = minnow::sim::hierarchy::MemoryHierarchy::new(&cfg);
    let mut scratch = TaskScratch::new(AddressMap::standard(), false);
    let mut counters = ChargeCounters::default();

    let run = |mem: &mut minnow::sim::hierarchy::MemoryHierarchy,
                   scratch: &mut TaskScratch,
                   counters: &mut ChargeCounters| {
        let mut now = 0;
        for i in 0..TASKS {
            scratch.begin_task();
            record(&mut scratch.ctx, i);
            let cycles = charge_task(
                scratch,
                mem,
                &core_model,
                (i % 4) as usize,
                now,
                &mut None,
                counters,
            );
            now += cycles.total();
        }
        now
    };

    // Warm pass: grows the scratch buffers, the caches' metadata, the
    // directory and prefetch-arrival tables, and the occupancy windows.
    let warm_makespan = run(&mut mem, &mut scratch, &mut counters);
    assert!(warm_makespan > 0);

    // Measured pass: identical workload, zero allocations allowed.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let measured_makespan = run(&mut mem, &mut scratch, &mut counters);
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(measured_makespan > 0);
    assert_eq!(
        delta, 0,
        "steady-state record+charge loop allocated {delta} time(s) over {TASKS} tasks"
    );
    assert!(counters.total_loads > 0);
}

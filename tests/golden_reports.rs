//! Golden-value regression tests: pinned simulator outputs for every
//! workload under the three headline scheduler configurations.
//!
//! The simulator is fully deterministic — same configuration, same
//! report, bit for bit — so any drift in these numbers means the timing
//! model, a scheduler, or an input generator changed behaviour. That is
//! sometimes intentional (a modelling fix); when it is, regenerate the
//! table with:
//!
//! ```sh
//! cargo run --release --bin minnow-sweep -- fig16 \
//!     --scale 0.04 --seed 42 --stdout
//! ```
//!
//! and update the entries below. What this test makes impossible is
//! *silent* drift: a refactor that changes cycle counts without anyone
//! noticing.

use minnow::bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};

/// The exact sweep the goldens were generated from. `headline_threads`
/// is pinned (not read from the environment) so `MINNOW_BENCH_THREADS`
/// cannot change what this test runs.
fn golden_params() -> SweepParams {
    SweepParams {
        scale: 0.04,
        seed: 42,
        headline_threads: 16,
        max_threads: 64,
    }
}

/// (point id, makespan cycles, instructions, L2 misses).
///
/// Pinning instructions and misses also pins MPKI (= misses * 1000 /
/// instructions), the Fig. 18 metric, without comparing floats.
const GOLDEN: [(&str, u64, u64, u64); 21] = [
    ("fig16/SSSP/software", 42_935, 110_648, 5_106),
    ("fig16/SSSP/minnow", 38_344, 79_858, 4_818),
    ("fig16/SSSP/wdp", 23_180, 83_398, 2_157),
    ("fig16/BFS/software", 58_337, 155_076, 10_488),
    ("fig16/BFS/minnow", 61_201, 111_218, 10_958),
    ("fig16/BFS/wdp", 36_048, 101_256, 2_478),
    ("fig16/G500/software", 45_469, 59_104, 2_933),
    ("fig16/G500/minnow", 61_051, 49_630, 2_329),
    ("fig16/G500/wdp", 45_980, 48_312, 646),
    ("fig16/CC/software", 39_771, 90_297, 5_459),
    ("fig16/CC/minnow", 50_102, 56_740, 5_294),
    ("fig16/CC/wdp", 35_922, 54_261, 2_695),
    ("fig16/PR/software", 646_070, 1_824_664, 93_833),
    ("fig16/PR/minnow", 586_541, 1_116_268, 96_883),
    ("fig16/PR/wdp", 550_900, 1_217_713, 77_677),
    ("fig16/TC/software", 16_166, 52_513, 1_222),
    ("fig16/TC/minnow", 29_859, 54_569, 1_163),
    ("fig16/TC/wdp", 27_548, 54_485, 722),
    ("fig16/BC/software", 14_935, 24_978, 2_801),
    ("fig16/BC/minnow", 12_900, 19_502, 2_207),
    ("fig16/BC/wdp", 6_100, 21_191, 831),
];

#[test]
fn reports_match_golden_values() {
    let sweep = Sweep::fig16(&golden_params());
    assert_eq!(
        sweep.points.len(),
        GOLDEN.len(),
        "fig16 enumerates one point per golden entry"
    );
    let result = run_sweep(&sweep, &SweepConfig::serial());

    let mut drift = Vec::new();
    for (id, makespan, instructions, l2_misses) in GOLDEN {
        let r = result.report(id);
        assert!(!r.timed_out, "{id} timed out");
        if (r.makespan, r.instructions, r.l2_misses) != (makespan, instructions, l2_misses) {
            drift.push(format!(
                "{id}: makespan {} (golden {makespan}), instructions {} (golden \
                 {instructions}), l2_misses {} (golden {l2_misses})",
                r.makespan, r.instructions, r.l2_misses
            ));
        }
    }
    assert!(
        drift.is_empty(),
        "simulator output drifted from the golden table (see the module \
         docs to regenerate if the change is intentional):\n{}",
        drift.join("\n")
    );
}

#[test]
fn golden_points_show_wdp_improving_mpki() {
    // A shape check on the pinned values themselves (no simulation):
    // worklist-directed prefetching must cut L2 MPKI vs the same Minnow
    // configuration without prefetching — the paper's central
    // memory-side claim. (Software is not the right baseline here: its
    // worklist overhead inflates the instruction denominator.)
    for chunk in GOLDEN.chunks(3) {
        let [_, (base_id, _, base_instr, base_miss), (_, _, wdp_instr, wdp_miss)] = chunk else {
            panic!("golden table is grouped as software/minnow/wdp triples");
        };
        let base_mpki = *base_miss as f64 * 1000.0 / *base_instr as f64;
        let wdp_mpki = *wdp_miss as f64 * 1000.0 / *wdp_instr as f64;
        assert!(
            wdp_mpki < base_mpki,
            "{base_id}: WDP MPKI {wdp_mpki:.1} not below offload-only {base_mpki:.1}"
        );
    }
}

//! Property-based tests over the core data structures and invariants.

use std::sync::OnceLock;

use proptest::prelude::*;

use minnow::bench::runner::BenchRun;
use minnow::bench::sweep::{Sweep, SweepConfig, SweepParams};
use minnow::engine::CreditPool;
use minnow::graph::Csr;
use minnow::runtime::split::split_task;
use minnow::runtime::worklist::PolicyKind;
use minnow::runtime::Task;
use minnow::sim::cache::Cache;
use minnow::sim::config::CacheParams;
use minnow::sim::contend::GapTracker;
use minnow::sim::stats::{CycleAccounting, CycleBin, Histogram};

fn any_task() -> impl Strategy<Value = Task> {
    (0u64..1000, 0u32..500).prop_map(|(p, n)| Task::new(p, n))
}

/// One cache operation for the oracle-equivalence property.
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    /// Demand access; on a miss, fill when the flag is set (mirroring the
    /// hierarchy's access-then-fill protocol).
    Access { addr: u64, write: bool, fill: bool },
    /// Prefetch fill (marked line).
    PrefetchFill { addr: u64 },
    /// Clear a mark without a full access.
    ConsumeMark { addr: u64 },
    /// Directory-initiated invalidation.
    Invalidate { addr: u64 },
}

fn any_cache_op() -> impl Strategy<Value = CacheOp> {
    // Addresses over 16 lines mapping onto 4 sets: heavy conflict traffic.
    let addr = (0u64..16).prop_map(|l| l * 64 + (l % 7));
    // The vendored proptest stub's `prop_oneof!` is unweighted; bias
    // toward demand traffic by listing the access arm twice.
    prop_oneof![
        (addr.clone(), any::<bool>(), any::<bool>())
            .prop_map(|(addr, write, fill)| CacheOp::Access { addr, write, fill }),
        (addr.clone(), any::<bool>(), any::<bool>())
            .prop_map(|(addr, write, fill)| CacheOp::Access { addr, write, fill }),
        addr.clone().prop_map(|addr| CacheOp::PrefetchFill { addr }),
        addr.clone().prop_map(|addr| CacheOp::ConsumeMark { addr }),
        addr.prop_map(|addr| CacheOp::Invalidate { addr }),
    ]
}

/// Naive array-of-structs reference cache: one `Option<Line>` per way,
/// scanned linearly, LRU victim chosen by strict-`<` first minimum — the
/// exact model the packed SoA [`Cache`] replaced. Tick semantics match
/// the production model's documented contract: the clock advances exactly
/// when a recency timestamp is recorded (hits and fills), never on
/// no-fill misses or metadata-only operations.
struct OracleCache {
    slots: Vec<Option<OracleLine>>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    tick: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OracleLine {
    line_addr: u64,
    last_use: u64,
    dirty: bool,
    prefetch: bool,
}

/// The oracle's answer for one operation, compared field-for-field with
/// the packed implementation's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OracleOutcome {
    Lookup { hit: bool, prefetch_consumed: bool },
    Fill { evicted: Option<(u64, bool, bool)> },
    Consumed(bool),
    Invalidated(Option<(bool, bool)>),
}

impl OracleCache {
    fn new(params: &CacheParams) -> Self {
        let sets = params.sets();
        OracleCache {
            slots: vec![None; sets * params.ways],
            sets,
            ways: params.ways,
            line_shift: params.line_bytes.trailing_zeros(),
            tick: 0,
        }
    }

    fn set_base(&self, line_addr: u64) -> usize {
        (line_addr as usize % self.sets) * self.ways
    }

    fn find(&self, line_addr: u64) -> Option<usize> {
        let base = self.set_base(line_addr);
        (base..base + self.ways)
            .find(|&i| self.slots[i].map(|l| l.line_addr) == Some(line_addr))
    }

    fn access(&mut self, addr: u64, write: bool) -> OracleOutcome {
        let line_addr = addr >> self.line_shift;
        if let Some(idx) = self.find(line_addr) {
            self.tick += 1;
            let line = self.slots[idx].as_mut().unwrap();
            line.last_use = self.tick;
            line.dirty |= write;
            let prefetch_consumed = line.prefetch;
            line.prefetch = false;
            OracleOutcome::Lookup {
                hit: true,
                prefetch_consumed,
            }
        } else {
            OracleOutcome::Lookup {
                hit: false,
                prefetch_consumed: false,
            }
        }
    }

    fn fill(&mut self, addr: u64, write: bool, prefetch: bool) -> OracleOutcome {
        let line_addr = addr >> self.line_shift;
        self.tick += 1;
        let base = self.set_base(line_addr);
        if let Some(idx) = self.find(line_addr) {
            let line = self.slots[idx].as_mut().unwrap();
            line.last_use = self.tick;
            line.dirty |= write;
            return OracleOutcome::Fill { evicted: None };
        }
        let newcomer = OracleLine {
            line_addr,
            last_use: self.tick,
            dirty: write,
            prefetch,
        };
        if let Some(free) = (base..base + self.ways).find(|&i| self.slots[i].is_none()) {
            self.slots[free] = Some(newcomer);
            return OracleOutcome::Fill { evicted: None };
        }
        let victim = (base..base + self.ways)
            .min_by_key(|&i| self.slots[i].unwrap().last_use)
            .unwrap();
        let old = self.slots[victim].unwrap();
        self.slots[victim] = Some(newcomer);
        OracleOutcome::Fill {
            evicted: Some((old.line_addr, old.dirty, old.prefetch)),
        }
    }

    fn consume_mark(&mut self, addr: u64) -> OracleOutcome {
        let line_addr = addr >> self.line_shift;
        if let Some(idx) = self.find(line_addr) {
            let line = self.slots[idx].as_mut().unwrap();
            if line.prefetch {
                line.prefetch = false;
                return OracleOutcome::Consumed(true);
            }
        }
        OracleOutcome::Consumed(false)
    }

    fn invalidate(&mut self, addr: u64) -> OracleOutcome {
        let line_addr = addr >> self.line_shift;
        match self.find(line_addr) {
            Some(idx) => {
                let old = self.slots[idx].take().unwrap();
                OracleOutcome::Invalidated(Some((old.dirty, old.prefetch)))
            }
            None => OracleOutcome::Invalidated(None),
        }
    }

    fn resident(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    fn marked(&self) -> usize {
        self.slots.iter().flatten().filter(|l| l.prefetch).count()
    }
}

/// Filter strings for the sweep-selection property: meaningful id
/// fragments plus arbitrary short strings over the id alphabet (the
/// proptest stub has no native string strategy, so build from indices).
fn any_filter() -> impl Strategy<Value = String> {
    const ALPHABET: [char; 12] = ['S', 'B', 'C', 'P', 'T', 'G', '/', 't', 'c', 'm', '1', 'z'];
    prop_oneof![
        Just("SSSP".to_string()),
        Just("/BFS/".to_string()),
        Just("minnow".to_string()),
        Just("wdp".to_string()),
        Just("serial".to_string()),
        Just(String::new()),
        Just("no-such-point".to_string()),
        prop::collection::vec(0usize..ALPHABET.len(), 0..5)
            .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect()),
    ]
}

fn any_sweep_params() -> impl Strategy<Value = SweepParams> {
    (0u64..1 << 48, 1usize..64, 1usize..64).prop_map(|(seed, headline, max)| SweepParams {
        scale: 0.02,
        seed,
        headline_threads: headline,
        max_threads: max,
    })
}

/// Reference points for the bound-weave epoch property: two fig16
/// configurations at the golden parameters (scale 0.04, seed 42 — the
/// exact sweep `tests/golden_reports.rs` pins, so the serial makespans
/// computed here *are* the golden makespans), chosen to exercise both
/// deferral paths — WDP prefetch fills and plain demand charges.
fn weave_reference_points() -> &'static Vec<(String, BenchRun, u64)> {
    static REF: OnceLock<Vec<(String, BenchRun, u64)>> = OnceLock::new();
    REF.get_or_init(|| {
        let params = SweepParams {
            scale: 0.04,
            seed: 42,
            headline_threads: 16,
            max_threads: 64,
        };
        Sweep::fig16(&params)
            .points
            .iter()
            .filter(|p| p.id == "fig16/SSSP/wdp" || p.id == "fig16/CC/minnow")
            .map(|p| (p.id.clone(), p.run.clone(), p.run.execute().makespan))
            .collect()
    })
}

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Lifo),
        (1usize..32).prop_map(PolicyKind::Chunked),
        (0u32..8).prop_map(PolicyKind::Obim),
        Just(PolicyKind::Strict),
    ]
}

proptest! {
    /// Every policy returns exactly the multiset of pushed tasks.
    #[test]
    fn worklists_conserve_tasks(tasks in prop::collection::vec(any_task(), 0..200),
                                kind in any_policy()) {
        let mut wl = kind.build();
        for &t in &tasks {
            wl.push(t);
        }
        prop_assert_eq!(wl.len(), tasks.len());
        let mut out = Vec::new();
        while let Some(t) = wl.pop() {
            out.push(t);
        }
        prop_assert!(wl.is_empty());
        let mut a: Vec<_> = tasks.iter().map(|t| (t.priority, t.node)).collect();
        let mut b: Vec<_> = out.iter().map(|t| (t.priority, t.node)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// OBIM pops never go back to a strictly smaller bucket unless a more
    /// urgent task was pushed in between (drain-only check).
    #[test]
    fn obim_buckets_drain_in_order(tasks in prop::collection::vec(any_task(), 1..200),
                                   lg in 0u32..6) {
        let mut wl = PolicyKind::Obim(lg).build();
        for &t in &tasks {
            wl.push(t);
        }
        let mut last_bucket = 0u64;
        while let Some(t) = wl.pop() {
            let b = t.bucket(lg);
            prop_assert!(b >= last_bucket, "bucket went backwards: {b} < {last_bucket}");
            last_bucket = b;
        }
    }

    /// Strict priority pops a non-decreasing priority sequence.
    #[test]
    fn strict_priority_sorts(tasks in prop::collection::vec(any_task(), 1..200)) {
        let mut wl = PolicyKind::Strict.build();
        for &t in &tasks {
            wl.push(t);
        }
        let mut last = 0u64;
        while let Some(t) = wl.pop() {
            prop_assert!(t.priority >= last);
            last = t.priority;
        }
    }

    /// Task splitting covers each edge slot exactly once and preserves
    /// priority and node.
    #[test]
    fn split_partitions_exactly(degree in 0usize..40_000,
                                threshold in 1u32..5_000,
                                priority in 0u64..100) {
        let parts = split_task(Task::new(priority, 3), degree, threshold);
        let mut covered = 0usize;
        let mut next = 0usize;
        for p in &parts {
            prop_assert_eq!(p.priority, priority);
            prop_assert_eq!(p.node, 3);
            let r = p.resolve_range(degree);
            prop_assert_eq!(r.start, next, "ranges must be contiguous");
            prop_assert!(r.len() <= threshold as usize || parts.len() == 1);
            covered += r.len();
            next = r.end;
        }
        prop_assert_eq!(covered, degree);
    }

    /// Credit pools conserve credits under arbitrary consume/release
    /// interleavings.
    #[test]
    fn credit_pool_conserves(total in 1u32..64, ops in prop::collection::vec(any::<bool>(), 0..500)) {
        let mut pool = CreditPool::new(total);
        let mut outstanding = 0u32;
        for consume in ops {
            if consume {
                if pool.try_consume() {
                    outstanding += 1;
                }
            } else if outstanding > 0 {
                pool.release(1);
                outstanding -= 1;
            }
            prop_assert!(pool.check_conservation());
            prop_assert!(pool.available() <= total);
        }
    }

    /// The cache never exceeds its capacity, and a fill makes the line
    /// immediately visible.
    #[test]
    fn cache_capacity_and_presence(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        let params = CacheParams { size_bytes: 2048, ways: 4, line_bytes: 64, latency: 1 };
        let mut cache = Cache::new(params);
        for &a in &addrs {
            cache.fill(a, false, false);
            prop_assert!(cache.probe(a), "just-filled line must be present");
            prop_assert!(cache.resident_lines() <= params.lines());
        }
    }

    /// Oracle equivalence for the packed SoA cache: replay an arbitrary
    /// operation stream against both the production [`Cache`] and the naive
    /// array-of-structs [`OracleCache`] it replaced, and demand identical
    /// decisions op by op — hit/miss, consumed marks, victim identity and
    /// metadata, invalidation results — plus identical resident/marked
    /// counts at every step.
    #[test]
    fn packed_cache_matches_naive_oracle(ops in prop::collection::vec(any_cache_op(), 1..400)) {
        let params = CacheParams { size_bytes: 512, ways: 2, line_bytes: 64, latency: 1 };
        let mut packed = Cache::new(params);
        let mut oracle = OracleCache::new(&params);
        for (step, op) in ops.into_iter().enumerate() {
            let (got, want) = match op {
                CacheOp::Access { addr, write, fill } => {
                    let l = packed.access(addr, write);
                    let want = oracle.access(addr, write);
                    let got = OracleOutcome::Lookup {
                        hit: l.hit,
                        prefetch_consumed: l.prefetch_consumed,
                    };
                    prop_assert_eq!(got, want, "lookup diverged at step {}: {:?}", step, op);
                    if !l.hit && fill {
                        let ev = packed.fill(addr, write, false);
                        (
                            OracleOutcome::Fill {
                                evicted: ev.map(|e| (e.line_addr, e.dirty, e.prefetch_unused)),
                            },
                            oracle.fill(addr, write, false),
                        )
                    } else {
                        (got, want)
                    }
                }
                CacheOp::PrefetchFill { addr } => {
                    let ev = packed.fill(addr, false, true);
                    (
                        OracleOutcome::Fill {
                            evicted: ev.map(|e| (e.line_addr, e.dirty, e.prefetch_unused)),
                        },
                        oracle.fill(addr, false, true),
                    )
                }
                CacheOp::ConsumeMark { addr } => (
                    OracleOutcome::Consumed(packed.consume_mark(addr)),
                    oracle.consume_mark(addr),
                ),
                CacheOp::Invalidate { addr } => (
                    OracleOutcome::Invalidated(
                        packed.invalidate(addr).map(|e| (e.dirty, e.prefetch_unused)),
                    ),
                    oracle.invalidate(addr),
                ),
            };
            prop_assert_eq!(got, want, "decision diverged at step {}: {:?}", step, op);
            prop_assert_eq!(packed.resident_lines(), oracle.resident(),
                "resident count diverged at step {}", step);
            prop_assert_eq!(packed.marked_lines(), oracle.marked(),
                "marked count diverged at step {}", step);
        }
    }

    /// Gap-tracker reservations never overlap, regardless of request order.
    #[test]
    fn gap_tracker_reservations_disjoint(reqs in prop::collection::vec((0u64..10_000, 1u64..50), 1..100)) {
        let mut g = GapTracker::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for (now, dur) in reqs {
            let begin = g.reserve(now, dur);
            prop_assert!(begin >= now);
            for &(s, e) in &intervals {
                prop_assert!(begin + dur <= s || begin >= e,
                    "overlap: [{begin},{}) vs [{s},{e})", begin + dur);
            }
            intervals.push((begin, begin + dur));
        }
    }

    /// Sweep enumeration is complete and duplicate-free for every named
    /// sweep under arbitrary parameters, and per-point seeds depend only
    /// on the workload (all configurations of one workload must share an
    /// input graph).
    #[test]
    fn sweeps_enumerate_unique_points(params in any_sweep_params()) {
        for name in Sweep::NAMES {
            let sweep = Sweep::named(name, &params).unwrap();
            prop_assert!(!sweep.points.is_empty(), "{name} enumerated nothing");
            let mut ids: Vec<&str> = sweep.points.iter().map(|p| p.id.as_str()).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "{} has duplicate ids", name);
            let mut seed_of = std::collections::HashMap::new();
            for point in &sweep.points {
                let prior = seed_of.insert(point.run.kind, point.run.seed);
                prop_assert!(prior.is_none_or(|s| s == point.run.seed),
                    "{}: {} configs disagree on the input seed", name, point.run.kind);
            }
        }
    }

    /// Filtered selection picks exactly the matching points — none
    /// duplicated, none missing, enumeration order preserved — for any
    /// filter string.
    #[test]
    fn sweep_filter_selects_exactly_the_matches(params in any_sweep_params(),
                                                filter in any_filter()) {
        let sweep = Sweep::fig15(&params);
        let cfg = SweepConfig::serial().with_filter(filter.clone());
        let picked: Vec<&str> = sweep.selected(&cfg).iter().map(|p| p.id.as_str()).collect();
        let want: Vec<&str> = sweep.points.iter()
            .map(|p| p.id.as_str())
            .filter(|id| id.contains(filter.as_str()))
            .collect();
        prop_assert_eq!(picked, want);
        // No filter selects everything.
        prop_assert_eq!(sweep.selected(&SweepConfig::serial()).len(), sweep.points.len());
    }

    /// The credit ceiling holds under arbitrary consume/release
    /// interleavings with multi-credit releases, and the pool's own
    /// accounting (available + outstanding == total) never drifts.
    #[test]
    fn credit_pool_never_exceeds_ceiling(total in 1u32..64,
                                         ops in prop::collection::vec((any::<bool>(), 1u32..8), 0..500)) {
        let mut pool = CreditPool::new(total);
        let mut outstanding = 0u32;
        let mut denied = 0u64;
        for (consume, n) in ops {
            if consume {
                if pool.try_consume() {
                    outstanding += 1;
                } else {
                    denied += 1;
                    prop_assert_eq!(pool.available(), 0, "denial only when empty");
                }
            } else {
                let give_back = n.min(outstanding);
                if give_back > 0 {
                    pool.release(give_back);
                    outstanding -= give_back;
                }
            }
            prop_assert!(pool.available() <= pool.total(), "ceiling exceeded");
            prop_assert_eq!(pool.available() + outstanding, total, "credits leaked");
            prop_assert!(pool.check_conservation());
        }
        prop_assert_eq!(pool.starvations(), denied);
        prop_assert_eq!(pool.consumed() - pool.returned(), outstanding as u64);
    }

    /// Splitting a value stream at any point and merging the two
    /// histograms is exact: counts, sum, and every bucket match the
    /// histogram that recorded the whole stream.
    #[test]
    fn histogram_merge_preserves_any_split(values in prop::collection::vec(any::<u64>(), 0..300),
                                           cut in 0usize..300) {
        let cut = cut.min(values.len());
        let mut whole = Histogram::default();
        for &v in &values {
            whole.record(v);
        }
        let mut left = Histogram::default();
        for &v in &values[..cut] {
            left.record(v);
        }
        let mut right = Histogram::default();
        for &v in &values[cut..] {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.sum(), whole.sum());
        prop_assert_eq!(left.count(), values.len() as u64);
        prop_assert_eq!(left.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        for bucket in 0..minnow::sim::stats::HISTOGRAM_BUCKETS {
            prop_assert_eq!(left.bucket_count(bucket), whole.bucket_count(bucket),
                "bucket {} diverged after merge", bucket);
        }
    }

    /// Histogram merge is associative: (a + b) + c == a + (b + c).
    #[test]
    fn histogram_merge_is_associative(a in prop::collection::vec(any::<u64>(), 0..100),
                                      b in prop::collection::vec(any::<u64>(), 0..100),
                                      c in prop::collection::vec(any::<u64>(), 0..100)) {
        let build = |vs: &[u64]| {
            let mut h = Histogram::default();
            for &v in vs {
                h.record(v);
            }
            h
        };
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        let mut bc = build(&b);
        bc.merge(&build(&c));
        let mut right = build(&a);
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        for bucket in 0..minnow::sim::stats::HISTOGRAM_BUCKETS {
            prop_assert_eq!(left.bucket_count(bucket), right.bucket_count(bucket));
        }
    }

    /// Cycle-bin accumulation commutes: charging the same multiset of
    /// (core, bin, cycles) in any order yields identical books, and
    /// closing distributes the identical drain.
    #[test]
    fn cycle_accounting_is_order_independent(
        cores in 1usize..8,
        charges in prop::collection::vec((0usize..8, 0usize..5, 0u64..1000), 0..200),
    ) {
        let charge_all = |acct: &mut CycleAccounting, order: &[(usize, usize, u64)]| {
            for &(core, bin, cycles) in order {
                acct.charge(core % cores, CycleBin::ALL[bin], cycles);
            }
        };
        let mut forward = CycleAccounting::new(cores);
        charge_all(&mut forward, &charges);
        let mut reversed = CycleAccounting::new(cores);
        let back: Vec<_> = charges.iter().rev().copied().collect();
        charge_all(&mut reversed, &back);
        let makespan = (0..cores).map(|c| forward.core(c).total()).max().unwrap_or(0);
        forward.close(makespan);
        reversed.close(makespan);
        prop_assert!(forward.verify_closed(makespan).is_ok());
        for core in 0..cores {
            for bin in CycleBin::ALL {
                prop_assert_eq!(forward.core(core).get(bin), reversed.core(core).get(bin),
                    "core {} bin {} depends on charge order", core, bin.name());
            }
            prop_assert_eq!(forward.core(core).total(), makespan);
        }
        prop_assert_eq!(forward.merged().total(), makespan * cores as u64);
    }

    /// Bound-weave scheduling knobs are outcome-neutral: for any epoch
    /// length, in-flight cap, and thread count, the woven simulation
    /// reproduces the golden fig16 makespans exactly. Epochs only decide
    /// *when* the executor drains the weave, and the cap only bounds how
    /// many fetches ride in flight — neither may leak into simulated time.
    /// Runs are pinned so the shards actually engage: the reference
    /// points sit below the adaptive-fallback threshold.
    #[test]
    fn weave_epoch_preserves_golden_makespans(epoch in 1u64..300_000,
                                              cap in 1usize..1024,
                                              point_threads in 2usize..5) {
        for (id, run, golden) in weave_reference_points() {
            let mut woven = run.clone();
            woven.point_threads = point_threads;
            woven.pin_point_threads = true;
            woven.weave_epoch = Some(epoch);
            woven.weave_inflight = Some(cap);
            let report = woven.execute();
            prop_assert_eq!(report.makespan, *golden,
                "{}: epoch {} cap {} threads {} changed the makespan",
                id, epoch, cap, point_threads);
        }
    }

    /// Schedule fuzzing for the sharded weave: random shard counts,
    /// epoch lengths, drain caps, *and* injected per-shard stalls (the
    /// test-only `MINNOW_SHARD_STALL_NS` hook skews each lane's
    /// real-time progress by a different amount) must never change the
    /// golden fig16 makespans. Whatever interleaving the host scheduler
    /// produces, the ticket scoreboard forces the serial order.
    #[test]
    fn shard_schedule_fuzzing_preserves_golden_makespans(
        point_threads in 2usize..10,
        epoch in 1u64..200_000,
        cap in 1usize..512,
        stall_ns in 0u64..3_000,
    ) {
        std::env::set_var("MINNOW_SHARD_STALL_NS", stall_ns.to_string());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (id, run, golden) in weave_reference_points() {
                let mut woven = run.clone();
                woven.point_threads = point_threads;
                woven.pin_point_threads = true;
                woven.weave_epoch = Some(epoch);
                woven.weave_inflight = Some(cap);
                let report = woven.execute();
                assert_eq!(report.makespan, *golden,
                    "{id}: shards {point_threads} epoch {epoch} cap {cap} \
                     stall {stall_ns}ns changed the makespan");
            }
        }));
        std::env::remove_var("MINNOW_SHARD_STALL_NS");
        if let Err(e) = outcome {
            std::panic::resume_unwind(e);
        }
    }

    /// Schedule fuzzing for the sharded front: random front/lane splits
    /// of the point budget, epoch lengths, *and* injected per-front-
    /// thread stalls (the test-only `MINNOW_FRONT_STALL_NS` hook delays
    /// each front shard's baton receipt by a different amount) must
    /// never change the golden fig16 makespans. Whatever real-time skew
    /// the host scheduler adds, the turn relay hands the spine over in
    /// canonical (clock, core) order.
    #[test]
    fn front_schedule_fuzzing_preserves_golden_makespans(
        point_threads in 2usize..6,
        front_pick in 1usize..6,
        epoch in 1u64..200_000,
        stall_ns in 0u64..3_000,
    ) {
        let front = front_pick.min(point_threads);
        std::env::set_var("MINNOW_FRONT_STALL_NS", stall_ns.to_string());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (id, run, golden) in weave_reference_points() {
                let mut split = run.clone();
                split.point_threads = point_threads;
                split.pin_point_threads = true;
                split.front_shards = Some(front);
                split.weave_epoch = Some(epoch);
                let report = split.execute();
                assert_eq!(report.makespan, *golden,
                    "{id}: budget {point_threads} front {front} epoch {epoch} \
                     stall {stall_ns}ns changed the makespan");
                assert_eq!(
                    report.front_threads_used + report.lane_threads_used,
                    point_threads,
                    "{id}: the split must spend the whole pinned budget"
                );
            }
        }));
        std::env::remove_var("MINNOW_FRONT_STALL_NS");
        if let Err(e) = outcome {
            std::panic::resume_unwind(e);
        }
    }

    /// Rollback-storm fuzzing for speculative shard overlap: random
    /// front splits, injected baton-latency skew, *and* the test-only
    /// `MINNOW_SPEC_FORCE_ROLLBACK` hook (which discards every Nth
    /// consumed speculation as if validation had failed) must never
    /// change the golden fig16 makespans. Whether a pre-executed prefix
    /// commits or replays is pure wall-clock; the simulated outcome is
    /// pinned to the serial order either way.
    #[test]
    fn speculation_rollback_storms_preserve_golden_makespans(
        point_threads in 2usize..6,
        front_pick in 2usize..6,
        force_every in 1u64..8,
        stall_ns in 0u64..2_000,
    ) {
        let front = front_pick.min(point_threads);
        std::env::set_var("MINNOW_FRONT_STALL_NS", stall_ns.to_string());
        std::env::set_var("MINNOW_SPEC_FORCE_ROLLBACK", force_every.to_string());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (id, run, golden) in weave_reference_points() {
                let mut spec = run.clone();
                spec.point_threads = point_threads;
                spec.pin_point_threads = true;
                spec.front_shards = Some(front);
                spec.speculate = Some(true);
                let report = spec.execute();
                assert_eq!(report.makespan, *golden,
                    "{id}: budget {point_threads} front {front} forced rollback \
                     every {force_every} stall {stall_ns}ns changed the makespan");
                assert!(
                    report.spec_commits + report.spec_rollbacks <= report.spec_attempts,
                    "{id}: consumed speculations exceed the attempted"
                );
            }
        }));
        std::env::remove_var("MINNOW_SPEC_FORCE_ROLLBACK");
        std::env::remove_var("MINNOW_FRONT_STALL_NS");
        if let Err(e) = outcome {
            std::panic::resume_unwind(e);
        }
    }

    /// CSR construction round-trips an arbitrary edge list.
    #[test]
    fn csr_roundtrip(edges in prop::collection::vec((0u32..50, 0u32..50), 0..300)) {
        let g = Csr::from_edges(50, &edges, None);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.edges(), edges.len());
        let mut want = edges.clone();
        want.sort_unstable();
        let mut got = Vec::new();
        for v in 0..50u32 {
            for &u in g.neighbors(v) {
                got.push((v, u));
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use minnow::engine::CreditPool;
use minnow::graph::Csr;
use minnow::runtime::split::split_task;
use minnow::runtime::worklist::PolicyKind;
use minnow::runtime::Task;
use minnow::sim::cache::Cache;
use minnow::sim::config::CacheParams;
use minnow::sim::contend::GapTracker;

fn any_task() -> impl Strategy<Value = Task> {
    (0u64..1000, 0u32..500).prop_map(|(p, n)| Task::new(p, n))
}

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Lifo),
        (1usize..32).prop_map(PolicyKind::Chunked),
        (0u32..8).prop_map(PolicyKind::Obim),
        Just(PolicyKind::Strict),
    ]
}

proptest! {
    /// Every policy returns exactly the multiset of pushed tasks.
    #[test]
    fn worklists_conserve_tasks(tasks in prop::collection::vec(any_task(), 0..200),
                                kind in any_policy()) {
        let mut wl = kind.build();
        for &t in &tasks {
            wl.push(t);
        }
        prop_assert_eq!(wl.len(), tasks.len());
        let mut out = Vec::new();
        while let Some(t) = wl.pop() {
            out.push(t);
        }
        prop_assert!(wl.is_empty());
        let mut a: Vec<_> = tasks.iter().map(|t| (t.priority, t.node)).collect();
        let mut b: Vec<_> = out.iter().map(|t| (t.priority, t.node)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// OBIM pops never go back to a strictly smaller bucket unless a more
    /// urgent task was pushed in between (drain-only check).
    #[test]
    fn obim_buckets_drain_in_order(tasks in prop::collection::vec(any_task(), 1..200),
                                   lg in 0u32..6) {
        let mut wl = PolicyKind::Obim(lg).build();
        for &t in &tasks {
            wl.push(t);
        }
        let mut last_bucket = 0u64;
        while let Some(t) = wl.pop() {
            let b = t.bucket(lg);
            prop_assert!(b >= last_bucket, "bucket went backwards: {b} < {last_bucket}");
            last_bucket = b;
        }
    }

    /// Strict priority pops a non-decreasing priority sequence.
    #[test]
    fn strict_priority_sorts(tasks in prop::collection::vec(any_task(), 1..200)) {
        let mut wl = PolicyKind::Strict.build();
        for &t in &tasks {
            wl.push(t);
        }
        let mut last = 0u64;
        while let Some(t) = wl.pop() {
            prop_assert!(t.priority >= last);
            last = t.priority;
        }
    }

    /// Task splitting covers each edge slot exactly once and preserves
    /// priority and node.
    #[test]
    fn split_partitions_exactly(degree in 0usize..40_000,
                                threshold in 1u32..5_000,
                                priority in 0u64..100) {
        let parts = split_task(Task::new(priority, 3), degree, threshold);
        let mut covered = 0usize;
        let mut next = 0usize;
        for p in &parts {
            prop_assert_eq!(p.priority, priority);
            prop_assert_eq!(p.node, 3);
            let r = p.resolve_range(degree);
            prop_assert_eq!(r.start, next, "ranges must be contiguous");
            prop_assert!(r.len() <= threshold as usize || parts.len() == 1);
            covered += r.len();
            next = r.end;
        }
        prop_assert_eq!(covered, degree.max(0));
    }

    /// Credit pools conserve credits under arbitrary consume/release
    /// interleavings.
    #[test]
    fn credit_pool_conserves(total in 1u32..64, ops in prop::collection::vec(any::<bool>(), 0..500)) {
        let mut pool = CreditPool::new(total);
        let mut outstanding = 0u32;
        for consume in ops {
            if consume {
                if pool.try_consume() {
                    outstanding += 1;
                }
            } else if outstanding > 0 {
                pool.release(1);
                outstanding -= 1;
            }
            prop_assert!(pool.check_conservation());
            prop_assert!(pool.available() <= total);
        }
    }

    /// The cache never exceeds its capacity, and a fill makes the line
    /// immediately visible.
    #[test]
    fn cache_capacity_and_presence(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        let params = CacheParams { size_bytes: 2048, ways: 4, line_bytes: 64, latency: 1 };
        let mut cache = Cache::new(params);
        for &a in &addrs {
            cache.fill(a, false, false);
            prop_assert!(cache.probe(a), "just-filled line must be present");
            prop_assert!(cache.resident_lines() <= params.lines());
        }
    }

    /// Gap-tracker reservations never overlap, regardless of request order.
    #[test]
    fn gap_tracker_reservations_disjoint(reqs in prop::collection::vec((0u64..10_000, 1u64..50), 1..100)) {
        let mut g = GapTracker::new();
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for (now, dur) in reqs {
            let begin = g.reserve(now, dur);
            prop_assert!(begin >= now);
            for &(s, e) in &intervals {
                prop_assert!(begin + dur <= s || begin >= e,
                    "overlap: [{begin},{}) vs [{s},{e})", begin + dur);
            }
            intervals.push((begin, begin + dur));
        }
    }

    /// CSR construction round-trips an arbitrary edge list.
    #[test]
    fn csr_roundtrip(edges in prop::collection::vec((0u32..50, 0u32..50), 0..300)) {
        let g = Csr::from_edges(50, &edges, None);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.edges(), edges.len());
        let mut want = edges.clone();
        want.sort_unstable();
        let mut got = Vec::new();
        for v in 0..50u32 {
            for &u in g.neighbors(v) {
                got.push((v, u));
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

//! Trace-export schema contract: traced runs emit a deterministic
//! event stream whose Chrome `trace_event` JSON export parses, whose
//! phases and categories come from the pinned vocabulary, and whose
//! per-process timestamps are monotonic. A golden event-count summary
//! pins the exact stream for one small workload so any change to what
//! the simulator traces shows up in review.

use std::collections::BTreeMap;

use minnow::algos::WorkloadKind;
use minnow::bench::runner::BenchRun;
use minnow::bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow::sim::trace::{chrome_trace_json, event_summary, TraceEvent, TracePhase, Tracer};

// ---------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser, enough to validate
// the exported documents without external crates.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::String(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn as_u64(&self) -> u64 {
        match self {
            Json::Number(n) => *n as u64,
            other => panic!("expected number, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing bytes after JSON value");
        v
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn expect(&mut self, b: u8) {
        assert_eq!(
            self.bytes[self.pos], b,
            "expected {:?} at byte {}",
            b as char, self.pos
        );
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        self.skip_ws();
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::String(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(lit.as_bytes()),
            "bad literal at byte {}",
            self.pos
        );
        self.pos += lit.len();
        value
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Object(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.skip_ws();
            self.expect(b':');
            fields.push((key, self.value()));
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Object(fields);
                }
                other => panic!("expected ',' or '}}', got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Array(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Array(items);
                }
                other => panic!("expected ',' or ']', got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes[self.pos] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .expect("utf8 hex escape");
                            let code = u32::from_str_radix(hex, 16).expect("hex escape");
                            out.push(char::from_u32(code).expect("scalar escape"));
                            self.pos += 4;
                        }
                        other => panic!("unsupported escape \\{}", other as char),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    while !matches!(self.bytes[self.pos], b'"' | b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 string"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 number");
        Json::Number(text.parse().unwrap_or_else(|_| panic!("bad number {text:?}")))
    }
}

// ---------------------------------------------------------------------
// The traced workload every schema test shares: small, fixed seed.
// ---------------------------------------------------------------------

fn traced_events() -> (Vec<TraceEvent>, u64) {
    let mut run = BenchRun::minnow_wdp(WorkloadKind::Bfs, 2);
    run.scale = 0.03;
    run.seed = 42;
    let tracer = Tracer::enabled();
    let report = run.execute_traced(&tracer);
    assert_eq!(tracer.dropped(), 0, "small run must fit under the cap");
    (tracer.take_events(), report.makespan)
}

/// Every `(phase, category)` pair the simulator may emit. New
/// instrumentation must extend this vocabulary deliberately.
const VOCABULARY: &[(&str, &str)] = &[
    ("X", "cache"),
    ("X", "prefetch"),
    ("X", "sched"),
    ("X", "task"),
    ("i", "cache"),
    ("i", "sched"),
    ("i", "task"),
    ("C", "dram"),
    ("C", "noc"),
];

#[test]
fn events_use_the_pinned_vocabulary_and_sorted_timestamps() {
    let (events, _makespan) = traced_events();
    assert!(!events.is_empty());
    let mut last_ts = 0;
    for ev in &events {
        let pair = (ev.phase.code(), ev.cat);
        assert!(
            VOCABULARY.contains(&pair),
            "unpinned phase/category pair {pair:?} (event {:?})",
            ev.name
        );
        assert!(ev.ts >= last_ts, "take_events must sort by timestamp");
        last_ts = ev.ts;
        if ev.phase == TracePhase::Counter {
            assert_eq!(
                ev.args.first().map(|(k, _)| *k),
                Some("value"),
                "counters carry their sample under `value`"
            );
        }
    }
}

#[test]
fn chrome_export_parses_and_round_trips_the_events() {
    let (events, _) = traced_events();
    let doc = Parser::parse(&chrome_trace_json(&events, 3));
    assert_eq!(
        doc.get("displayTimeUnit").map(Json::as_str),
        Some("ns"),
        "document must set a display unit"
    );
    let exported = doc.get("traceEvents").expect("traceEvents array").as_array();
    assert_eq!(exported.len(), events.len());
    for (ev, json) in events.iter().zip(exported) {
        assert_eq!(json.get("name").unwrap().as_str(), ev.name);
        assert_eq!(json.get("cat").unwrap().as_str(), ev.cat);
        assert_eq!(json.get("ph").unwrap().as_str(), ev.phase.code());
        assert_eq!(json.get("ts").unwrap().as_u64(), ev.ts);
        assert_eq!(json.get("pid").unwrap().as_u64(), 3);
        assert_eq!(json.get("tid").unwrap().as_u64(), u64::from(ev.tid));
        match ev.phase {
            TracePhase::Complete => {
                assert_eq!(json.get("dur").unwrap().as_u64(), ev.dur);
            }
            TracePhase::Instant => {
                assert_eq!(json.get("s").unwrap().as_str(), "t", "instant scope");
            }
            TracePhase::Counter => {}
        }
        for (key, value) in &ev.args {
            assert_eq!(
                json.get("args").unwrap().get(key).unwrap().as_u64(),
                *value,
                "arg {key} of {}",
                ev.name
            );
        }
    }
}

#[test]
fn sweep_trace_doc_names_processes_and_orders_timestamps() {
    let params = SweepParams {
        scale: 0.03,
        seed: 1234,
        headline_threads: 4,
        max_threads: 4,
    };
    let sweep = Sweep::smoke(&params);
    let result = run_sweep(&sweep, &SweepConfig::serial().with_trace());
    let doc_text = result.chrome_trace_json().expect("tracing was on");
    let doc = Parser::parse(&doc_text);
    let events = doc.get("traceEvents").expect("traceEvents").as_array();
    assert!(!events.is_empty());

    // Every sweep point gets a process_name metadata event, and within
    // each process the non-metadata timestamps are monotonic.
    let mut named_pids = Vec::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in events {
        let pid = ev.get("pid").unwrap().as_u64();
        if ev.get("ph").unwrap().as_str() == "M" {
            assert_eq!(ev.get("name").unwrap().as_str(), "process_name");
            let label = ev.get("args").unwrap().get("name").unwrap().as_str();
            assert!(
                result.points.iter().any(|p| p.id == label),
                "metadata names a sweep point: {label}"
            );
            named_pids.push(pid);
            continue;
        }
        let ts = ev.get("ts").unwrap().as_u64();
        let prev = last_ts.entry(pid).or_insert(0);
        assert!(*prev <= ts, "pid {pid}: timestamps must be monotonic");
        *prev = ts;
    }
    named_pids.sort_unstable();
    assert_eq!(
        named_pids,
        (0..result.points.len() as u64).collect::<Vec<_>>(),
        "one named process per sweep point"
    );
}

#[test]
fn golden_event_count_summary() {
    let (events, _) = traced_events();
    let summary = event_summary(&events);
    let golden: BTreeMap<String, u64> = GOLDEN_SUMMARY
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
    assert_eq!(
        summary, golden,
        "traced event stream changed; if intentional, update GOLDEN_SUMMARY"
    );
}

/// Exact per-`cat/name` event counts for the BFS minnow-wdp run at
/// scale 0.03, seed 42, 2 threads. Regenerate by printing
/// `event_summary(&traced_events().0)` after a deliberate change.
const GOLDEN_SUMMARY: &[(&str, u64)] = &[
    ("cache/evict", 4988),
    ("cache/fill", 5314),
    ("cache/hit_under_miss", 1),
    ("dram/dram_queue", 1839),
    ("noc/noc_hops", 1839),
    ("prefetch/wdp", 5314),
    ("sched/dequeue", 747),
    ("sched/enqueue", 746),
    ("sched/poll", 37),
    ("sched/refill", 49),
    ("sched/spill", 737),
    ("task/execute", 747),
    ("task/retire", 747),
];

#[test]
fn tracing_never_perturbs_results() {
    for (label, run) in [
        (
            "BFS/software",
            BenchRun::software_default(WorkloadKind::Bfs, 4),
        ),
        ("SSSP/minnow", BenchRun::minnow(WorkloadKind::Sssp, 4)),
        ("BFS/minnow-wdp", BenchRun::minnow_wdp(WorkloadKind::Bfs, 4)),
        (
            "SSSP/bsp",
            BenchRun::new(
                WorkloadKind::Sssp,
                4,
                minnow::bench::runner::SchedSpec::Bsp(None),
            ),
        ),
    ] {
        let mut run = run;
        run.scale = 0.03;
        let plain = run.execute();
        let traced = run.execute_traced(&Tracer::enabled());
        assert_eq!(plain.makespan, traced.makespan, "{label}: makespan");
        assert_eq!(plain.tasks, traced.tasks, "{label}: tasks");
        assert_eq!(plain.instructions, traced.instructions, "{label}: instructions");
        assert_eq!(plain.breakdown, traced.breakdown, "{label}: breakdown");
        assert_eq!(plain.l2_misses, traced.l2_misses, "{label}: l2 misses");
        assert_eq!(plain.mem_accesses, traced.mem_accesses, "{label}: accesses");
        assert_eq!(
            plain.accounting.merged().total(),
            traced.accounting.merged().total(),
            "{label}: accounting total"
        );
    }
}

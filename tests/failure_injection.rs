//! Failure injection and edge-condition tests: the paths a paper
//! implementation glosses over but a real system must survive.

use std::sync::Arc;

use minnow::algos::WorkloadKind;
use minnow::engine::isa::{MinnowDevice, MinnowException};
use minnow::engine::offload::{MinnowConfig, MinnowScheduler};
use minnow::engine::threadlet::{ThreadletError, ThreadletQueue};
use minnow::graph::gen::uniform::{self, UniformConfig};
use minnow::graph::AddressMap;
use minnow::runtime::sim_exec::{run, ExecConfig};
use minnow::runtime::{PrefetchKind, Task};
use minnow::sim::MemoryHierarchy;

/// A TLB-miss storm: every spill page faults once; the worker loop
/// handles each exception and retries, and no task is lost.
#[test]
fn tlb_miss_storm_loses_no_tasks() {
    let mut dev = MinnowDevice::init(2, 0, 2);
    let total = 200u32;
    for i in 0..total {
        // Scatter priorities over many buckets = many spill pages.
        let prio = (i as u64 * 7919) % 64;
        loop {
            match dev.enqueue(0, prio, i) {
                Ok(()) => break,
                Err(e) => dev.handle_tlb_miss(e),
            }
        }
    }
    assert!(dev.tlb_misses() > 0, "storm must actually fault");
    // Drain from both cores (core 0's local queue holds a couple of tasks
    // that never spilled).
    let mut got = Vec::new();
    for core in [1usize, 0] {
        loop {
            match dev.dequeue(core) {
                Ok(Some(t)) => got.push(t.node),
                Ok(None) => break,
                Err(e) => dev.handle_tlb_miss(e),
            }
        }
    }
    got.sort_unstable();
    assert_eq!(got, (0..total).collect::<Vec<_>>());
    assert!(dev.done());
}

/// Context switches mid-run: flushing every engine repeatedly must not
/// lose or duplicate tasks, and the run must still finish correctly.
#[test]
fn flush_under_load_preserves_tasks() {
    let graph = Arc::new(uniform::generate(&UniformConfig::new(1200, 4), 3));
    let threads = 4;
    let cfg = ExecConfig::new(threads);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = MinnowScheduler::new(
        graph.clone(),
        AddressMap::standard(),
        PrefetchKind::Standard,
        threads,
        MinnowConfig::no_prefetch(0),
    );

    // Seed, then immediately flush all engines (simulating a context
    // switch right after initialization), then run to completion.
    use minnow::runtime::SchedulerModel;
    sched.seed(vec![Task::new(0, 0)]);
    let before = sched.pending();
    for core in 0..threads {
        sched.flush_engine(core, 0, &mut mem);
    }
    assert_eq!(sched.pending(), before, "flush must preserve every task");

    let mut op = WorkloadKind::Bfs.operator_on(graph);
    // `run` seeds again; drain the duplicate seed first.
    let d = sched.dequeue(0, 0, &mut mem);
    assert!(d.task.is_some());
    let report = run(op.as_mut(), &mut sched, &mut mem, &cfg);
    assert!(!report.timed_out);
    op.check().unwrap();
}

/// One credit: prefetching degenerates gracefully (correct results, some
/// fills, no deadlock) instead of stalling the engine forever.
#[test]
fn single_credit_never_deadlocks() {
    let graph = Arc::new(uniform::generate(&UniformConfig::new(800, 4), 8));
    let threads = 2;
    let cfg = ExecConfig::new(threads);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut mc = MinnowConfig::paper(0);
    mc.prefetch_credits = Some(1);
    let mut sched = MinnowScheduler::new(
        graph.clone(),
        AddressMap::standard(),
        PrefetchKind::Standard,
        threads,
        mc,
    );
    let mut op = WorkloadKind::Bfs.operator_on(graph);
    let report = run(op.as_mut(), &mut sched, &mut mem, &cfg);
    assert!(!report.timed_out);
    op.check().unwrap();
    assert!(report.prefetch_fills > 0);
    let stats = sched.minnow_stats();
    assert!(stats.credit_stalls > 0, "one credit must starve sometimes");
}

/// Threadlet queue exhaustion: admissions are refused, never deadlocked,
/// and the queue drains back to quiescence.
#[test]
fn threadlet_queue_exhaustion_recovers() {
    let mut q = ThreadletQueue::new(8);
    let mut live = Vec::new();
    // Admit until full.
    loop {
        match q.admit(1) {
            Ok(id) => live.push(id),
            Err(ThreadletError::QueueFull) => break,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(live.len(), 4, "8 entries / 2 per reservation");
    assert!(q.free() < 2);
    // Interleave completions and new admissions; progress must continue.
    for round in 0..50 {
        let id = live.remove(round % live.len().max(1));
        q.complete_root(id).unwrap();
        live.push(q.admit(1).unwrap());
    }
    for id in live {
        q.complete_root(id).unwrap();
    }
    assert!(q.is_quiescent());
}

/// Worklist timeout guard: a pathological configuration reports
/// `timed_out` instead of spinning forever.
#[test]
fn task_limit_guards_nonconvergence() {
    let mut op = WorkloadKind::Sssp.build(0.1, 9);
    let mut cfg = ExecConfig::new(2);
    cfg.task_limit = 50;
    let policy = minnow::runtime::PolicyKind::Lifo;
    let report = minnow::runtime::sim_exec::run_software(op.as_mut(), policy, &cfg);
    assert!(report.timed_out);
    assert_eq!(report.tasks, 50);
}

/// Exception type is well-behaved as an error.
#[test]
fn exceptions_are_std_errors() {
    let e: Box<dyn std::error::Error> = Box::new(MinnowException::TlbMiss { addr: 0x42 });
    assert!(e.to_string().contains("0x42"));
}

//! Cross-crate integration: every paper workload stays functionally exact
//! under every executor configuration (software scheduler, Minnow offload,
//! Minnow + worklist-directed prefetching, BSP baseline).

use minnow::algos::WorkloadKind;
use minnow::engine::offload::{MinnowConfig, MinnowScheduler};
use minnow::runtime::bsp::{run_bsp, BspConfig};
use minnow::runtime::sim_exec::{run, run_software, ExecConfig};
use minnow::sim::MemoryHierarchy;

const SCALE: f64 = 0.05;
const SEED: u64 = 1234;

#[test]
fn software_scheduler_is_exact_for_all_workloads() {
    for kind in WorkloadKind::ALL {
        let mut op = kind.build(SCALE, SEED);
        let policy = op.default_policy();
        let report = run_software(op.as_mut(), policy, &ExecConfig::new(4));
        assert!(!report.timed_out, "{kind} timed out");
        op.check().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn minnow_offload_is_exact_for_all_workloads() {
    for kind in WorkloadKind::ALL {
        let mut op = kind.build(SCALE, SEED);
        let cfg = ExecConfig::new(4);
        let mut mem = MemoryHierarchy::new(&cfg.sim);
        let graph = op.graph().clone();
        let mut sched = MinnowScheduler::new(
            graph,
            op.address_map(),
            op.prefetch_kind(),
            4,
            MinnowConfig::no_prefetch(kind.lg_bucket()),
        );
        let report = run(op.as_mut(), &mut sched, &mut mem, &cfg);
        assert!(!report.timed_out, "{kind} timed out");
        op.check().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn minnow_with_prefetching_is_exact_for_all_workloads() {
    for kind in WorkloadKind::ALL {
        let mut op = kind.build(SCALE, SEED);
        let cfg = ExecConfig::new(4);
        let mut mem = MemoryHierarchy::new(&cfg.sim);
        let graph = op.graph().clone();
        let mut sched = MinnowScheduler::new(
            graph,
            op.address_map(),
            op.prefetch_kind(),
            4,
            MinnowConfig::paper(kind.lg_bucket()),
        );
        let report = run(op.as_mut(), &mut sched, &mut mem, &cfg);
        assert!(!report.timed_out, "{kind} timed out");
        op.check().unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(report.prefetch_fills > 0, "{kind} never prefetched");
    }
}

#[test]
fn bsp_engine_is_exact_for_data_driven_workloads() {
    // TC seeds every node exactly once and never re-activates, and PR's
    // frontier dedup assumes one claim per superstep — both fit BSP; run
    // everything and verify.
    for kind in WorkloadKind::ALL {
        let mut op = kind.build(SCALE, SEED);
        let report = run_bsp(op.as_mut(), &BspConfig::new(4));
        assert!(!report.timed_out, "{kind} BSP timed out");
        op.check().unwrap_or_else(|e| panic!("{kind} under BSP: {e}"));
        assert!(report.supersteps > 0);
    }
}

#[test]
fn determinism_same_seed_same_virtual_time() {
    let runone = || {
        let mut op = WorkloadKind::Bfs.build(SCALE, 77);
        let policy = op.default_policy();
        run_software(op.as_mut(), policy, &ExecConfig::new(4))
    };
    let a = runone();
    let b = runone();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.tasks, b.tasks);
    assert_eq!(a.l2_misses, b.l2_misses);
}

//! Directional sanity of the paper's headline claims on scaled inputs:
//! offload beats software at high thread counts, prefetching beats plain
//! offload, and the combination eliminates most L2 misses.

use minnow::algos::WorkloadKind;
use minnow::engine::offload::{MinnowConfig, MinnowScheduler};
use minnow::runtime::sim_exec::{run, run_software, ExecConfig, RunReport};
use minnow::sim::MemoryHierarchy;

const THREADS: usize = 8;

fn software(kind: WorkloadKind, scale: f64) -> RunReport {
    let mut op = kind.build(scale, 5);
    let policy = op.default_policy();
    run_software(op.as_mut(), policy, &ExecConfig::new(THREADS))
}

fn minnow(kind: WorkloadKind, scale: f64, mc: MinnowConfig) -> RunReport {
    let mut op = kind.build(scale, 5);
    let cfg = ExecConfig::new(THREADS);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let graph = op.graph().clone();
    let mut sched =
        MinnowScheduler::new(graph, op.address_map(), op.prefetch_kind(), THREADS, mc);
    let r = run(op.as_mut(), &mut sched, &mut mem, &cfg);
    op.check().expect("must stay correct");
    r
}

#[test]
fn offload_beats_software_on_worklist_bound_cc() {
    let soft = software(WorkloadKind::Cc, 0.2);
    let off = minnow(WorkloadKind::Cc, 0.2, MinnowConfig::no_prefetch(4));
    assert!(
        off.makespan < soft.makespan,
        "CC offload {} must beat software {}",
        off.makespan,
        soft.makespan
    );
}

#[test]
fn wdp_beats_plain_offload_on_memory_bound_bfs() {
    let plain = minnow(WorkloadKind::Bfs, 0.4, MinnowConfig::no_prefetch(0));
    let wdp = minnow(WorkloadKind::Bfs, 0.4, MinnowConfig::paper(0));
    assert!(
        wdp.makespan < plain.makespan,
        "WDP {} must beat plain {}",
        wdp.makespan,
        plain.makespan
    );
    assert!(
        wdp.mpki() < plain.mpki() * 0.5,
        "WDP must halve MPKI: {:.1} vs {:.1}",
        wdp.mpki(),
        plain.mpki()
    );
    assert!(wdp.prefetch_efficiency() > 0.85);
}

#[test]
fn full_minnow_beats_software_across_the_suite() {
    // Aggregate (geo-mean) speedup over a fast subset of the suite.
    let kinds = [WorkloadKind::Bfs, WorkloadKind::Cc, WorkloadKind::Bc];
    let mut log_sum = 0.0;
    for kind in kinds {
        let soft = software(kind, 0.15);
        let full = minnow(kind, 0.15, MinnowConfig::paper(kind.lg_bucket()));
        let speedup = soft.makespan as f64 / full.makespan as f64;
        log_sum += speedup.ln();
        assert!(
            speedup > 0.9,
            "{kind}: Minnow should not lose badly ({speedup:.2}x)"
        );
    }
    let geomean = (log_sum / kinds.len() as f64).exp();
    assert!(geomean > 1.2, "suite geomean speedup {geomean:.2}x too small");
}

#[test]
fn serial_baseline_beats_contended_many_thread_software_on_cc() {
    // Fig. 15: CC's software worklist collapses at high thread counts.
    let mut op = WorkloadKind::Cc.build(0.12, 5);
    let policy = op.default_policy();
    let serial = run_software(op.as_mut(), policy, &ExecConfig::serial());
    op.check().unwrap();

    let mut op = WorkloadKind::Cc.build(0.12, 5);
    let policy = op.default_policy();
    let wide = run_software(op.as_mut(), policy, &ExecConfig::new(32));
    let scaling = serial.makespan as f64 / wide.makespan as f64;
    assert!(
        scaling < 8.0,
        "CC at 32 threads must scale poorly, got {scaling:.1}x"
    );
}

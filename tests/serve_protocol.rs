//! Wire-protocol contracts of the `minnow-serve` daemon:
//!
//! * **Malformed input is survivable** — parse errors and unknown ops
//!   get an error line and the connection stays usable; an oversized
//!   request gets an error line and a hang-up (the stream cannot be
//!   re-synchronized).
//! * **Memoization is total** — repeating an evaluation costs zero
//!   simulator invocations, proved by the daemon's own counters.
//! * **Duplicates are single-flight** — concurrent identical requests
//!   coalesce onto one simulation.
//! * **Journals keep their identity** — a served search refuses a
//!   journal written by a different search instead of mixing results.
//! * **HTTP status mapping** — the hand-rolled HTTP front end maps op
//!   outcomes to 200/400/404/405/413/429 (+ `Retry-After`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use minnow::bench::eval::run_to_json;
use minnow::bench::json_read::Json;
use minnow::bench::runner::BenchRun;
use minnow::algos::WorkloadKind;
use minnow::explore::{Journal, JournalHeader, Space, Strategy};
use minnow::serve::client::{request, request_ok, Client};
use minnow::serve::{journal_filename, Daemon, ServeAddr, ServeConfig, WorkerConfig};

/// A per-test scratch directory (sockets, stores, journals).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minnow-serve-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A daemon on a fresh socket under `dir`, with `executors` local
/// simulation threads and artifacts kept inside `dir`.
fn daemon_in(dir: &Path, executors: usize) -> Daemon {
    let mut cfg = ServeConfig::new(dir.join("serve.sock"));
    cfg.local_executors = executors;
    cfg.out_dir = dir.to_path_buf();
    Daemon::start(cfg).expect("daemon start")
}

/// A small, fast evaluation request line.
fn eval_line(seed: u64) -> String {
    let mut run = BenchRun::minnow(WorkloadKind::Bfs, 2);
    run.scale = 0.05;
    run.seed = seed;
    format!("{{\"op\":\"eval\",\"run\":{}}}", run_to_json(&run))
}

fn shutdown_and_join(daemon: Daemon) {
    daemon.trigger_shutdown();
    daemon.join();
}

#[test]
fn malformed_requests_leave_the_connection_usable() {
    let dir = scratch("malformed");
    let daemon = daemon_in(&dir, 0);
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());

    let mut client = Client::connect(&addr).unwrap();

    // Unparsable JSON: an error line, not a hang-up.
    let doc = client.request("this is not json").unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert!(doc.str_field("error").unwrap().contains("parse"));

    // A document with no `op` field.
    let doc = client.request("{\"x\":1}").unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));

    // An unknown op names the menu.
    let doc = client.request("{\"op\":\"frobnicate\"}").unwrap();
    let err = doc.str_field("error").unwrap();
    assert!(err.contains("unknown op"), "{err}");
    assert!(err.contains("eval") && err.contains("sweep"), "{err}");

    // An eval with a broken run object.
    let doc = client.request("{\"op\":\"eval\",\"run\":{}}").unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));

    // The same connection still answers pings after all that abuse.
    let doc = client.request("{\"op\":\"ping\"}").unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

    shutdown_and_join(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_requests_get_an_error_then_a_hangup() {
    let dir = scratch("oversized");
    let daemon = daemon_in(&dir, 0);
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());

    let mut client = Client::connect(&addr).unwrap();
    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(2 << 20));
    // The daemon stops reading at the cap, replies, and hangs up. The
    // client may see that error line, or — when the hang-up lands while
    // it is still flushing the oversized line — a transport error.
    match client.request(&huge) {
        Ok(doc) => {
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
            assert!(doc.str_field("error").unwrap().contains("exceeds"));
        }
        Err(e) => assert!(e.contains("write") || e.contains("closed"), "{e}"),
    }

    // Either way the connection is dead: the next request fails.
    assert!(client.request("{\"op\":\"ping\"}").is_err());

    // A fresh connection works fine.
    request_ok(&addr, "{\"op\":\"ping\"}").unwrap();

    shutdown_and_join(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeat_evaluations_cost_zero_simulator_invocations() {
    let dir = scratch("memo");
    let daemon = daemon_in(&dir, 1);
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());
    let stats = daemon.stats();

    let first = request_ok(&addr, &eval_line(3)).unwrap();
    assert!(!first.bool_field("cached").unwrap());
    assert_eq!(stats.sim_invocations.load(Ordering::Relaxed), 1);

    let second = request_ok(&addr, &eval_line(3)).unwrap();
    assert!(second.bool_field("cached").unwrap());
    assert_eq!(
        stats.sim_invocations.load(Ordering::Relaxed),
        1,
        "the repeat must not touch the simulator"
    );
    assert_eq!(stats.hits.load(Ordering::Relaxed), 1);
    assert_eq!(stats.misses.load(Ordering::Relaxed), 1);

    // Identical reports, byte for byte.
    assert_eq!(
        format!("{:?}", first.get("report").unwrap()),
        format!("{:?}", second.get("report").unwrap())
    );

    // A different seed is a different key — fresh simulation.
    let third = request_ok(&addr, &eval_line(4)).unwrap();
    assert!(!third.bool_field("cached").unwrap());
    assert_eq!(stats.sim_invocations.load(Ordering::Relaxed), 2);

    shutdown_and_join(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_duplicate_requests_coalesce_onto_one_simulation() {
    let dir = scratch("coalesce");
    // Zero local executors: submitted jobs stay in the queue until the
    // worker we start *after* observing the coalesce, which makes the
    // single-flight window deterministic on any host.
    let daemon = daemon_in(&dir, 0);
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());
    let stats = daemon.stats();

    let spawn_eval = |addr: ServeAddr| {
        std::thread::spawn(move || request_ok(&addr, &eval_line(5)).unwrap())
    };
    let a = spawn_eval(addr.clone());
    let b = spawn_eval(addr.clone());

    // Both requests are in flight and one attached to the other.
    let deadline = Instant::now() + Duration::from_secs(30);
    while stats.coalesced.load(Ordering::Relaxed) < 1 {
        assert!(Instant::now() < deadline, "duplicates never coalesced");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(stats.misses.load(Ordering::Relaxed), 2);

    // Now provide the horsepower: one in-process worker serves the
    // single coalesced job, then parks until the daemon shuts down.
    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        minnow::serve::run_worker(&WorkerConfig::new(worker_addr)).unwrap()
    });

    let ra = a.join().unwrap();
    let rb = b.join().unwrap();
    assert!(!ra.bool_field("cached").unwrap());
    assert_eq!(
        format!("{:?}", ra.get("report").unwrap()),
        format!("{:?}", rb.get("report").unwrap())
    );
    assert_eq!(stats.coalesced.load(Ordering::Relaxed), 1);
    assert_eq!(stats.worker_results.load(Ordering::Relaxed), 1);
    assert_eq!(
        stats.sim_invocations.load(Ordering::Relaxed),
        0,
        "no local executor ever ran"
    );

    shutdown_and_join(daemon);
    assert_eq!(worker.join().unwrap(), 1, "the worker served exactly one job");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_refuses_a_journal_with_a_different_identity() {
    let dir = scratch("identity");
    let daemon = daemon_in(&dir, 1);
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());

    // Plant a journal at exactly the path the daemon will use for a
    // seed-42 halving search — but bound to seed 43.
    let strategy = Strategy::from_flags("halving", 8, 2).unwrap();
    let journal_path = dir.join(journal_filename("smoke", &strategy, 42));
    Journal::open(
        &journal_path,
        JournalHeader {
            space: "smoke".into(),
            seed: 43,
            strategy: strategy.label(),
            rungs: Space::smoke().rungs.clone(),
        },
    )
    .unwrap();

    let doc = request(&addr, "{\"op\":\"explore\",\"space\":\"smoke\"}").unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let err = doc.str_field("error").unwrap();
    assert!(err.contains("different search"), "{err}");

    shutdown_and_join(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One raw HTTP/1.1 round trip (`Connection: close` protocol).
fn http_round_trip(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn http_post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    http_round_trip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn http_front_end_maps_outcomes_to_statuses() {
    let dir = scratch("http");
    let mut cfg = ServeConfig::new(dir.join("serve.sock"));
    cfg.local_executors = 0;
    cfg.queue_cap = 1;
    cfg.out_dir = dir.clone();
    cfg.http = Some("127.0.0.1:0".into());
    let daemon = Daemon::start(cfg).expect("daemon start");
    let http = daemon.http_addr().expect("http listener bound");
    let uds = ServeAddr::Unix(daemon.socket().to_path_buf());
    let stats = daemon.stats();

    // 200: ping and stats over GET.
    let ok = http_round_trip(http, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
    assert!(ok.contains("\"ok\":true"), "{ok}");
    let ok = http_round_trip(http, "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
    assert!(ok.contains("serve_stats"), "{ok}");

    // 400: a body that is not JSON.
    let bad = http_post(http, "/eval", "{broken");
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

    // 404 / 405: unknown path, wrong method.
    let missing = http_round_trip(http, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    let wrong = http_round_trip(http, "GET /eval HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(wrong.starts_with("HTTP/1.1 405"), "{wrong}");

    // 413: a body bigger than the request cap, refused from the
    // headers alone.
    let too_big = http_round_trip(
        http,
        "POST /eval HTTP/1.1\r\nHost: x\r\nContent-Length: 9999999\r\n\r\n",
    );
    assert!(too_big.starts_with("HTTP/1.1 413"), "{too_big}");

    // 429: fill the (capacity-one, zero-executor) queue over the Unix
    // socket, then watch HTTP admission control turn the next one away.
    let blocked_addr = uds.clone();
    let blocked = std::thread::spawn(move || request(&blocked_addr, &eval_line(6)));
    let deadline = Instant::now() + Duration::from_secs(30);
    while stats.inflight.load(Ordering::Relaxed) < 1 {
        assert!(Instant::now() < deadline, "first eval never occupied the queue");
        std::thread::sleep(Duration::from_millis(5));
    }
    let run = eval_line(7);
    let body = run.strip_prefix("{\"op\":\"eval\",").unwrap();
    let busy = http_post(http, "/eval", &format!("{{{body}"));
    assert!(busy.starts_with("HTTP/1.1 429"), "{busy}");
    assert!(busy.contains("Retry-After:"), "{busy}");
    assert!(busy.contains("queue full"), "{busy}");

    // Shutdown releases the parked evaluation with an error response.
    daemon.trigger_shutdown();
    let released = blocked.join().unwrap().unwrap();
    assert_eq!(released.get("ok").and_then(Json::as_bool), Some(false));
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}

//! The daemon's headline contract: artifacts served through
//! `minnow-serve` are **byte-identical** to artifacts produced by the
//! direct binaries — cold, warm from the persistent store, across a
//! daemon restart, and through remote workers with one killed
//! mid-evaluation.

use std::path::PathBuf;
use std::sync::atomic::Ordering;

use minnow::bench::json_read::Json;
use minnow::bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow::explore::{explore, ExploreConfig, ExploreOutcome, Space, Strategy};
use minnow::serve::client::request_ok;
use minnow::serve::{run_worker, Daemon, ServeAddr, ServeConfig, WorkerConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minnow-serve-dist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn served_sweep_is_byte_identical_cold_warm_and_across_restart() {
    let dir = scratch("sweep");

    // The oracle: the direct path, exactly what `minnow-sweep` writes.
    let mut params = SweepParams::from_env();
    params.scale = 0.05;
    params.seed = 7;
    let sweep = Sweep::named("smoke", &params).unwrap();
    let direct = run_sweep(
        &sweep,
        &SweepConfig {
            threads: 1,
            filter: None,
            trace: false,
            point_threads: 1,
            input: None,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
        },
    );
    let direct_jsonl = direct.jsonl();
    let direct_breakdown = direct.breakdown_jsonl();
    assert!(!direct.points.is_empty());

    let serve_cfg = |dir: &PathBuf| {
        let mut cfg = ServeConfig::new(dir.join("serve.sock"));
        cfg.local_executors = 1;
        cfg.store_path = Some(dir.join("store.jsonl"));
        cfg.out_dir = dir.clone();
        cfg
    };
    let sweep_req = "{\"op\":\"sweep\",\"sweep\":\"smoke\",\"scale\":0.05,\"seed\":7}";

    // Pass 1: cold daemon — every point is a fresh simulation, and the
    // served artifact matches the direct one byte for byte.
    let daemon = Daemon::start(serve_cfg(&dir)).unwrap();
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());
    let cold = request_ok(&addr, sweep_req).unwrap();
    assert_eq!(cold.u64_field("points").unwrap() as usize, direct.points.len());
    assert_eq!(cold.u64_field("cached").unwrap(), 0);
    assert_eq!(cold.str_field("jsonl").unwrap(), direct_jsonl);
    assert_eq!(cold.str_field("breakdown").unwrap(), direct_breakdown);

    // Pass 2 on the same daemon: all store hits.
    let warm = request_ok(&addr, sweep_req).unwrap();
    assert_eq!(warm.u64_field("fresh").unwrap(), 0);
    assert_eq!(warm.str_field("jsonl").unwrap(), direct_jsonl);
    daemon.trigger_shutdown();
    daemon.join();

    // Pass 3: a *new* daemon on the persisted store — still zero
    // simulator invocations, still the same bytes.
    let daemon = Daemon::start(serve_cfg(&dir)).unwrap();
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());
    let restarted = request_ok(&addr, sweep_req).unwrap();
    assert_eq!(
        restarted.u64_field("fresh").unwrap(),
        0,
        "the store must survive the restart"
    );
    assert_eq!(restarted.str_field("jsonl").unwrap(), direct_jsonl);
    assert_eq!(restarted.str_field("breakdown").unwrap(), direct_breakdown);
    assert_eq!(daemon.stats().sim_invocations.load(Ordering::Relaxed), 0);
    daemon.trigger_shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn search_survives_worker_death_with_a_byte_identical_frontier() {
    let dir = scratch("workers");

    // The oracle: a single-process search over the same space.
    let strategy = Strategy::from_flags("halving", 8, 2).unwrap();
    let oracle_journal = dir.join("oracle.journal.jsonl");
    let oracle = match explore(&ExploreConfig {
        space: Space::smoke(),
        strategy,
        seed: 42,
        pool_threads: 2,
        point_threads: 1,
        pin_point_threads: false,
        front_shards: None,
        speculate: None,
        max_fresh_evals: None,
        journal_path: oracle_journal,
        verbose: false,
    })
    .unwrap()
    {
        ExploreOutcome::Complete { frontier, .. } => frontier,
        ExploreOutcome::Paused { .. } => panic!("unbudgeted oracle paused"),
    };

    // The daemon simulates nothing itself: every evaluation goes to a
    // remote worker, one of which is rigged to die mid-search.
    let mut cfg = ServeConfig::new(dir.join("serve.sock"));
    cfg.local_executors = 0;
    cfg.out_dir = dir.clone();
    let daemon = Daemon::start(cfg).unwrap();
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());
    let stats = daemon.stats();

    let doomed_addr = addr.clone();
    let doomed = std::thread::spawn(move || {
        let mut cfg = WorkerConfig::new(doomed_addr);
        cfg.name = "doomed".into();
        // Serve one evaluation, then drop the connection while holding
        // the second — without acknowledging it.
        cfg.die_after = Some(1);
        run_worker(&cfg)
    });
    let healthy_addr = addr.clone();
    let healthy = std::thread::spawn(move || {
        let mut cfg = WorkerConfig::new(healthy_addr);
        cfg.name = "healthy".into();
        run_worker(&cfg)
    });

    let doc = request_ok(&addr, "{\"op\":\"explore\",\"space\":\"smoke\"}").unwrap();
    assert_eq!(doc.str_field("status").unwrap(), "complete");
    assert_eq!(
        doc.str_field("frontier_jsonl").unwrap(),
        oracle.to_jsonl(),
        "a search that lost a worker must still produce the oracle's bytes"
    );

    // The fault actually fired and was absorbed by re-issue.
    let err = doomed.join().unwrap().unwrap_err();
    assert!(err.contains("injected fault"), "{err}");
    assert!(
        stats.requeues.load(Ordering::Relaxed) >= 1,
        "the dropped job must have been re-issued"
    );
    assert_eq!(
        stats.sim_invocations.load(Ordering::Relaxed),
        0,
        "no local executor exists; every result came over the wire"
    );
    assert!(stats.worker_results.load(Ordering::Relaxed) > 0);

    // The daemon's frontier artifact on disk matches too.
    let artifact = std::fs::read_to_string(dir.join("smoke.frontier.jsonl"));
    if let Ok(artifact) = artifact {
        assert_eq!(artifact, oracle.to_jsonl());
    }

    daemon.trigger_shutdown();
    daemon.join();
    assert!(healthy.join().unwrap().unwrap() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Ensure the wire sweep response parses as a JSON object all the way
/// down (the jsonl payload is a string field containing the artifact).
#[test]
fn sweep_response_artifact_lines_parse_as_json() {
    let dir = scratch("parse");
    let mut cfg = ServeConfig::new(dir.join("serve.sock"));
    cfg.local_executors = 1;
    cfg.out_dir = dir.clone();
    let daemon = Daemon::start(cfg).unwrap();
    let addr = ServeAddr::Unix(daemon.socket().to_path_buf());

    let doc = request_ok(
        &addr,
        "{\"op\":\"sweep\",\"sweep\":\"smoke\",\"scale\":0.05,\"seed\":9,\"filter\":\"BFS\"}",
    )
    .unwrap();
    let jsonl = doc.str_field("jsonl").unwrap();
    let mut lines = 0;
    for line in jsonl.lines() {
        let rec = Json::parse(line).unwrap();
        assert_eq!(rec.str_field("sweep").unwrap(), "smoke");
        assert!(rec.u64_field("makespan").unwrap() > 0);
        lines += 1;
    }
    assert_eq!(lines as u64, doc.u64_field("points").unwrap());
    assert!(lines > 0, "the BFS filter must select at least one point");

    daemon.trigger_shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Schema contract for the `minnow-explore-frontier/v1` artifact.
//!
//! Downstream consumers (plot scripts, CI diffs, the EXPERIMENTS.md
//! walkthrough) parse the frontier JSONL by field name; this test pins
//! the versioned schema — header fields, per-row fields and their
//! types, row ordering, and the semantic invariants (Pareto flags are
//! exactly the non-dominated rows; the baseline anchors the frontier
//! at area 0, speedup 1).

use minnow::explore::json_read::Json;
use minnow::explore::{
    explore, write_frontier_artifacts, ExploreConfig, ExploreOutcome, Space, Strategy,
    FRONTIER_SCHEMA,
};

fn artifact() -> (String, String) {
    let dir = std::env::temp_dir().join(format!("minnow-frontier-schema-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ExploreConfig {
        space: Space::smoke(),
        strategy: Strategy::Grid,
        seed: 42,
        pool_threads: 4,
        point_threads: 1,
        pin_point_threads: false,
        front_shards: None,
        speculate: None,
        max_fresh_evals: None,
        journal_path: dir.join("smoke.journal.jsonl"),
        verbose: false,
    };
    let ExploreOutcome::Complete { frontier, .. } = explore(&cfg).expect("exploration failed")
    else {
        panic!("unbudgeted exploration paused");
    };
    let (jsonl_path, table_path) = write_frontier_artifacts(&dir, &frontier).unwrap();
    let jsonl = std::fs::read_to_string(jsonl_path).unwrap();
    let table = std::fs::read_to_string(table_path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    (jsonl, table)
}

#[test]
fn frontier_artifact_honors_the_v1_schema() {
    let (jsonl, table) = artifact();
    let mut lines = jsonl.lines();

    // Header: versioned schema plus the search identity and cost.
    let header = Json::parse(lines.next().expect("empty artifact")).unwrap();
    assert_eq!(header.str_field("schema").unwrap(), FRONTIER_SCHEMA);
    assert_eq!(header.str_field("space").unwrap(), "smoke");
    assert_eq!(header.str_field("strategy").unwrap(), "grid");
    assert_eq!(header.u64_field("seed").unwrap(), 42);
    let rungs = header.get("rungs").and_then(Json::as_array).unwrap();
    assert!(!rungs.is_empty() && rungs.iter().all(|r| r.as_f64().is_some()));
    let configs = header.u64_field("configs").unwrap();
    let evaluated = header.u64_field("evaluated").unwrap();
    let evals = header.u64_field("evals").unwrap();
    assert!(evaluated <= configs && evaluated <= evals);
    assert!(header.u64_field("sim_tasks").unwrap() > 0);

    // Rows: every field present with its schema type.
    let rows: Vec<Json> = lines.map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(rows.len() as u64, evaluated, "one row per evaluated config");
    for row in &rows {
        row.str_field("id").unwrap();
        row.str_field("workload").unwrap();
        assert!(row.u64_field("threads").unwrap() >= 1);
        let baseline = row.bool_field("baseline").unwrap();
        for optional in ["credits", "l2_kb", "local_queue", "refill"] {
            let v = row.get(optional).unwrap_or_else(|| panic!("missing {optional}"));
            match v {
                Json::Null => assert!(
                    baseline || optional == "credits",
                    "only baselines (or no-prefetch credits) may be null: {optional}"
                ),
                Json::Int(_) | Json::Number(_) => {
                    assert!(!baseline, "baseline rows carry null axes");
                }
                other => panic!("{optional} must be number or null, got {other:?}"),
            }
        }
        row.u64_field("rung").unwrap();
        assert!(row.f64_field("scale").unwrap() > 0.0);
        assert!(row.u64_field("makespan").unwrap() > 0);
        assert!(row.u64_field("tasks").unwrap() > 0);
        assert!(row.f64_field("speedup").unwrap() > 0.0);
        assert!(row.f64_field("area_mm2").unwrap() >= 0.0);
        row.bool_field("pareto").unwrap();
    }

    // Ordering: area ascending, speedup descending within equal area.
    let key = |r: &Json| (r.f64_field("area_mm2").unwrap(), -r.f64_field("speedup").unwrap());
    assert!(
        rows.windows(2).all(|w| key(&w[0]) <= key(&w[1])),
        "rows must sort by (area asc, speedup desc)"
    );

    // The baseline anchor: area 0, speedup exactly 1, on the frontier.
    let anchor = rows.iter().find(|r| r.bool_field("baseline").unwrap()).unwrap();
    assert_eq!(anchor.f64_field("area_mm2").unwrap(), 0.0);
    assert_eq!(anchor.f64_field("speedup").unwrap(), 1.0);
    assert!(anchor.bool_field("pareto").unwrap());

    // Pareto flags are exactly the non-dominated rows of each
    // (workload, threads) group — recomputed here from the parsed
    // artifact, independently of the producer's implementation.
    for (i, row) in rows.iter().enumerate() {
        let dominated = rows.iter().enumerate().any(|(j, other)| {
            j != i
                && other.str_field("workload").unwrap() == row.str_field("workload").unwrap()
                && other.u64_field("threads").unwrap() == row.u64_field("threads").unwrap()
                && other.f64_field("area_mm2").unwrap() <= row.f64_field("area_mm2").unwrap()
                && other.f64_field("speedup").unwrap() >= row.f64_field("speedup").unwrap()
                && (other.f64_field("area_mm2").unwrap() < row.f64_field("area_mm2").unwrap()
                    || other.f64_field("speedup").unwrap() > row.f64_field("speedup").unwrap())
        });
        assert_eq!(
            row.bool_field("pareto").unwrap(),
            !dominated,
            "pareto flag wrong for {}",
            row.str_field("id").unwrap()
        );
    }

    // The human-readable table: three header lines, a column line, one
    // line per row.
    assert_eq!(table.lines().count(), 3 + 1 + rows.len());
    assert!(table.starts_with("space smoke  strategy grid  seed 42"));
}

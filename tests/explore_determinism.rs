//! End-to-end contracts of the design-space explorer:
//!
//! * **Early stopping pays for itself** — successive halving on the
//!   golden Fig. 16-style space recovers exactly the full grid's
//!   Pareto-optimal set while simulating at most half the grid's total
//!   task count (the acceptance bound; the actual counts are logged).
//! * **Interruption is invisible** — a search driven in budgeted
//!   slices (pause, re-invoke, resume from the journal) produces a
//!   frontier byte-identical to an uninterrupted run's, and a journal
//!   whose final line was truncated by a kill re-simulates exactly the
//!   lost evaluation.
//! * **Journals are bound to their search** — resuming with a
//!   different seed is refused rather than silently mixing results.

use std::path::PathBuf;

use minnow::explore::{
    explore, ExploreConfig, ExploreError, ExploreOutcome, FrontierDoc, Space, Strategy,
};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "minnow-explore-it-{}-{name}.journal.jsonl",
        std::process::id()
    ))
}

fn config(space: Space, strategy: Strategy, journal: PathBuf) -> ExploreConfig {
    ExploreConfig {
        space,
        strategy,
        seed: 42,
        pool_threads: 4,
        point_threads: 1,
        pin_point_threads: false,
        front_shards: None,
        speculate: None,
        max_fresh_evals: None,
        journal_path: journal,
        verbose: false,
    }
}

fn run_to_completion(cfg: &ExploreConfig) -> FrontierDoc {
    match explore(cfg).expect("exploration failed") {
        ExploreOutcome::Complete { frontier, .. } => frontier,
        ExploreOutcome::Paused { .. } => panic!("unbudgeted exploration paused"),
    }
}

#[test]
fn halving_matches_grid_pareto_at_half_the_simulated_tasks() {
    let grid_journal = tmp("accept-grid");
    let halving_journal = tmp("accept-halving");
    let _ = std::fs::remove_file(&grid_journal);
    let _ = std::fs::remove_file(&halving_journal);

    let grid = run_to_completion(&config(
        Space::golden_fig16(),
        Strategy::Grid,
        grid_journal.clone(),
    ));
    let halving = run_to_completion(&config(
        Space::golden_fig16(),
        Strategy::Halving { eta: 4 },
        halving_journal.clone(),
    ));

    // The oracle evaluated everything; halving pruned most of it away.
    assert_eq!(grid.evaluated, Space::golden_fig16().configs().len());
    assert!(halving.evaluated < grid.evaluated);

    // Same Pareto-optimal set (ids are deterministic, so exact match).
    assert_eq!(
        halving.pareto_ids(),
        grid.pareto_ids(),
        "halving must recover the grid's Pareto set"
    );
    // And the Pareto rows agree on the measured numbers, not just ids:
    // survivors were re-measured at the same final rung on the same
    // seeded graph.
    for id in grid.pareto_ids() {
        let g = grid.rows.iter().find(|r| r.id == id).unwrap();
        let h = halving.rows.iter().find(|r| r.id == id).unwrap();
        assert_eq!(g.makespan, h.makespan, "{id} makespan differs");
        assert_eq!(g.tasks, h.tasks, "{id} tasks differ");
    }

    // The acceptance bound: at most half the grid's simulated tasks.
    eprintln!(
        "early-stopping cost: halving {} sim tasks vs grid {} ({}%)",
        halving.sim_tasks,
        grid.sim_tasks,
        halving.sim_tasks * 100 / grid.sim_tasks
    );
    assert!(
        halving.sim_tasks * 2 <= grid.sim_tasks,
        "halving simulated {} tasks, grid {}: early stopping must cost at most half",
        halving.sim_tasks,
        grid.sim_tasks
    );

    std::fs::remove_file(&grid_journal).unwrap();
    std::fs::remove_file(&halving_journal).unwrap();
}

#[test]
fn budget_sliced_search_produces_a_byte_identical_frontier() {
    let sliced_journal = tmp("sliced");
    let straight_journal = tmp("straight");
    let _ = std::fs::remove_file(&sliced_journal);
    let _ = std::fs::remove_file(&straight_journal);

    // Drive the search in slices of two fresh simulations, pausing and
    // re-invoking — the CLI's `--max-evals` / exit-code-3 loop.
    let mut sliced_cfg = config(
        Space::smoke(),
        Strategy::Halving { eta: 2 },
        sliced_journal.clone(),
    );
    sliced_cfg.max_fresh_evals = Some(2);
    let mut invocations = 0;
    let sliced = loop {
        invocations += 1;
        assert!(invocations < 50, "budget loop did not converge");
        match explore(&sliced_cfg).expect("budgeted slice failed") {
            ExploreOutcome::Complete { frontier, .. } => break frontier,
            ExploreOutcome::Paused { fresh, .. } => assert!(fresh <= 2),
        }
    };
    assert!(invocations >= 3, "smoke halving must pause at least twice");

    let straight = run_to_completion(&config(
        Space::smoke(),
        Strategy::Halving { eta: 2 },
        straight_journal.clone(),
    ));
    assert_eq!(
        sliced.to_jsonl(),
        straight.to_jsonl(),
        "interrupted-and-resumed frontier must be byte-identical"
    );

    std::fs::remove_file(&sliced_journal).unwrap();
    std::fs::remove_file(&straight_journal).unwrap();
}

#[test]
fn truncated_journal_resimulates_only_the_lost_evaluation() {
    let journal = tmp("truncate");
    let _ = std::fs::remove_file(&journal);
    let cfg = config(Space::smoke(), Strategy::Grid, journal.clone());
    let first = run_to_completion(&cfg);

    // Chop the journal mid-way through its final record — the on-disk
    // footprint of a process killed during a write.
    let text = std::fs::read_to_string(&journal).unwrap();
    let keep = text.trim_end().rfind('\n').unwrap() + 1;
    let cut = keep + (text.len() - keep) / 2;
    std::fs::write(&journal, &text[..cut]).unwrap();

    match explore(&cfg).expect("resume over a truncated journal failed") {
        ExploreOutcome::Complete { frontier, fresh, .. } => {
            assert_eq!(fresh, 1, "exactly the lost evaluation re-runs");
            assert_eq!(frontier.to_jsonl(), first.to_jsonl());
        }
        ExploreOutcome::Paused { .. } => panic!("unbudgeted resume paused"),
    }
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn journal_refuses_a_different_search_identity() {
    let journal = tmp("identity");
    let _ = std::fs::remove_file(&journal);
    let cfg = config(Space::smoke(), Strategy::Grid, journal.clone());
    run_to_completion(&cfg);

    let mut reseeded = cfg.clone();
    reseeded.seed = 43;
    match explore(&reseeded) {
        Err(ExploreError::Journal(msg)) => {
            assert!(msg.contains("different search"), "unexpected message: {msg}");
        }
        other => panic!("reseeded resume must fail with a journal error, got {other:?}"),
    }

    let mut restrategized = cfg.clone();
    restrategized.strategy = Strategy::Halving { eta: 2 };
    assert!(matches!(
        explore(&restrategized),
        Err(ExploreError::Journal(_))
    ));
    std::fs::remove_file(&journal).unwrap();
}

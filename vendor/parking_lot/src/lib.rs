//! Offline stand-in for the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives; matches `parking_lot`'s API shape for
//! the subset this workspace uses — most importantly, `lock()` returns the
//! guard directly (poisoning is swallowed, as parking_lot has none).

#![deny(missing_docs)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}

//! Offline stand-in for the `fxhash` crate.
//!
//! Two things live here:
//!
//! - [`FxHasher`], the multiply-rotate hash used by the Firefox and rustc
//!   codebases, plus the usual [`FxHashMap`]/[`FxHashSet`] aliases. Fx is
//!   *not* DoS-resistant, which is exactly why it is appropriate for a
//!   deterministic simulator: the hash of a key is a pure function of its
//!   bytes, with no per-process random seed, so any data structure built on
//!   it behaves identically run to run.
//! - [`FxMap64`], an open-addressed, linear-probing map from `u64` keys to
//!   small values. The simulator's directory and prefetch-arrival tables are
//!   keyed by cache-line addresses and hit on every store / prefetch, so the
//!   per-probe cost matters; open addressing with backshift deletion keeps
//!   each lookup inside one or two cache lines and allocates only on growth.
//!
//! Determinism note: neither structure is ever iterated by the simulator —
//! all access is point lookup/insert/remove — so even the *order* internals
//! are free to differ from `std::collections::HashMap` without any
//! observable effect on simulation results.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;
/// Zero-sized deterministic builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher (word-at-a-time, no random state).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Mixes a bare `u64` key into a table index distribution. A single Fx
/// round is too weak for sequential line addresses (the low bits barely
/// move), so this finishes with an xor-shift the way SplitMix64 does.
#[inline]
fn mix64(key: u64) -> u64 {
    let h = key.wrapping_mul(SEED);
    h ^ (h >> 32)
}

const EMPTY: u64 = u64::MAX;
const MIN_CAPACITY: usize = 16;

/// Open-addressed `u64 -> V` map with linear probing and backshift deletion.
///
/// Keys must never equal `u64::MAX` (the empty sentinel). The simulator
/// keys these maps by cache-line address (`addr >> line_shift`), which for
/// any line size >= 2 bytes cannot reach the sentinel.
///
/// No iteration API is provided on purpose: callers that never iterate
/// cannot accidentally become sensitive to table ordering.
#[derive(Debug, Clone)]
pub struct FxMap64<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    /// `keys.len() - 1`; table capacity is always a power of two.
    mask: usize,
}

impl<V: Copy + Default> Default for FxMap64<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> FxMap64<V> {
    /// An empty map with the minimum table size.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAPACITY)
    }

    /// An empty map sized so `capacity` entries fit without growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let table = (capacity.max(MIN_CAPACITY) * 4 / 3 + 1).next_power_of_two();
        FxMap64 {
            keys: vec![EMPTY; table],
            vals: vec![V::default(); table],
            len: 0,
            mask: table - 1,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    #[inline]
    fn slot_of(&self, key: u64) -> Option<usize> {
        let mut idx = (mix64(key) as usize) & self.mask;
        loop {
            let k = self.keys[idx];
            if k == key {
                return Some(idx);
            }
            if k == EMPTY {
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Point lookup.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
        self.slot_of(key).map(|i| &self.vals[i])
    }

    /// Mutable point lookup.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
        self.slot_of(key).map(|i| &mut self.vals[i])
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.slot_of(key).is_some()
    }

    /// Inserts `key -> val`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
        self.reserve_one();
        let mut idx = (mix64(key) as usize) & self.mask;
        loop {
            let k = self.keys[idx];
            if k == key {
                return Some(std::mem::replace(&mut self.vals[idx], val));
            }
            if k == EMPTY {
                self.keys[idx] = key;
                self.vals[idx] = val;
                self.len += 1;
                return None;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// The `HashMap::entry(key).or_insert(default)` shape the directory
    /// uses: returns a mutable ref to the existing value, inserting
    /// `default` first if the key was absent.
    #[inline]
    pub fn or_insert(&mut self, key: u64, default: V) -> &mut V {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
        self.reserve_one();
        let mut idx = (mix64(key) as usize) & self.mask;
        loop {
            let k = self.keys[idx];
            if k == key {
                return &mut self.vals[idx];
            }
            if k == EMPTY {
                self.keys[idx] = key;
                self.vals[idx] = default;
                self.len += 1;
                return &mut self.vals[idx];
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value if present. Uses backshift
    /// deletion (no tombstones), so probe chains never degrade.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
        let mut hole = self.slot_of(key)?;
        let out = self.vals[hole];
        self.len -= 1;
        // Backshift: walk the cluster after `hole`; any entry whose home
        // slot is at or before the hole (cyclically) moves back into it.
        let mut idx = (hole + 1) & self.mask;
        loop {
            let k = self.keys[idx];
            if k == EMPTY {
                break;
            }
            let home = (mix64(k) as usize) & self.mask;
            // `home` is outside the cyclic half-open range (hole, idx]
            // exactly when the entry may legally move into the hole.
            let dist_home = idx.wrapping_sub(home) & self.mask;
            let dist_hole = idx.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[idx];
                hole = idx;
            }
            idx = (idx + 1) & self.mask;
        }
        self.keys[hole] = EMPTY;
        Some(out)
    }

    #[inline]
    fn reserve_one(&mut self) {
        // Grow at 3/4 load.
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_table = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_table]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); new_table]);
        self.mask = new_table - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hasher_is_deterministic_across_builders() {
        let build = FxBuildHasher::default();
        let a = build.hash_one(0xdead_beefu64);
        let b = FxBuildHasher::default().hash_one(0xdead_beefu64);
        assert_eq!(a, b);
        assert_ne!(a, build.hash_one(0xdead_beeeu64));
    }

    #[test]
    fn hasher_covers_unaligned_tails() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]);
        let tail = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0, 0, 0, 0, 0]);
        assert_eq!(tail, h2.finish(), "short tails are zero-padded to a word");
    }

    #[test]
    fn map_insert_get_remove_roundtrip() {
        let mut m = FxMap64::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, 70u64), None);
        assert_eq!(m.insert(7, 71), Some(70));
        assert_eq!(m.get(7), Some(&71));
        assert_eq!(m.remove(7), Some(71));
        assert_eq!(m.remove(7), None);
        assert!(m.get(7).is_none());
    }

    #[test]
    fn or_insert_matches_entry_semantics() {
        let mut m = FxMap64::new();
        *m.or_insert(3, 0u64) |= 0b01;
        *m.or_insert(3, 0) |= 0b10;
        assert_eq!(m.get(3), Some(&0b11));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut m = FxMap64::with_capacity(4);
        for k in 0..10_000u64 {
            m.insert(k, k.wrapping_mul(3));
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(&k.wrapping_mul(3)), "key {k}");
        }
    }

    #[test]
    fn backshift_deletion_keeps_clustered_keys_reachable() {
        // Force heavy clustering: many keys, then delete every other one
        // and verify the survivors are all still reachable.
        let mut m = FxMap64::with_capacity(64);
        let keys: Vec<u64> = (0..512u64).map(|i| i * 64).collect(); // line-addr-like
        for &k in &keys {
            m.insert(k, k + 1);
        }
        for &k in keys.iter().step_by(2) {
            assert_eq!(m.remove(k), Some(k + 1));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert!(m.get(k).is_none(), "deleted key {k} resurfaced");
            } else {
                assert_eq!(m.get(k), Some(&(k + 1)), "survivor {k} lost");
            }
        }
        assert_eq!(m.len(), 256);
    }

    #[test]
    fn map_matches_std_hashmap_under_random_workload() {
        // Deterministic xorshift so the test itself stays reproducible.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ours = FxMap64::new();
        let mut reference = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let key = rand() % 800; // small key space => frequent collisions
            match rand() % 3 {
                0 => {
                    let v = rand();
                    assert_eq!(ours.insert(key, v), reference.insert(key, v));
                }
                1 => assert_eq!(ours.remove(key), reference.remove(&key)),
                _ => assert_eq!(ours.get(key), reference.get(&key)),
            }
        }
        assert_eq!(ours.len(), reference.len());
    }

    #[test]
    fn clear_keeps_allocation_and_empties() {
        let mut m = FxMap64::new();
        for k in 0..100u64 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert!(m.get(5).is_none());
        m.insert(5, 50);
        assert_eq!(m.get(5), Some(&50));
    }
}

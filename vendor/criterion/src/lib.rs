//! Offline stand-in for the `criterion` crate.
//!
//! A minimal timing harness exposing the API surface this workspace's
//! microbenchmarks use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. No statistics beyond
//! a median-of-samples estimate; results print one line per benchmark.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// How batched setup output is sized (accepted for API parity; the stub
/// always materializes one input per routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark target.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

const TARGET_SAMPLES: usize = 15;
const TARGET_TOTAL: Duration = Duration::from_millis(300);

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        let budget_start = Instant::now();
        while self.samples.len() < TARGET_SAMPLES && budget_start.elapsed() < TARGET_TOTAL {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// included in the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.samples.clear();
        let budget_start = Instant::now();
        while self.samples.len() < TARGET_SAMPLES && budget_start.elapsed() < TARGET_TOTAL {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// Entry point handed to every benchmark target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark (accepts `&str` or `String` ids, as the
    /// real crate's `BenchmarkId` conversions do).
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut b = Bencher::default();
        f(&mut b);
        let med = b.median();
        println!("bench {id:<40} median {med:>12.2?} ({} samples)", b.samples.len());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { parent: self }
    }
}

/// A named collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.parent.bench_function(format!("  {}", id.as_ref()), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(!b.samples.is_empty());
        assert!(b.median() >= Duration::ZERO);
    }

    #[test]
    fn batched_runs_setup_per_sample() {
        let mut b = Bencher::default();
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert!(setups as usize >= b.samples.len());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| 2 * 2));
        g.finish();
    }
}

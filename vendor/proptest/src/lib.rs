//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]` header),
//! composable [`strategy::Strategy`] values (integer ranges, tuples,
//! `prop_map`, [`prop_oneof!`], [`strategy::Just`], `prop::collection::vec`,
//! [`arbitrary::any`]), and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (every generated binding is included), but is not minimized.
//! * **Deterministic seeding.** Each test case derives its RNG from a
//!   fixed per-crate seed and the case index, so failures reproduce
//!   exactly across runs and machines. Set `PROPTEST_SEED` to explore a
//!   different stream.
//! * **`PROPTEST_CASES`.** As upstream: the env var overrides the
//!   *default* case count (64) for every property that does not pin one
//!   via `proptest_config`/[`test_runner::Config::with_cases`]. CI sets
//!   it to a small value to bound suite time; local runs are unchanged.

#![deny(missing_docs)]

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 64 cases, overridable via the `PROPTEST_CASES` environment
        /// variable (matching upstream proptest; explicit
        /// [`Config::with_cases`] configurations are unaffected).
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&c| c > 0)
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// The deterministic RNG driving strategy generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one test case of one property.
        pub fn for_case(property_seed: u64, case: u32) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0xA076_1D64_78BD_642Fu64);
            TestRng {
                state: base ^ property_seed.rotate_left(17) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Hashes a property name into a per-property seed component.
    pub fn property_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Strategy combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.below((self.end - self.start) as u64)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.below((hi - lo) as u64 + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[proptest] {}", format_args!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format_args!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "both sides equal {:?}", a);
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests.
///
/// Supports the upstream surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0u64..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::property_seed(stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render the inputs before the body gets a chance to move
                // them, so a failing case can name what it was fed.
                let inputs = ::std::string::String::new()
                    $( + &format!("  {} = {:?}\n", stringify!($arg), &$arg))+;
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "[proptest] property `{}` failed at case {case}/{} with inputs:\n{inputs}",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        /// Mapped and tuple strategies compose.
        #[test]
        fn composition_works(e in small_even(), pair in (0u8..4, any::<bool>())) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pair.0 < 4);
        }

        /// Collections honour their size range and element strategy.
        #[test]
        fn vectors_in_spec(v in prop::collection::vec(1u32..9, 0..30)) {
            prop_assert!(v.len() < 30);
            prop_assert!(v.iter().all(|&x| (1..9).contains(&x)));
        }

        /// Oneof picks every arm eventually (checked via a union of Justs).
        #[test]
        fn oneof_generates(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 64usize)) {
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
            prop_assert!(v.contains(&1) && v.contains(&2));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut rng_a = crate::test_runner::TestRng::for_case(7, 3);
        let mut rng_b = crate::test_runner::TestRng::for_case(7, 3);
        let s = (0u64..1000, 0u32..7);
        assert_eq!(s.generate(&mut rng_a), s.generate(&mut rng_b));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation inputs and, crucially, **deterministic**: every
//! graph analogue in this repository is a pure function of its seed. The
//! output stream intentionally does not match upstream `rand`'s `SmallRng`
//! (which is unspecified across versions anyway); golden values in the
//! test suite are pinned against *this* stream.

#![deny(missing_docs)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `RngCore` (the `Standard`
/// distribution subset backing [`Rng::gen`]).
pub trait Uniform01: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform01 for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform01 for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform01 for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform01 for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform01 for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods over any [`RngCore`] (the `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (`f64`/`f32`
    /// uniform in `[0, 1)`, integers uniform over their domain).
    fn gen<T: Uniform01>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..32).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: u32 = r.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.25) {
                trues += 1;
            }
        }
        assert!((1_800..3_200).contains(&trues), "gen_bool(0.25): {trues}");
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`thread::scope`] — scoped threads with crossbeam's closure signature
//!   (the spawned closure receives the scope), implemented over
//!   `std::thread::scope`;
//! * [`deque`] — the `Injector`/`Worker`/`Stealer` work-stealing deque
//!   API, implemented with mutex-guarded ring buffers. Not lock-free like
//!   the real crate, but contention on sweep-sized tasks (milliseconds to
//!   seconds each) is unmeasurable, and the semantics — LIFO local pops,
//!   FIFO steals, batched refill from the injector — are preserved.

#![deny(missing_docs)]

/// Scoped threads (the `crossbeam::thread` subset).
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope in which spawned threads may borrow from the
    /// enclosing stack frame; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Never fails (panics in spawned threads propagate as panics, exactly
    /// as `std::thread::scope` behaves); the `Result` exists for crossbeam
    /// API compatibility.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques (the `crossbeam::deque` subset).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A global FIFO injector queue all workers can push to and steal from.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steals one task from the front of the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`'s local queue and pops one.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap();
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Take up to half of what remains, capped like crossbeam.
            let extra = (q.len() / 2).min(16);
            if extra > 0 {
                let mut local = dest.shared.lock().unwrap();
                local.extend(q.drain(..extra));
            }
            Steal::Success(first)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    /// A worker-local deque: the owner pushes/pops one end, thieves steal
    /// the other.
    #[derive(Debug)]
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
        fifo: bool,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                fifo: true,
            }
        }

        /// Creates a LIFO worker queue.
        pub fn new_lifo() -> Self {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                fifo: false,
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.shared.lock().unwrap();
            if self.fifo {
                q.pop_front()
            } else {
                q.pop_back()
            }
        }

        /// Whether the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        /// Number of locally queued tasks.
        pub fn len(&self) -> usize {
            self.shared.lock().unwrap().len()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// A handle that steals from the opposite end of a [`Worker`]'s queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn injector_batch_refills_worker() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..40 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let first = inj.steal_batch_and_pop(&w);
        assert_eq!(first, Steal::Success(0));
        assert!(!w.is_empty(), "batch must land locally");
        let mut seen = vec![0u32];
        while let Some(t) = w.pop() {
            seen.push(t);
        }
        while let Steal::Success(t) = inj.steal() {
            seen.push(t);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn stealers_drain_from_front() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        let st = w.stealer();
        assert_eq!(st.steal(), Steal::Success(1), "thieves take the oldest");
        assert_eq!(w.pop(), Some(2), "owner takes the newest");
        assert!(st.steal().is_empty());
    }
}

//! Quickstart: run one workload on the simulated CMP, with and without
//! Minnow, and print what the engines bought you.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use minnow::engine::offload::{MinnowConfig, MinnowScheduler};
use minnow::graph::gen::uniform::{self, UniformConfig};
use minnow::graph::AddressMap;
use minnow::runtime::sim_exec::{run, ExecConfig};
use minnow::runtime::{Operator, SoftwareScheduler};
use minnow::sim::MemoryHierarchy;

use minnow::algos::bfs::Bfs;

fn main() {
    let threads = 8;
    // A BFS over a uniform random graph (the paper's `r4` input analogue).
    let graph = Arc::new(uniform::generate(&UniformConfig::new(20_000, 4), 42));
    println!(
        "input: {} nodes, {} edges  |  {threads} simulated cores\n",
        graph.nodes(),
        graph.edges()
    );
    let cfg = ExecConfig::new(threads);

    // 1. The optimized software baseline (Galois-like OBIM worklist).
    let mut op = Bfs::new(graph.clone(), 0);
    let policy = op.default_policy();
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = SoftwareScheduler::new(policy.build(), threads);
    let software = run(&mut op, &mut sched, &mut mem, &cfg);
    op.check().expect("software run must be correct");

    // 2. Minnow: worklist offload only.
    let mut op = Bfs::new(graph.clone(), 0);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = MinnowScheduler::new(
        graph.clone(),
        AddressMap::standard(),
        op.prefetch_kind(),
        threads,
        MinnowConfig::no_prefetch(0),
    );
    let offload = run(&mut op, &mut sched, &mut mem, &cfg);
    op.check().expect("offload run must be correct");

    // 3. Minnow + worklist-directed prefetching (32 credits).
    let mut op = Bfs::new(graph.clone(), 0);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = MinnowScheduler::new(
        graph,
        AddressMap::standard(),
        op.prefetch_kind(),
        threads,
        MinnowConfig::paper(0),
    );
    let wdp = run(&mut op, &mut sched, &mut mem, &cfg);
    op.check().expect("WDP run must be correct");

    println!("{:<26} {:>12} {:>9} {:>9}", "configuration", "cycles", "MPKI", "speedup");
    for (name, r) in [
        ("software worklist", &software),
        ("minnow offload", &offload),
        ("minnow + prefetching", &wdp),
    ] {
        println!(
            "{:<26} {:>12} {:>9.1} {:>8.2}x",
            name,
            r.makespan,
            r.mpki(),
            software.makespan as f64 / r.makespan as f64
        );
    }
    println!(
        "\nprefetch efficiency: {:.1}%  (fills: {}, used before eviction: {})",
        wdp.prefetch_efficiency() * 100.0,
        wdp.prefetch_fills,
        wdp.prefetch_used
    );
}

//! Data-driven PageRank on a social-network analogue under Minnow,
//! demonstrating the atomics/fence bottleneck (paper §3.3) and what
//! worklist-directed prefetching recovers.
//!
//! ```sh
//! cargo run --release --example pagerank_social
//! ```

use std::sync::Arc;

use minnow::algos::pr::PageRank;
use minnow::engine::offload::{MinnowConfig, MinnowScheduler};
use minnow::graph::{inputs, AddressMap};
use minnow::runtime::sim_exec::{run, run_software, ExecConfig};
use minnow::runtime::Operator;
use minnow::sim::MemoryHierarchy;

fn main() {
    let graph = Arc::new(inputs::wiki_talk(1.0, 11));
    println!(
        "social graph analogue: {} nodes, {} edges (max degree {})\n",
        graph.nodes(),
        graph.edges(),
        graph.max_degree().1
    );
    let threads = 8;
    let cfg = ExecConfig::new(threads);

    // Software baseline.
    let mut op = PageRank::new(graph.clone(), 1e-4);
    let policy = op.default_policy();
    let soft = run_software(&mut op, policy, &cfg);
    op.check().expect("software PR must converge correctly");
    let fence_share = soft.breakdown.fraction(soft.breakdown.fence);
    println!(
        "software: {} cycles, {:.0}% of busy cycles in atomic/fence stalls",
        soft.makespan,
        fence_share * 100.0
    );

    // Minnow with prefetching.
    let mut op = PageRank::new(graph.clone(), 1e-4);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = MinnowScheduler::new(
        graph.clone(),
        AddressMap::standard(),
        op.prefetch_kind(),
        threads,
        MinnowConfig::paper(2),
    );
    let minnow = run(&mut op, &mut sched, &mut mem, &cfg);
    op.check().expect("Minnow PR must converge correctly");
    println!(
        "minnow:   {} cycles ({:.2}x), MPKI {:.1} -> {:.1}\n",
        minnow.makespan,
        soft.makespan as f64 / minnow.makespan as f64,
        soft.mpki(),
        minnow.mpki()
    );

    // Most important nodes.
    let mut ranked: Vec<(usize, f64)> = op.ranks().iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 10 nodes by rank:");
    for (v, r) in ranked.iter().take(10) {
        println!("  node {v:>6}  rank {r:.4}  (in-degree-ish hub)");
    }
}

//! Prefetch-credit tuning: a miniature of the paper's Fig. 18/19/20 on one
//! workload — sweep the credit pool and watch MPKI, speedup, and prefetch
//! efficiency trade off (too few credits: can't hide latency; too many:
//! L2 thrashing).
//!
//! ```sh
//! cargo run --release --example credit_tuning
//! ```

use std::sync::Arc;

use minnow::algos::bfs::Bfs;
use minnow::engine::offload::{MinnowConfig, MinnowScheduler};
use minnow::graph::{inputs, AddressMap};
use minnow::runtime::sim_exec::{run, ExecConfig};
use minnow::runtime::Operator;
use minnow::sim::MemoryHierarchy;

fn main() {
    let graph = Arc::new(inputs::r4(1.0, 3));
    let threads = 8;
    let cfg = ExecConfig::new(threads);
    println!(
        "BFS on r4 analogue ({} nodes, {} edges), {threads} cores\n",
        graph.nodes(),
        graph.edges()
    );

    // Baseline without prefetching.
    let mut op = Bfs::new(graph.clone(), 0);
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched = MinnowScheduler::new(
        graph.clone(),
        AddressMap::standard(),
        op.prefetch_kind(),
        threads,
        MinnowConfig::no_prefetch(0),
    );
    let base = run(&mut op, &mut sched, &mut mem, &cfg);
    println!("no prefetching: {} cycles, MPKI {:.1}\n", base.makespan, base.mpki());

    println!(
        "{:>8} {:>9} {:>9} {:>12} {:>12}",
        "credits", "MPKI", "speedup", "efficiency", "stalls"
    );
    for credits in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        let mut op = Bfs::new(graph.clone(), 0);
        let mut mem = MemoryHierarchy::new(&cfg.sim);
        let mut mc = MinnowConfig::paper(0);
        mc.prefetch_credits = Some(credits);
        let mut sched = MinnowScheduler::new(
            graph.clone(),
            AddressMap::standard(),
            op.prefetch_kind(),
            threads,
            mc,
        );
        let r = run(&mut op, &mut sched, &mut mem, &cfg);
        op.check().expect("BFS must stay exact under prefetching");
        let stats = sched.minnow_stats();
        println!(
            "{:>8} {:>9.1} {:>8.2}x {:>11.1}% {:>12}",
            credits,
            r.mpki(),
            base.makespan as f64 / r.makespan as f64,
            r.prefetch_efficiency() * 100.0,
            stats.credit_stalls
        );
    }
    println!("\n(expect a sweet spot around 32-64 credits, as in the paper)");
}

//! Scheduling policy shoot-out on a road network — the paper's §3.1
//! motivation: on high-diameter, low-degree graphs, priority ordering is
//! worth orders of magnitude of work efficiency.
//!
//! Runs SSSP over the `USA-road-d.W` analogue under five schedulers
//! (Dijkstra / delta-stepping / chunked / FIFO / LIFO), then re-runs the
//! winner as a *real* multi-threaded program on the host via the
//! concurrent OBIM worklist.
//!
//! ```sh
//! cargo run --release --example sssp_roadnet
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minnow::algos::sssp::Sssp;
use minnow::graph::inputs;
use minnow::runtime::par::parallel_for_each;
use minnow::runtime::sim_exec::{run_software, ExecConfig};
use minnow::runtime::{Operator, PolicyKind, Task};

fn main() {
    let graph = Arc::new(inputs::usa_road(1.0, 7));
    println!(
        "road network analogue: {} nodes, {} edges\n",
        graph.nodes(),
        graph.edges()
    );

    let mut cfg = ExecConfig::new(8);
    cfg.task_limit = 4_000_000;

    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "scheduler", "cycles", "tasks", "work-efficiency"
    );
    let policies = [
        ("dijkstra", PolicyKind::Strict),
        ("delta(8)", PolicyKind::Obim(3)),
        ("delta(64)", PolicyKind::Obim(6)),
        ("chunked-fifo", PolicyKind::Chunked(16)),
        ("fifo", PolicyKind::Fifo),
        ("lifo", PolicyKind::Lifo),
    ];
    let mut min_tasks = u64::MAX;
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let mut op = Sssp::new(graph.clone(), 0, 3);
        let report = run_software(&mut op, policy, &cfg);
        if !report.timed_out {
            op.check().expect("SSSP must be exact");
        }
        min_tasks = min_tasks.min(report.tasks);
        rows.push((name, report));
    }
    for (name, r) in &rows {
        let status = if r.timed_out { " (timed out)" } else { "" };
        println!(
            "{:<16} {:>12} {:>12} {:>13.2}x{status}",
            name,
            r.makespan,
            r.tasks,
            r.tasks as f64 / min_tasks as f64
        );
    }

    // Real host-parallel run with the concurrent OBIM worklist.
    println!("\nhost-parallel delta-stepping (4 OS threads):");
    let dist: Vec<AtomicU64> = (0..graph.nodes()).map(|_| AtomicU64::new(u64::MAX)).collect();
    dist[0].store(0, Ordering::SeqCst);
    let g = graph.clone();
    let t0 = std::time::Instant::now();
    let executed = parallel_for_each(vec![Task::new(0, 0)], 4, 3, |task, push| {
        let v = task.node;
        let d = dist[v as usize].load(Ordering::SeqCst);
        if d < task.priority {
            return; // stale
        }
        for (_, u, w) in g.edges_of(v) {
            let nd = d + w as u64;
            let mut cur = dist[u as usize].load(Ordering::SeqCst);
            while nd < cur {
                match dist[u as usize].compare_exchange(cur, nd, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => {
                        push(Task::new(nd, u));
                        break;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
    });
    let host_ms = t0.elapsed().as_secs_f64() * 1e3;
    let reference = Sssp::reference(&graph, 0);
    let exact = reference
        .iter()
        .enumerate()
        .all(|(v, &want)| dist[v].load(Ordering::SeqCst) == want);
    println!("  {executed} relaxation tasks in {host_ms:.1} ms — exact: {exact}");
    assert!(exact, "host-parallel SSSP must match Dijkstra");
}

//! The evaluation boundary: request/response simulation.
//!
//! Everything that *consumes* simulations — the sweep runner's
//! artifacts, the explorer's journal, the `minnow-serve` daemon and its
//! remote workers — talks to the simulator through one shape: an
//! [`EvalRequest`] (a point id plus its [`BenchRun`]) answered by an
//! [`EvalResponse`] carrying a wire-serializable [`EvalReport`]. The
//! report is a flattening of [`RunReport`] that keeps **every field the
//! deterministic artifacts serialize** (the per-point JSONL record and
//! the closed cycle-accounting breakdown) and nothing volatile, so a
//! point simulated locally, on a remote worker, or replayed from a
//! content-addressed store reproduces byte-identical artifact lines.
//!
//! [`Evaluator`] is the trait behind which execution hides:
//! [`LocalEvaluator`] runs the in-process sweep pool; `minnow-serve`
//! provides daemon-backed implementations (memoizing store, work queue,
//! remote workers) without the explorer or the artifact writers
//! noticing the difference.

use std::time::Duration;

use minnow_algos::WorkloadKind;
use minnow_runtime::sim_exec::RunReport;
use minnow_sim::config::EngineParams;
use minnow_sim::core::CoreMode;
use minnow_sim::stats::CycleBin;

use crate::json::JsonObject;
use crate::json_read::Json;
use crate::runner::{BenchRun, HwKind, InputSpec, SchedSpec};
use crate::sweep::{run_sweep_observed, PointResult, Sweep, SweepConfig, SweepHooks, SweepPoint};

/// One requested evaluation: a stable point id plus the configuration
/// to simulate.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// Stable point identifier (artifact and journal key).
    pub id: String,
    /// The configuration to execute.
    pub run: BenchRun,
}

/// One answered evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResponse {
    /// The request's id, echoed.
    pub id: String,
    /// The deterministic simulation outcome.
    pub report: EvalReport,
    /// Host wall microseconds the evaluation took (volatile: cache hits
    /// report the lookup time, not the original simulation's).
    pub wall_us: u64,
    /// Served from a memoizing store without touching the simulator.
    pub cached: bool,
}

/// A wire-serializable flattening of [`RunReport`]: exactly the fields
/// the byte-frozen artifacts need, none of the volatile host-side
/// counters (spec statistics, per-shard hold/wait, threads used).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvalReport {
    /// Simulated makespan in cycles.
    pub makespan: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Dynamic instructions retired.
    pub instructions: u64,
    /// The run hit its task limit before draining.
    pub timed_out: bool,
    /// Busy-cycle breakdown: issue-limited useful compute.
    pub useful: u64,
    /// Busy-cycle breakdown: worklist/scheduler operations.
    pub worklist: u64,
    /// Busy-cycle breakdown: memory stalls after MLP overlap.
    pub memory: u64,
    /// Busy-cycle breakdown: atomic/fence serialization.
    pub fence: u64,
    /// Busy-cycle breakdown: branch misprediction penalties.
    pub branch: u64,
    /// Scheduler statistics: enqueues.
    pub enqueues: u64,
    /// Scheduler statistics: dequeues.
    pub dequeues: u64,
    /// Scheduler statistics: empty dequeues.
    pub empty_dequeues: u64,
    /// Scheduler statistics: worklist-operation cycles.
    pub op_cycles: u64,
    /// Scheduler statistics: wait cycles.
    pub wait_cycles: u64,
    /// Scheduler statistics: scheduler instructions.
    pub sched_instrs: u64,
    /// Demand L2 misses summed over cores.
    pub l2_misses: u64,
    /// Demand accesses summed over cores.
    pub mem_accesses: u64,
    /// Delinquent loads observed.
    pub delinquent_loads: u64,
    /// Total loads.
    pub total_loads: u64,
    /// Prefetch fills into L2s.
    pub prefetch_fills: u64,
    /// Prefetched lines consumed before eviction.
    pub prefetch_used: u64,
    /// Bulk-synchronous supersteps (0 for asynchronous executors).
    pub supersteps: u64,
    /// Simulated cores in the closed accounting.
    pub cores: u64,
    /// Across-core totals of every [`CycleBin`], in `CycleBin::ALL`
    /// order; `sum(bins) == makespan * cores` by construction.
    pub bins: [u64; 7],
}

impl EvalReport {
    /// Flattens a full simulation report.
    pub fn from_report(r: &RunReport) -> EvalReport {
        let mut bins = [0u64; 7];
        for (slot, bin) in bins.iter_mut().zip(CycleBin::ALL) {
            *slot = r.accounting.bin_total(bin);
        }
        EvalReport {
            makespan: r.makespan,
            tasks: r.tasks,
            instructions: r.instructions,
            timed_out: r.timed_out,
            useful: r.breakdown.useful,
            worklist: r.breakdown.worklist,
            memory: r.breakdown.memory,
            fence: r.breakdown.fence,
            branch: r.breakdown.branch,
            enqueues: r.sched.enqueues,
            dequeues: r.sched.dequeues,
            empty_dequeues: r.sched.empty_dequeues,
            op_cycles: r.sched.op_cycles,
            wait_cycles: r.sched.wait_cycles,
            sched_instrs: r.sched.instrs,
            l2_misses: r.l2_misses,
            mem_accesses: r.mem_accesses,
            delinquent_loads: r.delinquent_loads,
            total_loads: r.total_loads,
            prefetch_fills: r.prefetch_fills,
            prefetch_used: r.prefetch_used,
            supersteps: r.supersteps,
            cores: r.accounting.cores() as u64,
            bins,
        }
    }

    /// L2 misses per kilo-instruction — the same formula
    /// `RunReport::mpki` uses, recomputed from the wire integers so
    /// remote and cached paths serialize identical six-decimal values.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of prefetched lines consumed before eviction (matches
    /// `RunReport::prefetch_efficiency`).
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetch_fills == 0 {
            1.0
        } else {
            self.prefetch_used as f64 / self.prefetch_fills as f64
        }
    }

    /// Serializes the report as a canonical JSON object.
    pub fn to_json(&self) -> String {
        let bins = crate::json::array(self.bins.iter().map(u64::to_string));
        JsonObject::new()
            .u64("makespan", self.makespan)
            .u64("tasks", self.tasks)
            .u64("instructions", self.instructions)
            .bool("timed_out", self.timed_out)
            .u64("useful", self.useful)
            .u64("worklist", self.worklist)
            .u64("memory", self.memory)
            .u64("fence", self.fence)
            .u64("branch", self.branch)
            .u64("enqueues", self.enqueues)
            .u64("dequeues", self.dequeues)
            .u64("empty_dequeues", self.empty_dequeues)
            .u64("op_cycles", self.op_cycles)
            .u64("wait_cycles", self.wait_cycles)
            .u64("sched_instrs", self.sched_instrs)
            .u64("l2_misses", self.l2_misses)
            .u64("mem_accesses", self.mem_accesses)
            .u64("delinquent_loads", self.delinquent_loads)
            .u64("total_loads", self.total_loads)
            .u64("prefetch_fills", self.prefetch_fills)
            .u64("prefetch_used", self.prefetch_used)
            .u64("supersteps", self.supersteps)
            .u64("cores", self.cores)
            .raw("bins", &bins)
            .finish()
    }

    /// Parses a report serialized by [`EvalReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<EvalReport, String> {
        let bins_doc = doc
            .get("bins")
            .and_then(Json::as_array)
            .ok_or("missing `bins` array")?;
        if bins_doc.len() != 7 {
            return Err(format!("`bins` must have 7 entries, got {}", bins_doc.len()));
        }
        let mut bins = [0u64; 7];
        for (slot, v) in bins.iter_mut().zip(bins_doc) {
            *slot = v.as_u64().ok_or("non-integer bin total")?;
        }
        Ok(EvalReport {
            makespan: doc.u64_field("makespan")?,
            tasks: doc.u64_field("tasks")?,
            instructions: doc.u64_field("instructions")?,
            timed_out: doc.bool_field("timed_out")?,
            useful: doc.u64_field("useful")?,
            worklist: doc.u64_field("worklist")?,
            memory: doc.u64_field("memory")?,
            fence: doc.u64_field("fence")?,
            branch: doc.u64_field("branch")?,
            enqueues: doc.u64_field("enqueues")?,
            dequeues: doc.u64_field("dequeues")?,
            empty_dequeues: doc.u64_field("empty_dequeues")?,
            op_cycles: doc.u64_field("op_cycles")?,
            wait_cycles: doc.u64_field("wait_cycles")?,
            sched_instrs: doc.u64_field("sched_instrs")?,
            l2_misses: doc.u64_field("l2_misses")?,
            mem_accesses: doc.u64_field("mem_accesses")?,
            delinquent_loads: doc.u64_field("delinquent_loads")?,
            total_loads: doc.u64_field("total_loads")?,
            prefetch_fills: doc.u64_field("prefetch_fills")?,
            prefetch_used: doc.u64_field("prefetch_used")?,
            supersteps: doc.u64_field("supersteps")?,
            cores: doc.u64_field("cores")?,
            bins,
        })
    }
}

/// Serializes one evaluated point as the frozen per-point JSONL record
/// (no trailing newline). This is *the* serializer behind
/// `SweepResult::jsonl`; the daemon path reuses it verbatim, which is
/// what makes served sweeps byte-identical to direct ones.
pub fn point_record_json(sweep: &str, id: &str, run: &BenchRun, r: &EvalReport) -> String {
    let breakdown = JsonObject::new()
        .u64("useful", r.useful)
        .u64("worklist", r.worklist)
        .u64("memory", r.memory)
        .u64("fence", r.fence)
        .u64("branch", r.branch)
        .finish();
    let sched = JsonObject::new()
        .u64("enqueues", r.enqueues)
        .u64("dequeues", r.dequeues)
        .u64("empty_dequeues", r.empty_dequeues)
        .u64("op_cycles", r.op_cycles)
        .u64("wait_cycles", r.wait_cycles)
        .u64("instrs", r.sched_instrs)
        .finish();
    JsonObject::new()
        .str("sweep", sweep)
        .str("id", id)
        .str("workload", run.kind.name())
        .str("sched", &run.sched.label())
        .u64("threads", run.threads as u64)
        .f64("scale", run.scale)
        .u64("seed", run.seed)
        .opt_u64("channels", run.channels.map(|c| c as u64))
        .opt_u64("rob", run.rob.map(|r| r as u64))
        .bool("serial_baseline", run.serial_baseline)
        .u64("makespan", r.makespan)
        .u64("tasks", r.tasks)
        .u64("instructions", r.instructions)
        .bool("timed_out", r.timed_out)
        .raw("breakdown", &breakdown)
        .raw("sched_stats", &sched)
        .u64("l2_misses", r.l2_misses)
        .u64("mem_accesses", r.mem_accesses)
        .u64("delinquent_loads", r.delinquent_loads)
        .u64("total_loads", r.total_loads)
        .u64("prefetch_fills", r.prefetch_fills)
        .u64("prefetch_used", r.prefetch_used)
        .u64("supersteps", r.supersteps)
        .f64("mpki", r.mpki())
        .f64("prefetch_efficiency", r.prefetch_efficiency())
        .finish()
}

/// Serializes one point's closed cycle accounting as the breakdown
/// JSONL record (no trailing newline); shared by `SweepResult` and the
/// daemon path like [`point_record_json`].
pub fn breakdown_record_json(sweep: &str, id: &str, r: &EvalReport) -> String {
    let mut obj = JsonObject::new()
        .str("sweep", sweep)
        .str("id", id)
        .u64("makespan", r.makespan)
        .u64("cores", r.cores);
    for (bin, total) in CycleBin::ALL.into_iter().zip(r.bins) {
        obj = obj.u64(bin.name(), total);
    }
    obj.finish()
}

/// Where simulations run. Implementations must be deterministic in the
/// returned [`EvalReport`]s — only `wall_us` and `cached` may vary —
/// and must answer requests **in request order**.
pub trait Evaluator {
    /// Evaluates a batch, one response per request, in request order.
    ///
    /// # Errors
    ///
    /// Returns a human-readable transport/configuration error; the
    /// local evaluator is infallible in practice.
    fn evaluate(&mut self, batch: Vec<EvalRequest>) -> Result<Vec<EvalResponse>, String>;
}

/// The in-process evaluator: fans a batch across the work-stealing
/// sweep pool ([`run_sweep_observed`]).
#[derive(Debug, Clone)]
pub struct LocalEvaluator {
    /// Sweep-pool worker threads (points in flight at once).
    pub pool_threads: usize,
    /// Bound-weave threads per point (outcome-neutral).
    pub point_threads: usize,
    /// Disable the adaptive serial fallback (outcome-neutral).
    pub pin_point_threads: bool,
    /// Explicit front-shard split (outcome-neutral).
    pub front_shards: Option<usize>,
    /// Speculative shard overlap toggle (outcome-neutral).
    pub speculate: Option<bool>,
    /// Narrate per-point results to stderr.
    pub verbose: bool,
    /// Label for narration and the internal sweep name; never
    /// serialized into responses.
    pub tag: String,
}

impl LocalEvaluator {
    /// A serial evaluator (one point at a time, quiet).
    pub fn serial() -> LocalEvaluator {
        LocalEvaluator {
            pool_threads: 1,
            point_threads: 1,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
            verbose: false,
            tag: "eval".into(),
        }
    }
}

impl Evaluator for LocalEvaluator {
    fn evaluate(&mut self, batch: Vec<EvalRequest>) -> Result<Vec<EvalResponse>, String> {
        let points = batch
            .into_iter()
            .map(|req| SweepPoint {
                id: req.id,
                run: req.run,
            })
            .collect();
        let sweep = Sweep {
            name: self.tag.clone(),
            points,
        };
        let mut cfg = SweepConfig::serial()
            .with_threads(self.pool_threads.max(1))
            .with_point_threads(self.point_threads.max(1));
        cfg.pin_point_threads = self.pin_point_threads;
        cfg.front_shards = self.front_shards;
        cfg.speculate = self.speculate;
        let tag = self.tag.clone();
        let narrate = move |p: &PointResult| {
            eprintln!(
                "[{tag}]   {} makespan {} tasks {} ({} ms)",
                p.id,
                p.report.makespan,
                p.report.tasks,
                p.wall.as_millis()
            );
        };
        let hooks = SweepHooks {
            cancel: None,
            on_point: self
                .verbose
                .then_some(&narrate as &(dyn Fn(&PointResult) + Sync)),
        };
        let result = run_sweep_observed(&sweep, &cfg, &hooks);
        Ok(result
            .points
            .into_iter()
            .map(|p| EvalResponse {
                id: p.id,
                report: EvalReport::from_report(&p.report),
                wall_us: duration_us(p.wall),
                cached: false,
            })
            .collect())
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Serializes the **simulation-relevant** subset of a [`BenchRun`] as a
/// canonical JSON object: the fields that determine the simulated
/// outcome, and none of the outcome-neutral host-threading knobs
/// (`point_threads`, weave overrides, shard splits, speculation). Two
/// runs with equal wire forms simulate identically, which is what makes
/// this string the store's point fingerprint and the worker protocol's
/// job payload at once.
pub fn run_to_json(run: &BenchRun) -> String {
    let sched = match &run.sched {
        SchedSpec::Software(policy) => JsonObject::new()
            .str("type", "software")
            .str("policy", &policy.label())
            .finish(),
        SchedSpec::Minnow { wdp_credits } => JsonObject::new()
            .str("type", "minnow")
            .opt_u64("credits", wdp_credits.map(u64::from))
            .finish(),
        SchedSpec::MinnowWithHw(hw) => JsonObject::new()
            .str("type", "minnow-hw")
            .str(
                "hw",
                match hw {
                    HwKind::Stride => "stride",
                    HwKind::Imp => "imp",
                },
            )
            .finish(),
        SchedSpec::Bsp(lg) => JsonObject::new()
            .str("type", "bsp")
            .opt_u64("lg", lg.map(u64::from))
            .finish(),
    };
    let core = JsonObject::new()
        .bool("perfect_branch", run.core_mode.perfect_branch)
        .bool("no_fence", run.core_mode.no_fence)
        .finish();
    let mut obj = JsonObject::new()
        .str("workload", run.kind.name())
        // Shortest-roundtrip formatting: the worker must simulate the
        // *exact* f64, not a six-decimal truncation of it.
        .raw("scale", &format!("{}", run.scale))
        .u64("seed", run.seed)
        .u64("threads", run.threads as u64)
        .raw("sched", &sched)
        .raw("core", &core)
        .opt_u64("channels", run.channels.map(|c| c as u64))
        .opt_u64("rob", run.rob.map(|r| r as u64));
    match run.l2 {
        Some((bytes, ways)) => {
            let l2 = JsonObject::new()
                .u64("bytes", bytes as u64)
                .u64("ways", ways as u64)
                .finish();
            obj = obj.raw("l2", &l2);
        }
        None => obj = obj.raw("l2", "null"),
    }
    match &run.engine {
        Some(e) => {
            let engine = JsonObject::new()
                .u64("local_queue", e.local_queue as u64)
                .u64("local_queue_latency", e.local_queue_latency)
                .u64("threadlet_queue", e.threadlet_queue as u64)
                .u64("load_buffer", e.load_buffer as u64)
                .u64("load_buffer_wakeup", e.load_buffer_wakeup)
                .u64("context_bytes", e.context_bytes as u64)
                .u64("data_memory_bytes", e.data_memory_bytes as u64)
                .u64("refill_threshold", e.refill_threshold as u64)
                .finish();
            obj = obj.raw("engine", &engine);
        }
        None => obj = obj.raw("engine", "null"),
    }
    let input = match &run.input {
        Some(spec) => format!("\"{}\"", crate::json::escape(&spec.path.to_string_lossy())),
        None => "null".into(),
    };
    obj.u64("task_limit", run.task_limit)
        .bool("serial_baseline", run.serial_baseline)
        .raw("input", &input)
        .finish()
}

/// Parses a [`run_to_json`] wire form back into an executable
/// [`BenchRun`] (host-threading knobs at their serial defaults).
///
/// # Errors
///
/// Returns a message naming the malformed field. Software runs are
/// accepted only with the workload's own paper policy — the named
/// sweeps and declared spaces never use another, and silently
/// substituting one would break byte-identity.
pub fn run_from_json(doc: &Json) -> Result<BenchRun, String> {
    let workload = doc.str_field("workload")?;
    let kind = WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name() == workload)
        .ok_or_else(|| format!("unknown workload `{workload}`"))?;
    let threads = doc.u64_field("threads")? as usize;
    let sched_doc = doc.get("sched").ok_or("missing `sched` object")?;
    let sched = match sched_doc.str_field("type")? {
        "software" => {
            let policy = kind.build_policy();
            let label = sched_doc.str_field("policy")?;
            if label != policy.label() {
                return Err(format!(
                    "software policy `{label}` is not {}'s paper policy `{}`",
                    kind.name(),
                    policy.label()
                ));
            }
            SchedSpec::Software(policy)
        }
        "minnow" => SchedSpec::Minnow {
            wdp_credits: match sched_doc.get("credits") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    u32::try_from(v.as_u64().ok_or("non-integer `credits`")?)
                        .map_err(|_| "`credits` out of range")?,
                ),
            },
        },
        "minnow-hw" => SchedSpec::MinnowWithHw(match sched_doc.str_field("hw")? {
            "stride" => HwKind::Stride,
            "imp" => HwKind::Imp,
            other => return Err(format!("unknown hw prefetcher `{other}`")),
        }),
        "bsp" => SchedSpec::Bsp(match sched_doc.get("lg") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                u32::try_from(v.as_u64().ok_or("non-integer `lg`")?)
                    .map_err(|_| "`lg` out of range")?,
            ),
        }),
        other => return Err(format!("unknown sched type `{other}`")),
    };
    let mut run = BenchRun::new(kind, threads, sched);
    run.scale = doc.f64_field("scale")?;
    run.seed = doc.u64_field("seed")?;
    if let Some(core) = doc.get("core") {
        run.core_mode = CoreMode {
            perfect_branch: core.bool_field("perfect_branch")?,
            no_fence: core.bool_field("no_fence")?,
        };
    }
    run.channels = match doc.get("channels") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or("non-integer `channels`")? as usize),
    };
    run.rob = match doc.get("rob") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or("non-integer `rob`")? as usize),
    };
    run.l2 = match doc.get("l2") {
        None | Some(Json::Null) => None,
        Some(l2) => Some((
            l2.u64_field("bytes")? as usize,
            l2.u64_field("ways")? as usize,
        )),
    };
    run.engine = match doc.get("engine") {
        None | Some(Json::Null) => None,
        Some(e) => Some(EngineParams {
            local_queue: e.u64_field("local_queue")? as usize,
            local_queue_latency: e.u64_field("local_queue_latency")?,
            threadlet_queue: e.u64_field("threadlet_queue")? as usize,
            load_buffer: e.u64_field("load_buffer")? as usize,
            load_buffer_wakeup: e.u64_field("load_buffer_wakeup")?,
            context_bytes: e.u64_field("context_bytes")? as usize,
            data_memory_bytes: e.u64_field("data_memory_bytes")? as usize,
            refill_threshold: e.u64_field("refill_threshold")? as usize,
        }),
    };
    run.task_limit = doc.u64_field("task_limit")?;
    run.serial_baseline = doc.bool_field("serial_baseline")?;
    run.input = match doc.get("input") {
        None | Some(Json::Null) => None,
        Some(v) => Some(InputSpec::new(
            v.as_str().ok_or("non-string `input` path")?,
        )),
    };
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::derive_seed;

    fn roundtrip(run: &BenchRun) -> BenchRun {
        let wire = run_to_json(run);
        let doc = Json::parse(&wire).unwrap_or_else(|e| panic!("{wire}: {e}"));
        let back = run_from_json(&doc).unwrap();
        assert_eq!(run_to_json(&back), wire, "wire form is a fixed point");
        back
    }

    #[test]
    fn run_wire_roundtrips_every_sched_and_override() {
        let mut wdp = BenchRun::minnow_wdp(WorkloadKind::Sssp, 8);
        wdp.scale = 0.1;
        wdp.seed = derive_seed(42, "SSSP"); // a genuine 64-bit value
        wdp.channels = Some(4);
        wdp.rob = Some(64);
        wdp.l2 = Some((8 * 1024, 8));
        let mut engine = EngineParams::paper();
        engine.local_queue = 16;
        engine.refill_threshold = 8;
        wdp.engine = Some(engine);
        let back = roundtrip(&wdp);
        assert_eq!(back.seed, wdp.seed, "seeds survive exactly");
        assert_eq!(back.scale, wdp.scale);
        assert_eq!(back.l2, wdp.l2);

        roundtrip(&BenchRun::software_default(WorkloadKind::Bfs, 4));
        roundtrip(&BenchRun::minnow(WorkloadKind::Cc, 2));
        roundtrip(&BenchRun::new(
            WorkloadKind::Pr,
            2,
            SchedSpec::MinnowWithHw(HwKind::Imp),
        ));
        roundtrip(&BenchRun::new(WorkloadKind::Bc, 2, SchedSpec::Bsp(Some(3))));
        let mut serial = BenchRun::software_default(WorkloadKind::G500, 1);
        serial.serial_baseline = true;
        roundtrip(&serial);
        let mut file = BenchRun::minnow(WorkloadKind::Bfs, 2);
        file.input = Some(InputSpec::new("graphs/road.mcsr"));
        assert_eq!(
            roundtrip(&file).input,
            Some(InputSpec::new("graphs/road.mcsr"))
        );
    }

    #[test]
    fn wire_form_excludes_host_threading_knobs() {
        let mut a = BenchRun::minnow(WorkloadKind::Bfs, 2);
        let mut b = a.clone();
        a.point_threads = 1;
        b.point_threads = 8;
        b.pin_point_threads = true;
        b.front_shards = Some(2);
        b.speculate = Some(false);
        assert_eq!(run_to_json(&a), run_to_json(&b));
    }

    #[test]
    fn rejects_non_paper_software_policies_and_junk() {
        let run = BenchRun::software_default(WorkloadKind::Bfs, 2);
        let tampered = run_to_json(&run).replace(
            &format!("\"policy\":\"{}\"", match &run.sched {
                SchedSpec::Software(p) => p.label().to_string(),
                _ => unreachable!(),
            }),
            "\"policy\":\"definitely-not\"",
        );
        let doc = Json::parse(&tampered).unwrap();
        assert!(run_from_json(&doc).is_err());
        let doc = Json::parse("{\"workload\":\"WAT\"}").unwrap();
        assert!(run_from_json(&doc).is_err());
    }

    #[test]
    fn eval_report_roundtrips_and_matches_run_report() {
        let mut run = BenchRun::minnow_wdp(WorkloadKind::Bfs, 2);
        run.scale = 0.03;
        let full = run.execute();
        let flat = EvalReport::from_report(&full);
        assert_eq!(flat.makespan, full.makespan);
        assert_eq!(flat.mpki(), full.mpki());
        assert_eq!(flat.prefetch_efficiency(), full.prefetch_efficiency());
        assert_eq!(
            flat.bins.iter().sum::<u64>(),
            full.makespan * flat.cores,
            "accounting stays closed through the flattening"
        );
        let doc = Json::parse(&flat.to_json()).unwrap();
        assert_eq!(EvalReport::from_json(&doc).unwrap(), flat);
    }

    #[test]
    fn local_evaluator_answers_in_request_order() {
        let mut runs = Vec::new();
        for (i, kind) in [WorkloadKind::Bfs, WorkloadKind::Cc].into_iter().enumerate() {
            let mut run = BenchRun::minnow(kind, 2);
            run.scale = 0.02;
            runs.push(EvalRequest {
                id: format!("p{i}"),
                run,
            });
        }
        let mut local = LocalEvaluator::serial();
        local.pool_threads = 2;
        let out = local.evaluate(runs).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, "p0");
        assert_eq!(out[1].id, "p1");
        assert!(out.iter().all(|r| !r.cached && r.report.tasks > 0));
    }
}

//! Experiment runner: one entry point for every scheduler/machine
//! configuration the figures sweep.

use std::sync::Arc;

use minnow_algos::WorkloadKind;
use minnow_core::area::{self, AreaEstimate, Process};
use minnow_core::offload::{MinnowConfig, MinnowScheduler};
use minnow_sim::config::EngineParams;
use minnow_graph::image::GraphImage;
use minnow_graph::Csr;
use minnow_prefetch::{Imp, StridePrefetcher};
use minnow_runtime::bsp::{run_bsp, BspConfig};
use minnow_runtime::sim_exec::{run, run_with_prefetcher, ExecConfig, RunReport};
use minnow_runtime::{PolicyKind, SoftwareScheduler};
use minnow_sim::core::CoreMode;
use minnow_sim::hierarchy::MemoryHierarchy;
use minnow_sim::observer::HwPrefetcher;
use minnow_sim::trace::Tracer;

/// Which scheduler/executor drives the run.
#[derive(Debug, Clone)]
pub enum SchedSpec {
    /// Galois-like software worklist with the given policy.
    Software(PolicyKind),
    /// Minnow offload; `wdp_credits = None` disables prefetching.
    Minnow {
        /// Worklist-directed prefetch credits.
        wdp_credits: Option<u32>,
    },
    /// Minnow offload (no WDP) + a table-based hardware prefetcher.
    MinnowWithHw(HwKind),
    /// GraphMat-like BSP engine; `Some(lg)` = bucketed `GMat*`.
    Bsp(Option<u32>),
}

impl SchedSpec {
    /// Stable, filesystem-safe configuration label for artifacts and
    /// sweep records.
    pub fn label(&self) -> String {
        match self {
            SchedSpec::Software(policy) => format!("software-{}", policy.label()),
            SchedSpec::Minnow { wdp_credits: None } => "minnow".into(),
            SchedSpec::Minnow {
                wdp_credits: Some(c),
            } => format!("minnow-wdp{c}"),
            SchedSpec::MinnowWithHw(HwKind::Stride) => "minnow-hw-stride".into(),
            SchedSpec::MinnowWithHw(HwKind::Imp) => "minnow-hw-imp".into(),
            SchedSpec::Bsp(None) => "bsp".into(),
            SchedSpec::Bsp(Some(lg)) => format!("bsp-b{lg}"),
        }
    }
}

/// Hardware prefetcher selector for [`SchedSpec::MinnowWithHw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwKind {
    /// Classic stride prefetcher.
    Stride,
    /// Indirect memory prefetcher (distance 4, re-tuned per paper §6.3.3).
    Imp,
}

/// An external graph file standing in for the workload's generated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSpec {
    /// Path to the graph: any [`minnow_graph::io::GraphSource`] format,
    /// including `minnow-csr-image/v1` files.
    pub path: std::path::PathBuf,
    /// Explicit source format; `None` detects from the extension.
    pub format: Option<minnow_graph::io::GraphSource>,
    /// How to load an image file (ignored for text/binary edge formats).
    pub mode: minnow_graph::image::LoadMode,
}

impl InputSpec {
    /// A spec with the default (auto mmap-or-read) load mode.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        InputSpec {
            path: path.into(),
            format: None,
            mode: minnow_graph::image::LoadMode::Auto,
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Workload.
    pub kind: WorkloadKind,
    /// Input scale.
    pub scale: f64,
    /// External input file; `None` (the default) generates the workload's
    /// Table 1 analogue at [`BenchRun::scale`]. When set, `scale`/`seed`
    /// no longer affect the graph (they still seed the simulator).
    pub input: Option<InputSpec>,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads (= cores).
    pub threads: usize,
    /// Scheduler.
    pub sched: SchedSpec,
    /// Core idealization (Fig. 4).
    pub core_mode: CoreMode,
    /// Override DRAM channel count (Fig. 21).
    pub channels: Option<usize>,
    /// Override ROB size, keeping buffer ratios (Fig. 4).
    pub rob: Option<usize>,
    /// Override the per-core L2 geometry as `(size_bytes, ways)` — the
    /// cache the Minnow engine attaches to. The explorer sweeps this
    /// axis; line size stays at the paper's 64B.
    pub l2: Option<(usize, usize)>,
    /// Override the Minnow engine hardware parameters (local/threadlet
    /// queue depths, refill threshold, data memory). Applies to the
    /// Minnow scheduler configurations only; the explorer sweeps these
    /// axes and prices them with the §5.4 area model.
    pub engine: Option<EngineParams>,
    /// Task limit (timeout guard).
    pub task_limit: u64,
    /// Serial-baseline accounting (atomics as stores).
    pub serial_baseline: bool,
    /// Host threads simulating this point (bound-weave mode when `>= 2`;
    /// see `minnow_runtime::sim_exec::ExecConfig::point_threads`).
    /// Simulated outcomes are byte-identical for every value.
    pub point_threads: usize,
    /// Override the bound-weave epoch length (simulated cycles);
    /// outcome-neutral.
    pub weave_epoch: Option<u64>,
    /// Override the bound-weave in-flight fetch cap; outcome-neutral.
    pub weave_inflight: Option<usize>,
    /// Skip the adaptive serial fallback: always shard when
    /// `point_threads >= 2` (see
    /// `minnow_runtime::sim_exec::ExecConfig::pin_point_threads`).
    pub pin_point_threads: bool,
    /// Explicit front-shard count within the `point_threads` budget (see
    /// `minnow_runtime::sim_exec::ExecConfig::front_shards`); `None` lets
    /// the planner split it. Outcome-neutral.
    pub front_shards: Option<usize>,
    /// Speculative shard overlap toggle (see
    /// `minnow_runtime::sim_exec::ExecConfig::speculate`); `None` defers to
    /// `MINNOW_SPECULATE` and the on-by-default. Outcome-neutral.
    pub speculate: Option<bool>,
}

impl BenchRun {
    /// A default configuration for the workload at the harness scale.
    pub fn new(kind: WorkloadKind, threads: usize, sched: SchedSpec) -> Self {
        BenchRun {
            kind,
            scale: crate::scale(),
            input: None,
            seed: crate::seed(),
            threads,
            sched,
            core_mode: CoreMode::realistic(),
            channels: None,
            rob: None,
            l2: None,
            engine: None,
            task_limit: 20_000_000,
            serial_baseline: false,
            point_threads: 1,
            weave_epoch: None,
            weave_inflight: None,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
        }
    }

    /// The workload's paper scheduler as a software run.
    pub fn software_default(kind: WorkloadKind, threads: usize) -> Self {
        BenchRun::new(kind, threads, SchedSpec::Software(kind.build_policy()))
    }

    /// Minnow without prefetching.
    pub fn minnow(kind: WorkloadKind, threads: usize) -> Self {
        BenchRun::new(kind, threads, SchedSpec::Minnow { wdp_credits: None })
    }

    /// Minnow with the paper's 32-credit prefetcher.
    pub fn minnow_wdp(kind: WorkloadKind, threads: usize) -> Self {
        BenchRun::new(
            kind,
            threads,
            SchedSpec::Minnow {
                wdp_credits: Some(32),
            },
        )
    }

    fn exec_config(&self) -> ExecConfig {
        let mut cfg = ExecConfig::new(self.threads);
        cfg.core_mode = self.core_mode;
        cfg.task_limit = self.task_limit;
        cfg.serial_baseline = self.serial_baseline;
        if let Some(ch) = self.channels {
            cfg.sim.mem_channels = ch;
        }
        if let Some(rob) = self.rob {
            cfg.sim.ooo = minnow_sim::config::OooParams::scaled_rob(rob);
        }
        if let Some((size_bytes, ways)) = self.l2 {
            cfg.sim.l2.size_bytes = size_bytes;
            cfg.sim.l2.ways = ways;
            // Fail fast on degenerate geometry instead of deep in the
            // hierarchy constructor.
            let _ = cfg.sim.l2.sets();
        }
        cfg.point_threads = self.point_threads.max(1);
        cfg.pin_point_threads = self.pin_point_threads;
        cfg.front_shards = self.front_shards;
        cfg.speculate = self.speculate;
        if let Some(epoch) = self.weave_epoch {
            cfg.weave_epoch = epoch;
        }
        if let Some(cap) = self.weave_inflight {
            cfg.weave_inflight = cap;
        }
        cfg
    }

    /// The input graph for this run: the external file when
    /// [`BenchRun::input`] is set (loaded through the process-wide file
    /// cache, sorted when the workload demands it), otherwise the
    /// generated analogue.
    ///
    /// # Panics
    ///
    /// Panics if an external input fails to load — binaries should
    /// pre-validate with [`BenchRun::try_input`].
    pub fn input(&self) -> Arc<Csr> {
        self.try_input().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BenchRun::input`], surfacing file errors instead of panicking.
    pub fn try_input(&self) -> Result<Arc<Csr>, String> {
        match &self.input {
            Some(spec) => {
                let require_sorted = self.kind == WorkloadKind::Tc;
                minnow_algos::suite::file_input(&spec.path, spec.format, spec.mode, require_sorted)
                    .map_err(|e| format!("input {}: {e}", spec.path.display()))
            }
            None => Ok(self.kind.input(self.scale, self.seed)),
        }
    }

    /// The §5.4 area cost of this configuration's Minnow hardware:
    /// every engine's SRAM + control logic, priced against the L2 this
    /// run actually simulates (including any [`BenchRun::l2`] and
    /// [`BenchRun::engine`] overrides). `None` for configurations with
    /// no engines (software and BSP schedulers) — their hardware cost
    /// is zero by construction, which the explorer's objective layer
    /// represents as an empty estimate rather than a zero-sized engine.
    pub fn area_estimate(&self, process: Process) -> Option<AreaEstimate> {
        match self.sched {
            SchedSpec::Software(_) | SchedSpec::Bsp(_) => None,
            SchedSpec::Minnow { .. } | SchedSpec::MinnowWithHw(_) => {
                let params = self.engine.unwrap_or_else(EngineParams::paper);
                let l2_lines = self.exec_config().sim.l2.lines();
                Some(area::machine_estimate(&params, l2_lines, self.threads, 1, process))
            }
        }
    }

    /// Executes the run.
    pub fn execute(&self) -> RunReport {
        self.execute_on(self.input())
    }

    /// Executes the run on a prepared input (lets sweeps share generation).
    pub fn execute_on(&self, graph: Arc<Csr>) -> RunReport {
        self.execute_traced_on(graph, &Tracer::disabled())
    }

    /// Executes the run with structured tracing: every component (the
    /// hierarchy, the executor, Minnow engines, the BSP engine) reports
    /// events into `tracer`. Simulation results are identical to the
    /// untraced run — tracing only observes.
    pub fn execute_traced(&self, tracer: &Tracer) -> RunReport {
        self.execute_traced_on(self.input(), tracer)
    }

    /// [`BenchRun::execute_traced`] on a prepared input.
    pub fn execute_traced_on(&self, graph: Arc<Csr>, tracer: &Tracer) -> RunReport {
        let mut op = self.kind.operator_on(graph.clone());
        let cfg = self.exec_config();
        match &self.sched {
            SchedSpec::Software(policy) => {
                let mut mem = MemoryHierarchy::new(&cfg.sim);
                mem.set_tracer(tracer.clone());
                let mut sched = SoftwareScheduler::new(policy.build(), self.threads);
                run(op.as_mut(), &mut sched, &mut mem, &cfg)
            }
            SchedSpec::Minnow { wdp_credits } => {
                let mut mem = MemoryHierarchy::new(&cfg.sim);
                mem.set_tracer(tracer.clone());
                let mut mc = MinnowConfig::paper(self.kind.lg_bucket());
                mc.prefetch_credits = *wdp_credits;
                if let Some(engine) = self.engine {
                    mc.engine = engine;
                }
                let mut sched = MinnowScheduler::new(
                    graph,
                    op.address_map(),
                    op.prefetch_kind(),
                    self.threads,
                    mc,
                );
                run(op.as_mut(), &mut sched, &mut mem, &cfg)
            }
            SchedSpec::MinnowWithHw(hw) => {
                let mut mem = MemoryHierarchy::new(&cfg.sim);
                mem.set_tracer(tracer.clone());
                let mut mc = MinnowConfig::no_prefetch(self.kind.lg_bucket());
                if let Some(engine) = self.engine {
                    mc.engine = engine;
                }
                let mut sched = MinnowScheduler::new(
                    graph.clone(),
                    op.address_map(),
                    op.prefetch_kind(),
                    self.threads,
                    mc,
                );
                let image = GraphImage::new(&graph, op.address_map());
                let mut pf: Box<dyn HwPrefetcher> = match hw {
                    HwKind::Stride => Box::new(StridePrefetcher::new(self.threads, 4)),
                    HwKind::Imp => Box::new(Imp::new(self.threads, 4)),
                };
                run_with_prefetcher(
                    op.as_mut(),
                    &mut sched,
                    &mut mem,
                    Some((pf.as_mut(), &image)),
                    &cfg,
                )
            }
            SchedSpec::Bsp(lg) => {
                let mut bsp = BspConfig::new(self.threads);
                bsp.lg_bucket_interval = *lg;
                bsp.core_mode = self.core_mode;
                bsp.tracer = tracer.clone();
                bsp.point_threads = self.point_threads.max(1);
                bsp.pin_point_threads = self.pin_point_threads;
                if let Some(cap) = self.weave_inflight {
                    bsp.weave_inflight = cap;
                }
                run_bsp(op.as_mut(), &bsp)
            }
        }
    }
}

/// Serial-baseline cycles for a workload (the Fig. 15/16 denominator:
/// 1 thread, the workload's own policy, atomics demoted).
pub fn serial_baseline(kind: WorkloadKind, scale: f64, seed: u64) -> u64 {
    let mut run = BenchRun::software_default(kind, 1);
    run.scale = scale;
    run.seed = seed;
    run.serial_baseline = true;
    run.execute().makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sched_specs_run_a_small_workload() {
        for sched in [
            SchedSpec::Software(PolicyKind::Obim(0)),
            SchedSpec::Minnow { wdp_credits: None },
            SchedSpec::Minnow {
                wdp_credits: Some(16),
            },
            SchedSpec::MinnowWithHw(HwKind::Stride),
            SchedSpec::MinnowWithHw(HwKind::Imp),
            SchedSpec::Bsp(None),
            SchedSpec::Bsp(Some(0)),
        ] {
            let mut run = BenchRun::new(WorkloadKind::Bfs, 2, sched.clone());
            run.scale = 0.03;
            let report = run.execute();
            assert!(!report.timed_out, "{sched:?} timed out");
            assert!(report.tasks > 0, "{sched:?} did nothing");
        }
    }

    #[test]
    fn serial_baseline_is_positive() {
        assert!(serial_baseline(WorkloadKind::Cc, 0.03, 1) > 0);
    }

    #[test]
    fn overrides_apply() {
        let mut run = BenchRun::software_default(WorkloadKind::Bfs, 2);
        run.scale = 0.03;
        run.channels = Some(1);
        run.rob = Some(64);
        let cfg = run.exec_config();
        assert_eq!(cfg.sim.mem_channels, 1);
        assert_eq!(cfg.sim.ooo.rob, 64);
        let r = run.execute();
        assert!(r.tasks > 0);
    }

    #[test]
    fn l2_and_engine_overrides_apply_and_change_outcomes() {
        let mut base = BenchRun::minnow_wdp(WorkloadKind::Bfs, 2);
        base.scale = 0.03;
        let mut shrunk = base.clone();
        shrunk.l2 = Some((8 * 1024, 8));
        assert_eq!(shrunk.exec_config().sim.l2.size_bytes, 8 * 1024);
        assert_eq!(shrunk.exec_config().sim.l2.ways, 8);
        let r_base = base.execute();
        let r_shrunk = shrunk.execute();
        assert!(r_base.tasks > 0 && r_shrunk.tasks > 0);
        assert!(
            r_shrunk.l2_misses > r_base.l2_misses,
            "an 8KB L2 must miss more than the default ({} vs {})",
            r_shrunk.l2_misses,
            r_base.l2_misses
        );

        let mut tiny_queue = base.clone();
        let mut params = EngineParams::paper();
        params.local_queue = 4;
        params.refill_threshold = 2;
        tiny_queue.engine = Some(params);
        let r_tiny = tiny_queue.execute();
        assert!(r_tiny.tasks > 0);
        assert_ne!(
            r_tiny.makespan, r_base.makespan,
            "a 4-entry local queue must change engine behaviour"
        );
    }

    #[test]
    fn area_estimate_prices_engines_only() {
        let minnow = BenchRun::minnow(WorkloadKind::Bfs, 4);
        let est = minnow.area_estimate(Process::Nm14).expect("minnow has engines");
        assert!(est.total_mm2() > 0.0);
        // Four per-core engines cost four single-engine estimates.
        let one = BenchRun::minnow(WorkloadKind::Bfs, 1)
            .area_estimate(Process::Nm14)
            .unwrap();
        assert!((est.total_mm2() - 4.0 * one.total_mm2()).abs() < 1e-12);
        assert!(BenchRun::software_default(WorkloadKind::Bfs, 4)
            .area_estimate(Process::Nm14)
            .is_none());
    }
}

//! Parallel sweep execution engine.
//!
//! A figure in the paper is a *sweep*: an enumerable set of independent
//! simulation points (workload × scheduler × machine configuration).
//! Points share nothing but their immutable input graphs, so they
//! parallelize perfectly across OS threads. This module provides:
//!
//! * named sweep enumerations mirroring the evaluation figures
//!   ([`Sweep::named`]),
//! * a work-stealing thread pool ([`run_sweep`]) that fans points out
//!   over a `crossbeam` deque (global injector + per-worker queues),
//! * deterministic per-point seeding ([`derive_seed`]) with no global
//!   RNG state, and
//! * machine-readable artifacts: a JSON-lines record per point
//!   ([`SweepResult::jsonl`]) plus a summary document
//!   ([`SweepResult::summary_json`]).
//!
//! # Determinism contract
//!
//! For a fixed sweep, filter, scale, and seed, [`SweepResult::jsonl`] is
//! **byte-identical** no matter how many pool threads executed the sweep
//! or in what order points finished:
//!
//! * results are emitted in enumeration order, not completion order;
//! * every point's input seed is derived from `(sweep seed, workload)` —
//!   all configurations of one workload run the *same* graph (figures
//!   compare schedulers on a common input), and the derivation does not
//!   depend on enumeration position;
//! * wall-clock measurements never appear in per-point records; they are
//!   confined to the summary's `volatile` section.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use minnow_algos::WorkloadKind;
use minnow_runtime::sim_exec::RunReport;
use minnow_sim::stats::CycleBin;
use minnow_sim::trace::{TraceEvent, Tracer};

use crate::json::{escape, JsonObject};
use crate::runner::{BenchRun, HwKind, InputSpec, SchedSpec};

/// Derives a point-input seed from the sweep seed and a stable key
/// (FNV-1a over the key, finalized with a SplitMix64 mix).
///
/// The derivation is pure: it depends only on its arguments, never on
/// enumeration order or thread identity, so adding or filtering points
/// cannot change any other point's input.
pub fn derive_seed(sweep_seed: u64, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finalizer over the combined state.
    let mut z = sweep_seed ^ h;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Knobs shared by every named sweep (defaults from the harness
/// environment variables, see the crate docs).
#[derive(Debug, Clone)]
pub struct SweepParams {
    /// Input scale factor.
    pub scale: f64,
    /// Sweep seed; per-point seeds are derived from it.
    pub seed: u64,
    /// Headline thread count (Fig. 16 and the credit sweeps).
    pub headline_threads: usize,
    /// Scalability-sweep maximum thread count.
    pub max_threads: usize,
}

impl SweepParams {
    /// Reads the harness environment knobs.
    pub fn from_env() -> Self {
        SweepParams {
            scale: crate::scale(),
            seed: crate::seed(),
            headline_threads: crate::headline_threads(),
            max_threads: crate::max_threads(),
        }
    }
}

/// One independent simulation point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Stable identifier, e.g. `fig15/SSSP/minnow/t4`.
    pub id: String,
    /// The full configuration to execute.
    pub run: BenchRun,
}

/// An enumerated sweep: a name plus its points in presentation order.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Sweep name (`fig15`, `credits`, ...).
    pub name: String,
    /// Points in enumeration (= output) order.
    pub points: Vec<SweepPoint>,
}

/// Schema identifier stamped into [`SweepResult::bench_json`] documents.
pub const BENCH_SCHEMA: &str = "minnow-bench-wallclock/v1";

/// Prefetch-credit axis shared by the Fig. 18-20 sweeps (union of the
/// figures' individual axes).
pub const CREDIT_AXIS: [u32; 7] = [1, 8, 16, 32, 64, 128, 256];

/// DRAM-channel axis of Fig. 21.
pub const CHANNEL_AXIS: [usize; 4] = [1, 2, 4, 12];

impl Sweep {
    /// Every named sweep this module can enumerate.
    pub const NAMES: [&'static str; 5] = ["fig15", "fig16", "credits", "channels", "smoke"];

    /// Enumerates a sweep by name; `None` for unknown names.
    pub fn named(name: &str, p: &SweepParams) -> Option<Sweep> {
        match name {
            "fig15" => Some(Sweep::fig15(p)),
            "fig16" => Some(Sweep::fig16(p)),
            "credits" => Some(Sweep::credits(p)),
            "channels" => Some(Sweep::channels(p)),
            "smoke" => Some(Sweep::smoke(p)),
            _ => None,
        }
    }

    fn point(id: String, mut run: BenchRun, p: &SweepParams) -> SweepPoint {
        run.scale = p.scale;
        run.seed = derive_seed(p.seed, run.kind.name());
        SweepPoint { id, run }
    }

    /// Fig. 15 — scalability: serial baseline plus software/Minnow at
    /// 1..=`max_threads` (powers of two).
    pub fn fig15(p: &SweepParams) -> Sweep {
        let mut threads = vec![1usize, 2, 4, 8, 16, 32, 64];
        threads.retain(|&t| t <= p.max_threads);
        let mut points = Vec::new();
        for kind in WorkloadKind::ALL {
            let mut serial = BenchRun::software_default(kind, 1);
            serial.serial_baseline = true;
            points.push(Sweep::point(
                format!("fig15/{kind}/serial/t1"),
                serial,
                p,
            ));
            for &th in &threads {
                points.push(Sweep::point(
                    format!("fig15/{kind}/galois/t{th}"),
                    BenchRun::software_default(kind, th),
                    p,
                ));
                points.push(Sweep::point(
                    format!("fig15/{kind}/minnow/t{th}"),
                    BenchRun::minnow(kind, th),
                    p,
                ));
            }
        }
        Sweep {
            name: "fig15".into(),
            points,
        }
    }

    /// Fig. 16 — overall speedup at the headline thread count: software
    /// baseline, offload alone, offload + WDP.
    pub fn fig16(p: &SweepParams) -> Sweep {
        let th = p.headline_threads;
        let mut points = Vec::new();
        for kind in WorkloadKind::ALL {
            points.push(Sweep::point(
                format!("fig16/{kind}/software"),
                BenchRun::software_default(kind, th),
                p,
            ));
            points.push(Sweep::point(
                format!("fig16/{kind}/minnow"),
                BenchRun::minnow(kind, th),
                p,
            ));
            points.push(Sweep::point(
                format!("fig16/{kind}/wdp"),
                BenchRun::minnow_wdp(kind, th),
                p,
            ));
        }
        Sweep {
            name: "fig16".into(),
            points,
        }
    }

    /// Figs. 18-20 — the shared prefetch-credit sweep: Minnow without
    /// prefetching, WDP across [`CREDIT_AXIS`], and IMP for comparison.
    pub fn credits(p: &SweepParams) -> Sweep {
        let th = p.headline_threads.min(16); // credit sweeps are per-core effects
        let mut points = Vec::new();
        for kind in WorkloadKind::ALL {
            points.push(Sweep::point(
                format!("credits/{kind}/nopf"),
                BenchRun::minnow(kind, th),
                p,
            ));
            for c in CREDIT_AXIS {
                points.push(Sweep::point(
                    format!("credits/{kind}/c{c}"),
                    BenchRun::new(
                        kind,
                        th,
                        SchedSpec::Minnow {
                            wdp_credits: Some(c),
                        },
                    ),
                    p,
                ));
            }
            points.push(Sweep::point(
                format!("credits/{kind}/imp"),
                BenchRun::new(kind, th, SchedSpec::MinnowWithHw(HwKind::Imp)),
                p,
            ));
        }
        Sweep {
            name: "credits".into(),
            points,
        }
    }

    /// Fig. 21 — DRAM-channel sensitivity with and without WDP.
    pub fn channels(p: &SweepParams) -> Sweep {
        let th = p.max_threads.min(32);
        let mut points = Vec::new();
        for kind in WorkloadKind::ALL {
            for (label, wdp) in [("nopf", false), ("wdp", true)] {
                for ch in CHANNEL_AXIS {
                    let mut run = if wdp {
                        BenchRun::minnow_wdp(kind, th)
                    } else {
                        BenchRun::minnow(kind, th)
                    };
                    run.channels = Some(ch);
                    points.push(Sweep::point(
                        format!("channels/{kind}/{label}/ch{ch}"),
                        run,
                        p,
                    ));
                }
            }
        }
        Sweep {
            name: "channels".into(),
            points,
        }
    }

    /// A small fixed sweep (two workloads, three schedulers) for tests
    /// and quick end-to-end checks.
    pub fn smoke(p: &SweepParams) -> Sweep {
        let mut points = Vec::new();
        for kind in [WorkloadKind::Bfs, WorkloadKind::Cc] {
            points.push(Sweep::point(
                format!("smoke/{kind}/software"),
                BenchRun::software_default(kind, 2),
                p,
            ));
            points.push(Sweep::point(
                format!("smoke/{kind}/minnow"),
                BenchRun::minnow(kind, 2),
                p,
            ));
            points.push(Sweep::point(
                format!("smoke/{kind}/wdp"),
                BenchRun::new(
                    kind,
                    2,
                    SchedSpec::Minnow {
                        wdp_credits: Some(16),
                    },
                ),
                p,
            ));
        }
        Sweep {
            name: "smoke".into(),
            points,
        }
    }

    /// The points a configuration selects, in enumeration order.
    pub fn selected<'a>(&'a self, cfg: &SweepConfig) -> Vec<&'a SweepPoint> {
        self.points.iter().filter(|pt| cfg.matches(&pt.id)).collect()
    }
}

/// Execution configuration for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads in the sweep pool (simulation points in flight at
    /// once; distinct from each point's simulated core count).
    pub threads: usize,
    /// Substring filter over point ids (`None` selects everything).
    pub filter: Option<String>,
    /// Capture a structured event trace per point. Never changes
    /// simulation results or the JSONL artifact — traces are exported
    /// separately (see [`SweepResult::chrome_trace_json`]).
    pub trace: bool,
    /// Host threads simulating each *single* point (bound-weave mode when
    /// `>= 2`; distinct from [`SweepConfig::threads`], the across-point
    /// pool). Simulated results — JSONL, breakdowns, traces — are
    /// byte-identical for every value; only host wall-clock changes.
    /// Traced points always run serially regardless of this setting.
    pub point_threads: usize,
    /// Run every point on this external graph instead of its generated
    /// input (see [`BenchRun::input`]). Like `point_threads`, this is an
    /// execution-level override: it is not serialized into the per-point
    /// JSONL records, so sweeps over the *same graph* delivered through
    /// different paths (text file, image, mmap) stay byte-identical.
    pub input: Option<InputSpec>,
    /// Skip the adaptive serial fallback: every point with
    /// `point_threads >= 2` runs the sharded weave even when the workload
    /// is tiny or the host is narrow. Determinism suites and CI set this
    /// so byte-identity checks actually exercise the sharded path.
    pub pin_point_threads: bool,
    /// Explicit front-shard count within each point's `point_threads`
    /// budget (see `minnow_runtime::sim_exec::ExecConfig::front_shards`).
    /// `None` lets the planner split the budget. Outcome-neutral: every
    /// artifact is byte-identical for every value.
    pub front_shards: Option<usize>,
    /// Speculative shard overlap toggle (see
    /// `minnow_runtime::sim_exec::ExecConfig::speculate`). `None` defers
    /// to `MINNOW_SPECULATE` and the on-by-default. Outcome-neutral like
    /// every other host-threading knob.
    pub speculate: Option<bool>,
}

impl SweepConfig {
    /// One point at a time, no filter.
    pub fn serial() -> Self {
        SweepConfig {
            threads: 1,
            filter: None,
            trace: false,
            point_threads: 1,
            input: None,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
        }
    }

    /// Pool width from `MINNOW_SWEEP_THREADS` (default: available
    /// parallelism), no filter.
    pub fn from_env() -> Self {
        SweepConfig {
            threads: crate::sweep_threads(),
            filter: None,
            trace: false,
            point_threads: 1,
            input: None,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
        }
    }

    /// Same configuration with a different per-point thread count.
    pub fn with_point_threads(mut self, point_threads: usize) -> Self {
        self.point_threads = point_threads;
        self
    }

    /// Same configuration with the adaptive serial fallback disabled
    /// (see [`SweepConfig::pin_point_threads`]).
    pub fn with_pinned_point_threads(mut self) -> Self {
        self.pin_point_threads = true;
        self
    }

    /// Same configuration with an explicit front-shard count (see
    /// [`SweepConfig::front_shards`]).
    pub fn with_front_shards(mut self, front: usize) -> Self {
        self.front_shards = Some(front);
        self
    }

    /// Same configuration with the speculation toggle pinned (see
    /// [`SweepConfig::speculate`]).
    pub fn with_speculate(mut self, on: bool) -> Self {
        self.speculate = Some(on);
        self
    }

    /// Same configuration with a different pool width.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same configuration with a substring filter.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Same configuration with per-point trace capture enabled.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Same configuration with every point running on an external graph.
    pub fn with_input(mut self, input: InputSpec) -> Self {
        self.input = Some(input);
        self
    }

    /// Whether a point id passes the filter.
    pub fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// One executed point: its configuration and the simulator's report.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The point's stable identifier.
    pub id: String,
    /// The configuration that produced the report.
    pub run: BenchRun,
    /// The simulation report.
    pub report: RunReport,
    /// Captured trace events (timestamp-sorted), when the sweep ran
    /// with [`SweepConfig::trace`].
    pub trace: Option<Vec<TraceEvent>>,
    /// Host wall-clock time this point took to simulate (volatile: never
    /// part of the JSONL record, only of [`SweepResult::bench_json`]).
    pub wall: Duration,
}

/// Host-side statistics for ingesting/loading one external input, carried
/// into [`SweepResult::bench_json`] (volatile by nature, like everything
/// else in the bench document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestStats {
    /// Input path as given on the command line.
    pub path: String,
    /// Load mode label (`auto`/`mmap`/`read`) or the source format label.
    pub mode: String,
    /// Node count of the loaded graph.
    pub nodes: u64,
    /// Edge count of the loaded graph.
    pub edges: u64,
    /// Input file size in bytes.
    pub bytes: u64,
    /// Host wall-clock microseconds spent loading.
    pub wall_us: u64,
}

impl IngestStats {
    /// Serializes the stats as a JSON object, including the derived
    /// edges-per-second ingestion throughput.
    pub fn json(&self) -> String {
        let secs = self.wall_us as f64 / 1e6;
        let rate = if secs > 0.0 {
            self.edges as f64 / secs
        } else {
            0.0
        };
        JsonObject::new()
            .str("path", &self.path)
            .str("mode", &self.mode)
            .u64("nodes", self.nodes)
            .u64("edges", self.edges)
            .u64("bytes", self.bytes)
            .u64("wall_us", self.wall_us)
            .f64("edges_per_sec", rate)
            .finish()
    }
}

/// All results of one sweep execution, in enumeration order.
#[derive(Debug)]
pub struct SweepResult {
    /// Sweep name.
    pub sweep: String,
    /// External-input load statistics, when the sweep ran on a file
    /// (set by the driver after pre-loading; `None` for generated
    /// inputs). Appears only in [`SweepResult::bench_json`].
    pub ingest: Option<IngestStats>,
    /// Per-point results, ordered as the sweep enumerated them.
    pub points: Vec<PointResult>,
    /// Pool threads actually used (volatile; not part of any record).
    pub pool_threads: usize,
    /// Per-point simulation threads used (volatile; not part of any
    /// record — simulated results are identical for every value).
    pub point_threads: usize,
    /// Requested front-shard override, echoed into the bench document
    /// header so multi-line baseline files stay self-describing even on
    /// hosts where the adaptive planner fell back to the serial path
    /// (volatile, like `point_threads`).
    pub front_shards: Option<usize>,
    /// Requested speculation toggle, echoed into the bench document
    /// header (volatile, like `front_shards`).
    pub speculate: Option<bool>,
    /// Wall-clock duration of the whole sweep (volatile).
    pub wall: Duration,
    /// Selected points left unexecuted because [`SweepHooks::cancel`]
    /// fired. Zero for an uncancelled sweep; when non-zero, `points`
    /// holds only the completed subset (still in enumeration order).
    pub skipped: usize,
}

/// Observation and control hooks for [`run_sweep_observed`]: callers that
/// drive sweeps programmatically (the explorer) can account per-point
/// cost as points retire and stop a sweep between points.
#[derive(Default)]
pub struct SweepHooks<'a> {
    /// Cooperative cancellation: workers check this before *starting*
    /// each point; a point already simulating always completes. The
    /// completed subset is whichever points had started when the flag
    /// flipped — completion order is pool-dependent, so cancelled
    /// sweeps trade the byte-identity contract for early exit.
    pub cancel: Option<&'a AtomicBool>,
    /// Called once per completed point, from the worker that simulated
    /// it (concurrently under a parallel pool). Gets the point's cost:
    /// its full [`PointResult`], including simulated task count and
    /// host wall time.
    pub on_point: Option<&'a (dyn Fn(&PointResult) + Sync)>,
}

/// Runs every selected point of a sweep across a work-stealing pool.
///
/// Workers pull from a global [`Injector`] (batch-refilling their local
/// FIFO queues) and steal from each other once the injector drains; a
/// worker exits when every queue is empty. No tasks are spawned
/// dynamically, so this termination check cannot lose work: a task is
/// only ever *moved* between queues while the thief holds it.
pub fn run_sweep(sweep: &Sweep, cfg: &SweepConfig) -> SweepResult {
    run_sweep_observed(sweep, cfg, &SweepHooks::default())
}

/// [`run_sweep`] with [`SweepHooks`]: per-point cost observation and
/// cooperative cancellation. With default hooks the behaviour (and the
/// determinism contract) is exactly [`run_sweep`]'s.
pub fn run_sweep_observed(sweep: &Sweep, cfg: &SweepConfig, hooks: &SweepHooks) -> SweepResult {
    let t0 = Instant::now();
    let selected = sweep.selected(cfg);
    let pool = cfg.threads.max(1).min(selected.len().max(1));

    let injector: Injector<usize> = Injector::new();
    for slot in 0..selected.len() {
        injector.push(slot);
    }
    let slots: Mutex<Vec<Option<PointResult>>> = Mutex::new(vec![None; selected.len()]);

    let workers: Vec<Worker<usize>> = (0..pool).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();

    crossbeam::thread::scope(|s| {
        for local in workers {
            let (selected, slots, injector, stealers) = (&selected, &slots, &injector, &stealers);
            s.spawn(move |_| {
                while let Some(slot) = next_task(&local, injector, stealers) {
                    if hooks.cancel.is_some_and(|c| c.load(Ordering::Acquire)) {
                        // Leave the slot unexecuted; keep draining the
                        // queues so every worker terminates promptly.
                        continue;
                    }
                    let point = selected[slot];
                    let mut run = point.run.clone();
                    run.point_threads = cfg.point_threads.max(1);
                    run.pin_point_threads = cfg.pin_point_threads;
                    run.front_shards = cfg.front_shards;
                    run.speculate = cfg.speculate;
                    if cfg.input.is_some() {
                        run.input = cfg.input.clone();
                    }
                    let p0 = Instant::now();
                    let (report, trace) = if cfg.trace {
                        // Each point gets a private buffer, so pool
                        // interleaving never mixes event streams.
                        let tracer = Tracer::enabled();
                        let report = run.execute_traced(&tracer);
                        (report, Some(tracer.take_events()))
                    } else {
                        (run.execute(), None)
                    };
                    let result = PointResult {
                        id: point.id.clone(),
                        run: point.run.clone(),
                        report,
                        trace,
                        wall: p0.elapsed(),
                    };
                    if let Some(observe) = hooks.on_point {
                        observe(&result);
                    }
                    slots.lock().unwrap_or_else(|e| e.into_inner())[slot] = Some(result);
                }
            });
        }
    })
    .expect("sweep pool panicked");

    let filled: Vec<Option<PointResult>> = slots.into_inner().unwrap_or_else(|e| e.into_inner());
    let cancelled = hooks.cancel.is_some_and(|c| c.load(Ordering::Acquire));
    let skipped = filled.iter().filter(|r| r.is_none()).count();
    assert!(
        cancelled || skipped == 0,
        "every selected point must have run in an uncancelled sweep"
    );
    let points = filled.into_iter().flatten().collect();
    SweepResult {
        sweep: sweep.name.clone(),
        ingest: None,
        points,
        pool_threads: pool,
        point_threads: cfg.point_threads.max(1),
        front_shards: cfg.front_shards,
        speculate: cfg.speculate,
        wall: t0.elapsed(),
        skipped,
    }
}

/// Finds the next task: local queue, then the injector (batch refill),
/// then other workers' queues. `None` means everything was empty.
fn next_task(local: &Worker<usize>, injector: &Injector<usize>, stealers: &[Stealer<usize>]) -> Option<usize> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        let mut retry = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for stealer in stealers {
            match stealer.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

impl SweepResult {
    /// Looks up a point result by id.
    pub fn get(&self, id: &str) -> Option<&PointResult> {
        self.points.iter().find(|p| p.id == id)
    }

    /// Looks up a report by id, panicking with the id on a miss (sweep
    /// consumers enumerate the same ids the sweep did, so a miss is a
    /// bug, not an input condition).
    pub fn report(&self, id: &str) -> &RunReport {
        &self
            .get(id)
            .unwrap_or_else(|| panic!("sweep {} has no point {id}", self.sweep))
            .report
    }

    /// Serializes every point as one JSON object per line, in
    /// enumeration order. Byte-identical across pool widths and runs:
    /// contains no timestamps, wall-clock durations, or thread identity.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for point in &self.points {
            out.push_str(&point_record(&self.sweep, point));
            out.push('\n');
        }
        out
    }

    /// A summary document: stable aggregates over the sweep, plus a
    /// `volatile` section quarantining everything that may legitimately
    /// differ between runs (pool width, wall time).
    pub fn summary_json(&self) -> String {
        let timed_out = self.points.iter().filter(|p| p.report.timed_out).count();
        let tasks: u64 = self.points.iter().map(|p| p.report.tasks).sum();
        let instructions: u64 = self.points.iter().map(|p| p.report.instructions).sum();
        let sim_cycles: u64 = self.points.iter().map(|p| p.report.makespan).sum();
        let volatile = JsonObject::new()
            .u64("pool_threads", self.pool_threads as u64)
            .u64("wall_ms", self.wall.as_millis() as u64)
            .finish();
        JsonObject::new()
            .str("sweep", &self.sweep)
            .u64("points", self.points.len() as u64)
            .u64("timed_out", timed_out as u64)
            .u64("total_tasks", tasks)
            .u64("total_instructions", instructions)
            .u64("total_sim_cycles", sim_cycles)
            .raw("volatile", &volatile)
            .finish()
    }

    /// Serializes every point's *closed* cycle accounting as one JSON
    /// object per line (separate from [`SweepResult::jsonl`], whose
    /// byte layout is frozen by the determinism contract). Each record
    /// carries the across-core total of every [`CycleBin`] plus the
    /// makespan and core count; bins × makespan close exactly:
    /// `sum(bins) == makespan * cores`.
    pub fn breakdown_jsonl(&self) -> String {
        let mut out = String::new();
        for point in &self.points {
            let report = crate::eval::EvalReport::from_report(&point.report);
            out.push_str(&crate::eval::breakdown_record_json(
                &self.sweep,
                &point.id,
                &report,
            ));
            out.push('\n');
        }
        out
    }

    /// Renders the Fig. 5-style breakdown table: for every point, the
    /// fraction of total core-cycles (makespan × cores) spent in each
    /// closed accounting bin. Rows sum to 100% by construction.
    pub fn breakdown_table(&self) -> String {
        let id_width = self
            .points
            .iter()
            .map(|p| p.id.len())
            .max()
            .unwrap_or(8)
            .max("point".len());
        let mut out = format!("{:<id_width$}", "point");
        for bin in CycleBin::ALL {
            out.push_str(&format!(" {:>8}", bin.name()));
        }
        out.push_str(&format!(" {:>12}\n", "makespan"));
        for point in &self.points {
            let acct = &point.report.accounting;
            let denom = (point.report.makespan * acct.cores() as u64).max(1) as f64;
            out.push_str(&format!("{:<id_width$}", point.id));
            for bin in CycleBin::ALL {
                let frac = acct.bin_total(bin) as f64 / denom;
                out.push_str(&format!(" {:>7.1}%", frac * 100.0));
            }
            out.push_str(&format!(" {:>12}\n", point.report.makespan));
        }
        out
    }

    /// The host wall-clock benchmark document (`BENCH_<sweep>.json`):
    /// per-point simulation wall time plus derived simulator-throughput
    /// rates (simulated tasks and memory accesses retired per host
    /// second). Everything here is *volatile* by nature — it measures the
    /// machine running the simulator, not the simulated machine — which
    /// is why it lives in its own document and never touches the
    /// byte-frozen JSONL artifact.
    pub fn bench_json(&self) -> String {
        let rate = |n: u64, wall: Duration| {
            let secs = wall.as_secs_f64();
            if secs > 0.0 {
                n as f64 / secs
            } else {
                0.0
            }
        };
        let points = crate::json::array(self.points.iter().map(|p| {
            let hold = crate::json::array(
                p.report.front_hold_us.iter().map(|us| us.to_string()),
            );
            let wait = crate::json::array(
                p.report.front_wait_us.iter().map(|us| us.to_string()),
            );
            JsonObject::new()
                .str("id", &p.id)
                .u64("pt_used", p.report.point_threads_used as u64)
                .u64("pt_front_used", p.report.front_threads_used as u64)
                .u64("pt_lane_used", p.report.lane_threads_used as u64)
                .u64("wall_us", p.wall.as_micros() as u64)
                .u64("spec_attempts", p.report.spec_attempts)
                .u64("spec_commits", p.report.spec_commits)
                .u64("spec_rollbacks", p.report.spec_rollbacks)
                .raw("front_hold_us", &hold)
                .raw("front_wait_us", &wait)
                .u64("tasks", p.report.tasks)
                .u64("mem_accesses", p.report.mem_accesses)
                .u64("makespan", p.report.makespan)
                .f64("tasks_per_sec", rate(p.report.tasks, p.wall))
                .f64("accesses_per_sec", rate(p.report.mem_accesses, p.wall))
                .finish()
        }));
        let tasks: u64 = self.points.iter().map(|p| p.report.tasks).sum();
        let accesses: u64 = self.points.iter().map(|p| p.report.mem_accesses).sum();
        let mut obj = JsonObject::new()
            .str("schema", BENCH_SCHEMA)
            .str("sweep", &self.sweep);
        if let Some(ingest) = &self.ingest {
            obj = obj.raw("ingest", &ingest.json());
        }
        obj = obj
            .u64("pool_threads", self.pool_threads as u64)
            .u64("point_threads", self.point_threads as u64);
        if let Some(front) = self.front_shards {
            obj = obj.u64("front_shards", front as u64);
        }
        if let Some(spec) = self.speculate {
            obj = obj.u64("speculate", spec as u64);
        }
        obj.u64("wall_ms", self.wall.as_millis() as u64)
            .u64("total_tasks", tasks)
            .u64("total_mem_accesses", accesses)
            .f64("tasks_per_sec", {
                let secs = self.wall.as_secs_f64();
                if secs > 0.0 {
                    tasks as f64 / secs
                } else {
                    0.0
                }
            })
            .f64("accesses_per_sec", {
                let secs = self.wall.as_secs_f64();
                if secs > 0.0 {
                    accesses as f64 / secs
                } else {
                    0.0
                }
            })
            .raw("points", &points)
            .finish()
    }

    /// Merges every captured point trace into one Chrome `trace_event`
    /// JSON document: each point becomes a process (pid = enumeration
    /// index, named by a `process_name` metadata event), each simulated
    /// core a thread. Returns `None` when the sweep ran without
    /// [`SweepConfig::trace`]. Deterministic for a fixed sweep and seed.
    pub fn chrome_trace_json(&self) -> Option<String> {
        if self.points.iter().all(|p| p.trace.is_none()) {
            return None;
        }
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (pid, point) in self.points.iter().enumerate() {
            let Some(events) = &point.trace else { continue };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&point.id)
            ));
            for ev in events {
                out.push(',');
                out.push_str(&ev.to_chrome_json(pid as u64));
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        Some(out)
    }

    /// Writes `<sweep>.jsonl` and `<sweep>.summary.json` under `dir`,
    /// returning their paths. Also writes the closed cycle-accounting
    /// records (`<sweep>.breakdown.jsonl`) and Fig. 5-style table
    /// (`<sweep>.breakdown.txt`) — new files alongside the frozen ones.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or writes.
    pub fn write_artifacts(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let jsonl = dir.join(format!("{}.jsonl", self.sweep));
        let summary = dir.join(format!("{}.summary.json", self.sweep));
        std::fs::write(&jsonl, self.jsonl())?;
        std::fs::write(&summary, self.summary_json() + "\n")?;
        std::fs::write(
            dir.join(format!("{}.breakdown.jsonl", self.sweep)),
            self.breakdown_jsonl(),
        )?;
        std::fs::write(
            dir.join(format!("{}.breakdown.txt", self.sweep)),
            self.breakdown_table(),
        )?;
        Ok((jsonl, summary))
    }
}

/// Serializes one executed point as a JSON object (no trailing newline);
/// the byte layout lives in [`crate::eval::point_record_json`], shared
/// with the daemon path.
fn point_record(sweep: &str, point: &PointResult) -> String {
    let report = crate::eval::EvalReport::from_report(&point.report);
    crate::eval::point_record_json(sweep, &point.id, &point.run, &report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny_params() -> SweepParams {
        SweepParams {
            scale: 0.02,
            seed: 7,
            headline_threads: 4,
            max_threads: 4,
        }
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(42, "SSSP"), derive_seed(42, "SSSP"));
        assert_ne!(derive_seed(42, "SSSP"), derive_seed(42, "BFS"));
        assert_ne!(derive_seed(42, "SSSP"), derive_seed(43, "SSSP"));
    }

    #[test]
    fn every_named_sweep_enumerates_unique_ids() {
        let p = tiny_params();
        for name in Sweep::NAMES {
            let sweep = Sweep::named(name, &p).unwrap();
            assert_eq!(sweep.name, name);
            assert!(!sweep.points.is_empty(), "{name} enumerated nothing");
            let ids: HashSet<&str> = sweep.points.iter().map(|pt| pt.id.as_str()).collect();
            assert_eq!(ids.len(), sweep.points.len(), "{name} has duplicate ids");
        }
        assert!(Sweep::named("nope", &p).is_none());
    }

    #[test]
    fn workload_configs_share_one_input_seed() {
        let sweep = Sweep::fig16(&tiny_params());
        let sssp_seeds: HashSet<u64> = sweep
            .points
            .iter()
            .filter(|pt| pt.id.contains("SSSP"))
            .map(|pt| pt.run.seed)
            .collect();
        assert_eq!(sssp_seeds.len(), 1, "configs of one workload share a graph");
        let bfs_seed = sweep
            .points
            .iter()
            .find(|pt| pt.id.contains("/BFS/"))
            .unwrap()
            .run
            .seed;
        assert!(!sssp_seeds.contains(&bfs_seed), "workloads get distinct graphs");
    }

    #[test]
    fn filter_selects_matching_points_in_order() {
        let sweep = Sweep::smoke(&tiny_params());
        let cfg = SweepConfig::serial().with_filter("/BFS/");
        let picked = sweep.selected(&cfg);
        assert!(!picked.is_empty() && picked.len() < sweep.points.len());
        assert!(picked.iter().all(|pt| pt.id.contains("/BFS/")));
    }

    #[test]
    fn smoke_sweep_runs_and_serializes() {
        let sweep = Sweep::smoke(&tiny_params());
        let result = run_sweep(&sweep, &SweepConfig::serial());
        assert_eq!(result.points.len(), sweep.points.len());
        let jsonl = result.jsonl();
        assert_eq!(jsonl.lines().count(), sweep.points.len());
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"sweep\":\"smoke\",\"id\":\"smoke/"));
            assert!(line.ends_with('}'));
        }
        assert!(result.report("smoke/BFS/minnow").tasks > 0);
        let summary = result.summary_json();
        assert!(summary.contains("\"points\":6"));
        assert!(summary.contains("\"volatile\":{\"pool_threads\":1"));
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        let sweep = Sweep::smoke(&tiny_params());
        let serial = run_sweep(&sweep, &SweepConfig::serial());
        let parallel = run_sweep(&sweep, &SweepConfig::serial().with_threads(4));
        assert_eq!(serial.jsonl(), parallel.jsonl());
    }

    #[test]
    fn hooks_observe_every_point_and_cancel_stops_early() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let sweep = Sweep::smoke(&tiny_params());

        // Cost observation: on_point fires once per point and sees the
        // same task totals the results report.
        let observed_tasks = AtomicU64::new(0);
        let observed_points = AtomicU64::new(0);
        let observe = |p: &PointResult| {
            observed_tasks.fetch_add(p.report.tasks, Ordering::Relaxed);
            observed_points.fetch_add(1, Ordering::Relaxed);
        };
        let hooks = SweepHooks {
            cancel: None,
            on_point: Some(&observe),
        };
        let result = run_sweep_observed(&sweep, &SweepConfig::serial(), &hooks);
        assert_eq!(result.skipped, 0);
        assert_eq!(observed_points.load(Ordering::Relaxed), result.points.len() as u64);
        let total: u64 = result.points.iter().map(|p| p.report.tasks).sum();
        assert_eq!(observed_tasks.load(Ordering::Relaxed), total);

        // Cancellation after the second point: the remaining points are
        // skipped, and the completed subset keeps enumeration order.
        let cancel = AtomicBool::new(false);
        let seen = AtomicU64::new(0);
        let trip = |_: &PointResult| {
            if seen.fetch_add(1, Ordering::Relaxed) + 1 >= 2 {
                cancel.store(true, Ordering::Release);
            }
        };
        let hooks = SweepHooks {
            cancel: Some(&cancel),
            on_point: Some(&trip),
        };
        let partial = run_sweep_observed(&sweep, &SweepConfig::serial(), &hooks);
        assert_eq!(partial.points.len(), 2);
        assert_eq!(partial.skipped, sweep.points.len() - 2);
        let ids: Vec<&str> = partial.points.iter().map(|p| p.id.as_str()).collect();
        let expected: Vec<&str> = sweep.points[..2].iter().map(|p| p.id.as_str()).collect();
        assert_eq!(ids, expected, "serial pool completes a prefix");
    }
}

//! Aligned-table printing and CSV output for experiment results.

use std::io::Write as _;
use std::path::PathBuf;

/// A simple column-aligned results table that also lands in a CSV.
#[derive(Debug)]
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; `name` becomes the CSV file stem.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the aligned table to stdout and writes the CSV; returns the
    /// CSV path when writing succeeded.
    pub fn finish(&self) -> Option<PathBuf> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.header));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", line(row));
        }

        let dir = PathBuf::from("target/minnow-bench");
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = std::fs::File::create(&path).ok()?;
        writeln!(f, "{}", self.header.join(",")).ok()?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).ok()?;
        }
        println!("\n[csv] {}", path.display());
        Some(path)
    }
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_and_writes_csv() {
        let mut t = Table::new("unit_test_table", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.finish().expect("csv written");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("a,bb"));
        assert!(content.contains("1,2"));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(2.0), "2.00x");
        assert_eq!(pct(0.5), "50.0%");
    }
}

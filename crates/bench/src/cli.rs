//! Shared command-line helpers for the `minnow-*` binaries.
//!
//! Every binary in this repository hand-rolls its flag loop (the build
//! environment has no argument-parsing crate); the loops themselves are
//! tiny, but the supporting plumbing — pulling a flag's value, parsing
//! it with a readable error, writing an artifact with its parent
//! directories — was duplicated verbatim between `minnow-sweep` and
//! `minnow-run`. This module is that plumbing, shared by both and by
//! `minnow-explore`.

use std::str::FromStr;

/// A stream of command-line arguments (everything after the program
/// name) with flag-value helpers that produce uniform error messages.
#[derive(Debug)]
pub struct ArgStream {
    args: std::vec::IntoIter<String>,
}

impl ArgStream {
    /// The process's arguments, program name skipped.
    pub fn from_env() -> Self {
        ArgStream {
            args: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
        }
    }

    /// A stream over explicit arguments (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        ArgStream {
            args: args.into_iter(),
        }
    }

    /// The next raw argument, if any.
    #[allow(clippy::should_implement_trait)] // flag loops call it directly
    pub fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    /// The value following a flag, or a uniform "requires a value" error.
    ///
    /// # Errors
    ///
    /// Returns an error naming `flag` when the stream is exhausted.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.args
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))
    }

    /// The value following a flag, parsed; errors name the flag and echo
    /// the offending text.
    ///
    /// # Errors
    ///
    /// Returns an error when the value is missing or fails to parse.
    pub fn parse<T>(&mut self, flag: &str) -> Result<T, String>
    where
        T: FromStr,
        T::Err: std::fmt::Display,
    {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|e| format!("{flag}: invalid value `{raw}`: {e}"))
    }

    /// Like [`ArgStream::parse`], additionally rejecting values below
    /// `min` (flag loops use this for `--threads`-style counts).
    ///
    /// # Errors
    ///
    /// Returns an error when the value is missing, malformed, or `< min`.
    pub fn parse_at_least(&mut self, flag: &str, min: u64) -> Result<u64, String> {
        let v: u64 = self.parse(flag)?;
        if v < min {
            return Err(format!("{flag} must be at least {min}"));
        }
        Ok(v)
    }
}

/// Writes `doc` to `path`, creating parent directories as needed (the
/// artifact-writing idiom every binary shares).
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_with_parents(path: &str, doc: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(args: &[&str]) -> ArgStream {
        ArgStream::from_vec(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn value_and_parse_consume_in_order() {
        let mut s = stream(&["8", "0.25", "hello"]);
        assert_eq!(s.parse::<usize>("--threads").unwrap(), 8);
        assert_eq!(s.parse::<f64>("--scale").unwrap(), 0.25);
        assert_eq!(s.value("--out").unwrap(), "hello");
        assert_eq!(s.value("--seed").unwrap_err(), "--seed requires a value");
    }

    #[test]
    fn parse_errors_name_the_flag_and_value() {
        let mut s = stream(&["abc"]);
        let err = s.parse::<u64>("--seed").unwrap_err();
        assert!(err.starts_with("--seed: invalid value `abc`"), "{err}");
    }

    #[test]
    fn parse_at_least_enforces_the_floor() {
        let mut s = stream(&["0", "3"]);
        assert!(s.parse_at_least("--threads", 1).is_err());
        assert_eq!(s.parse_at_least("--threads", 1).unwrap(), 3);
    }

    #[test]
    fn write_with_parents_creates_directories() {
        let dir = std::env::temp_dir().join(format!("minnow-cli-test-{}", std::process::id()));
        let path = dir.join("a/b/doc.json");
        write_with_parents(path.to_str().unwrap(), "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Shared command-line helpers for the `minnow-*` binaries.
//!
//! Every binary in this repository hand-rolls its flag loop (the build
//! environment has no argument-parsing crate); the loops themselves are
//! tiny, but the supporting plumbing — pulling a flag's value, parsing
//! it with a readable error, writing an artifact with its parent
//! directories — was duplicated verbatim between `minnow-sweep` and
//! `minnow-run`. This module is that plumbing, shared by both and by
//! `minnow-explore`.

use std::str::FromStr;

/// A stream of command-line arguments (everything after the program
/// name) with flag-value helpers that produce uniform error messages.
#[derive(Debug)]
pub struct ArgStream {
    args: std::vec::IntoIter<String>,
}

impl ArgStream {
    /// The process's arguments, program name skipped.
    pub fn from_env() -> Self {
        ArgStream {
            args: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
        }
    }

    /// A stream over explicit arguments (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        ArgStream {
            args: args.into_iter(),
        }
    }

    /// The next raw argument, if any.
    #[allow(clippy::should_implement_trait)] // flag loops call it directly
    pub fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    /// The value following a flag, or a uniform "requires a value" error.
    ///
    /// # Errors
    ///
    /// Returns an error naming `flag` when the stream is exhausted.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.args
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))
    }

    /// The value following a flag, parsed; errors name the flag and echo
    /// the offending text.
    ///
    /// # Errors
    ///
    /// Returns an error when the value is missing or fails to parse.
    pub fn parse<T>(&mut self, flag: &str) -> Result<T, String>
    where
        T: FromStr,
        T::Err: std::fmt::Display,
    {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|e| format!("{flag}: invalid value `{raw}`: {e}"))
    }

    /// Like [`ArgStream::parse`], additionally rejecting values below
    /// `min` (flag loops use this for `--threads`-style counts).
    ///
    /// # Errors
    ///
    /// Returns an error when the value is missing, malformed, or `< min`.
    pub fn parse_at_least(&mut self, flag: &str, min: u64) -> Result<u64, String> {
        let v: u64 = self.parse(flag)?;
        if v < min {
            return Err(format!("{flag} must be at least {min}"));
        }
        Ok(v)
    }
}

/// Validates the `--point-threads` / `--front-shards` /
/// `--pin-point-threads` combination at parse time, so bad budgets fail
/// with a flag-level message instead of deep inside a worker thread.
///
/// Rules:
/// * `--front-shards` requires `--point-threads >= 2` — with a budget of
///   one host thread there is nothing to split;
/// * `--front-shards` must fit inside the budget (`front <= point_threads`);
/// * `--pin-point-threads` with more threads than the host has cores is
///   legal (determinism suites do it on purpose) but earns a warning,
///   returned so the caller can print it to stderr.
///
/// # Errors
///
/// Returns a flag-style message (same shape as [`ArgStream`] errors) for
/// the hard failures above.
pub fn validate_point_budget(
    point_threads: Option<usize>,
    front_shards: Option<usize>,
    pinned: bool,
) -> Result<Option<String>, String> {
    if let Some(front) = front_shards {
        if front == 0 {
            return Err("--front-shards must be at least 1".into());
        }
        let budget = point_threads.unwrap_or(1);
        if budget < 2 {
            return Err(
                "--front-shards requires --point-threads >= 2 (nothing to split)".into(),
            );
        }
        if front > budget {
            return Err(format!(
                "--front-shards {front} exceeds the --point-threads budget of {budget}"
            ));
        }
    }
    if pinned {
        let budget = point_threads.unwrap_or(1);
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if budget > host {
            return Ok(Some(format!(
                "warning: --pin-point-threads with {budget} threads oversubscribes \
                 this {host}-core host; simulated outcomes are unaffected, but \
                 wall-clock will suffer"
            )));
        }
    }
    Ok(None)
}

/// Writes `doc` to `path`, creating parent directories as needed (the
/// artifact-writing idiom every binary shares).
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_with_parents(path: &str, doc: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(args: &[&str]) -> ArgStream {
        ArgStream::from_vec(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn value_and_parse_consume_in_order() {
        let mut s = stream(&["8", "0.25", "hello"]);
        assert_eq!(s.parse::<usize>("--threads").unwrap(), 8);
        assert_eq!(s.parse::<f64>("--scale").unwrap(), 0.25);
        assert_eq!(s.value("--out").unwrap(), "hello");
        assert_eq!(s.value("--seed").unwrap_err(), "--seed requires a value");
    }

    #[test]
    fn parse_errors_name_the_flag_and_value() {
        let mut s = stream(&["abc"]);
        let err = s.parse::<u64>("--seed").unwrap_err();
        assert!(err.starts_with("--seed: invalid value `abc`"), "{err}");
    }

    #[test]
    fn parse_at_least_enforces_the_floor() {
        let mut s = stream(&["0", "3"]);
        assert!(s.parse_at_least("--threads", 1).is_err());
        assert_eq!(s.parse_at_least("--threads", 1).unwrap(), 3);
    }

    #[test]
    fn front_shards_require_a_splittable_budget() {
        // No front override: always fine.
        assert_eq!(validate_point_budget(None, None, false), Ok(None));
        assert_eq!(validate_point_budget(Some(4), None, false), Ok(None));
        // Zero shards is rejected outright.
        assert!(validate_point_budget(Some(4), Some(0), false).is_err());
        // A budget of one host thread cannot be split.
        assert!(validate_point_budget(None, Some(2), false).is_err());
        assert!(validate_point_budget(Some(1), Some(1), false).is_err());
        // The override must fit in the budget.
        let err = validate_point_budget(Some(4), Some(8), false).unwrap_err();
        assert!(err.contains("--front-shards 8"), "{err}");
        assert!(err.contains("budget of 4"), "{err}");
        // In-budget splits pass.
        assert_eq!(validate_point_budget(Some(4), Some(2), false), Ok(None));
        assert_eq!(validate_point_budget(Some(4), Some(4), false), Ok(None));
    }

    #[test]
    fn pinning_past_the_host_warns_but_passes() {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Oversubscribed pin: legal, warned.
        let warn = validate_point_budget(Some(host * 4), None, true).unwrap();
        let text = warn.expect("oversubscription must warn");
        assert!(text.contains("warning"), "{text}");
        assert!(text.contains("oversubscribes"), "{text}");
        // Unpinned oversubscription stays silent (the adaptive planner
        // clamps it), as does a pin within the host's budget.
        assert_eq!(validate_point_budget(Some(host * 4), None, false), Ok(None));
        assert_eq!(validate_point_budget(Some(1), None, true), Ok(None));
    }

    #[test]
    fn write_with_parents_creates_directories() {
        let dir = std::env::temp_dir().join(format!("minnow-cli-test-{}", std::process::id()));
        let path = dir.join("a/b/doc.json");
        write_with_parents(path.to_str().unwrap(), "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

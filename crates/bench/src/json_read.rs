//! A minimal JSON reader for the workspace's own artifacts.
//!
//! The build environment has no serde; journals, frontier documents,
//! and the serving protocol are written by this workspace's fixed-order
//! serializer ([`crate::json`]), but readers must survive *any*
//! well-formed reordering plus truncated trailing lines from a killed
//! process, so reading them back deserves a real (if small)
//! recursive-descent parser rather than substring scans. Shared by the
//! explore journal, the `minnow-serve` wire protocol, and the schema
//! tests.
//!
//! Unsigned integer tokens parse to [`Json::Int`] and stay **exact**
//! over the full `u64` range — derived point seeds are genuine 64-bit
//! values, and routing them through an `f64` would silently round
//! everything above 2^53. Every other number is an [`Json::Number`]
//! `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object; insertion order preserved, lookups by key.
    Object(BTreeMap<String, Json>),
    /// Array.
    Array(Vec<Json>),
    /// String.
    String(String),
    /// Unsigned integer token (no sign, fraction, or exponent): exact
    /// over the full `u64` range.
    Int(u64),
    /// Any other number (all remaining JSON numbers are f64 here).
    Number(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset error message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes after JSON value at {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number (integers convert, with
    /// the usual precision loss above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a `u64`: exact for [`Json::Int`] tokens, lossy-safe
    /// for integral [`Json::Number`]s (e.g. `3.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Required typed field accessors for record parsing; errors name
    /// the missing/mistyped key.
    ///
    /// # Errors
    ///
    /// Returns an error naming `key` when absent or not a string.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }

    /// See [`Json::str_field`].
    ///
    /// # Errors
    ///
    /// Returns an error naming `key` when absent or not a u64.
    pub fn u64_field(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    /// See [`Json::str_field`].
    ///
    /// # Errors
    ///
    /// Returns an error naming `key` when absent or not a number.
    pub fn f64_field(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-number field `{key}`"))
    }

    /// See [`Json::str_field`].
    ///
    /// # Errors
    ///
    /// Returns an error naming `key` when absent or not a boolean.
    pub fn bool_field(&self, key: &str) -> Result<bool, String> {
        self.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("missing or non-boolean field `{key}`"))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, String> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("unexpected end of input at {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.pos, self.bytes[self.pos] as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if !self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            return Err(format!("bad literal at byte {}", self.pos));
        }
        self.pos += lit.len();
        Ok(value)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.insert(key, self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    let start = self.pos;
                    while !matches!(self.peek()?, b'"' | b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| format!("invalid utf8: {e}"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = text.parse() {
                return Ok(Json::Int(n));
            }
        }
        text.parse()
            .map(Json::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_explorers_own_output_shapes() {
        let doc = Json::parse(
            "{\"schema\":\"minnow-explore-journal/v1\",\"seq\":3,\"scale\":0.010000,\
             \"timed_out\":false,\"rungs\":[0.01,0.08],\"note\":null}",
        )
        .unwrap();
        assert_eq!(doc.str_field("schema").unwrap(), "minnow-explore-journal/v1");
        assert_eq!(doc.u64_field("seq").unwrap(), 3);
        assert_eq!(doc.f64_field("scale").unwrap(), 0.01);
        assert!(!doc.bool_field("timed_out").unwrap());
        assert_eq!(doc.get("rungs").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("note"), Some(&Json::Null));
        assert!(doc.u64_field("scale").is_err(), "fractional is not u64");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,", "\"unterminated", "{\"a\":1}x", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn integer_tokens_stay_exact_over_the_full_u64_range() {
        // A derived point seed: well above 2^53, where f64 rounds.
        let doc = Json::parse("{\"seed\":18446744073709551615,\"neg\":-3,\"f\":2.5}").unwrap();
        assert_eq!(doc.u64_field("seed").unwrap(), u64::MAX);
        assert_eq!(doc.get("seed"), Some(&Json::Int(u64::MAX)));
        assert_eq!(doc.get("neg"), Some(&Json::Number(-3.0)));
        assert_eq!(doc.f64_field("f").unwrap(), 2.5);
        // Integers still read as f64 when asked.
        assert_eq!(doc.f64_field("neg").unwrap(), -3.0);
        assert!(doc.u64_field("neg").is_err());
    }

    #[test]
    fn strings_unescape() {
        let doc = Json::parse("{\"s\":\"a\\n\\\"b\\\"\\u0041\"}").unwrap();
        assert_eq!(doc.str_field("s").unwrap(), "a\n\"b\"A");
    }
}

//! Minimal deterministic JSON serialization.
//!
//! The build environment is offline (no serde), and the sweep runner's
//! core guarantee — byte-identical artifacts regardless of worker-thread
//! count — only needs a writer with *stable field order and number
//! formatting*, which this hand-rolled builder provides. Floats are
//! emitted with fixed six-decimal precision so output never depends on
//! shortest-round-trip formatting subtleties.

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: fixed precision, `null` when not
/// finite.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// A JSON object under construction; fields appear in insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.fields.is_empty() {
            self.fields.push(',');
        }
        let _ = write!(self.fields, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.fields, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.fields, "{value}");
        self
    }

    /// Adds a float field (fixed six-decimal formatting).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.fields.push_str(&number(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.fields.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an optional unsigned integer field (`null` when absent).
    pub fn opt_u64(mut self, key: &str, value: Option<u64>) -> Self {
        self.key(key);
        match value {
            Some(v) => {
                let _ = write!(self.fields, "{v}");
            }
            None => self.fields.push_str("null"),
        }
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.fields.push_str(value);
        self
    }

    /// Finishes the object, returning its JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields)
    }
}

/// Renders pre-serialized values as a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_field_order_and_escape() {
        let inner = JsonObject::new().u64("x", 1).finish();
        let s = JsonObject::new()
            .str("name", "a \"quoted\"\nline")
            .u64("count", 42)
            .f64("ratio", 0.5)
            .bool("ok", true)
            .opt_u64("missing", None)
            .raw("nested", &inner)
            .finish();
        assert_eq!(
            s,
            "{\"name\":\"a \\\"quoted\\\"\\nline\",\"count\":42,\"ratio\":0.500000,\
             \"ok\":true,\"missing\":null,\"nested\":{\"x\":1}}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.25), "1.250000");
    }

    #[test]
    fn arrays_join_values() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }
}

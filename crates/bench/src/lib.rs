//! # minnow-bench — the experiment harness
//!
//! Regenerates every table and figure of the Minnow paper's evaluation.
//! Each `benches/<target>.rs` (all `harness = false`) prints the paper's
//! rows/series as an aligned table and writes a CSV under
//! `target/minnow-bench/`.
//!
//! Scaling knobs (environment variables):
//!
//! * `MINNOW_BENCH_SCALE` — input scale factor (default 0.3; the paper's
//!   inputs are ~16-100x larger, see EXPERIMENTS.md),
//! * `MINNOW_BENCH_THREADS` — headline thread count (default 16; see
//!   [`headline_threads`]),
//! * `MINNOW_BENCH_MAX_THREADS` — scalability-sweep maximum (default 64),
//! * `MINNOW_BENCH_SEED` — generator seed (default 42),
//! * `MINNOW_SWEEP_THREADS` — sweep-pool width (default: available
//!   parallelism; see [`sweep_threads`]).

#![deny(missing_docs)]

pub mod cli;
pub mod eval;
pub mod json;
pub mod json_read;
pub mod runner;
pub mod sweep;
pub mod table;

/// Input scale factor for all experiments.
pub fn scale() -> f64 {
    std::env::var("MINNOW_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3)
}

/// Headline thread count for speedup comparisons. The paper evaluates at
/// 64 threads on inputs 30-100x larger than our scaled analogues; at the
/// default scale, 16 threads preserves the paper's per-thread work ratio
/// (see EXPERIMENTS.md). Raise `MINNOW_BENCH_SCALE` alongside
/// `MINNOW_BENCH_THREADS` for closer-to-paper operating points.
pub fn headline_threads() -> usize {
    std::env::var("MINNOW_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// Maximum thread count for scalability sweeps (the paper's 64).
pub fn max_threads() -> usize {
    std::env::var("MINNOW_BENCH_MAX_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Generator seed.
pub fn seed() -> u64 {
    std::env::var("MINNOW_BENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Sweep-pool width: how many simulation points run concurrently
/// (`MINNOW_SWEEP_THREADS`, defaulting to the machine's available
/// parallelism). Orthogonal to each point's simulated core count.
pub fn sweep_threads() -> usize {
    std::env::var("MINNOW_SWEEP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

//! Ablations of the Minnow engine design points (DESIGN.md §6): local queue
//! size, proactive refill threshold, load-buffer size, and shared engines.
//!
//! These sweep the §5.1/§5.2 hardware choices the paper fixes (64-entry
//! local queue, 32-entry load buffer, per-core engines) and show where each
//! knee sits under this model.

use minnow_algos::WorkloadKind;
use minnow_bench::headline_threads;
use minnow_bench::runner::BenchRun;
use minnow_bench::table::Table;
use minnow_core::offload::{MinnowConfig, MinnowScheduler};
use minnow_runtime::sim_exec::{run, ExecConfig};
use minnow_sim::hierarchy::MemoryHierarchy;

fn run_with(kind: WorkloadKind, threads: usize, mc: MinnowConfig) -> u64 {
    let graph = BenchRun::minnow(kind, threads).input();
    let mut op = kind.operator_on(graph.clone());
    let mut cfg = ExecConfig::new(threads);
    cfg.task_limit = 20_000_000;
    let mut mem = MemoryHierarchy::new(&cfg.sim);
    let mut sched =
        MinnowScheduler::new(graph, op.address_map(), op.prefetch_kind(), threads, mc);
    run(op.as_mut(), &mut sched, &mut mem, &cfg).makespan
}

fn main() {
    let threads = headline_threads();
    let kinds = [WorkloadKind::Bfs, WorkloadKind::Cc, WorkloadKind::Sssp];
    println!("Engine design-point ablations at {threads} threads (cycles normalized to the paper config)\n");

    // Local queue size (paper: 64; acceptance capped at the refill threshold).
    let mut t = Table::new("ablation_local_queue", &["Workload", "Q8", "Q16", "Q32", "Q64", "Q128"]);
    for kind in kinds {
        let lg = kind.lg_bucket();
        let base = run_with(kind, threads, MinnowConfig::no_prefetch(lg)) as f64;
        let mut row = vec![kind.name().to_string()];
        for q in [8usize, 16, 32, 64, 128] {
            let mut mc = MinnowConfig::no_prefetch(lg);
            mc.engine.local_queue = q;
            mc.engine.refill_threshold = (q / 4).max(2);
            row.push(format!("{:.2}", base / run_with(kind, threads, mc) as f64));
        }
        t.row(row);
    }
    t.finish();

    // Refill threshold (paper: programmable; default 16).
    println!();
    let mut t = Table::new("ablation_refill_threshold", &["Workload", "T2", "T4", "T8", "T16", "T32"]);
    for kind in kinds {
        let lg = kind.lg_bucket();
        let base = run_with(kind, threads, MinnowConfig::no_prefetch(lg)) as f64;
        let mut row = vec![kind.name().to_string()];
        for th in [2usize, 4, 8, 16, 32] {
            let mut mc = MinnowConfig::no_prefetch(lg);
            mc.engine.refill_threshold = th;
            row.push(format!("{:.2}", base / run_with(kind, threads, mc) as f64));
        }
        t.row(row);
    }
    t.finish();

    // Load-buffer size (paper: 32 entries; bounds prefetch MLP).
    println!();
    let mut t = Table::new("ablation_load_buffer", &["Workload", "LB4", "LB8", "LB16", "LB32", "LB64"]);
    for kind in kinds {
        let lg = kind.lg_bucket();
        let base = run_with(kind, threads, MinnowConfig::paper(lg)) as f64;
        let mut row = vec![kind.name().to_string()];
        for lb in [4usize, 8, 16, 32, 64] {
            let mut mc = MinnowConfig::paper(lg);
            mc.engine.load_buffer = lb;
            row.push(format!("{:.2}", base / run_with(kind, threads, mc) as f64));
        }
        t.row(row);
    }
    t.finish();

    // Shared engines (paper §4: resource-reduction option; no prefetching).
    println!();
    let mut t = Table::new("ablation_shared_engines", &["Workload", "1/core", "1/2cores", "1/4cores", "1/8cores"]);
    for kind in kinds {
        let lg = kind.lg_bucket();
        let base = run_with(kind, threads, MinnowConfig::no_prefetch(lg)) as f64;
        let mut row = vec![kind.name().to_string()];
        for cpe in [1usize, 2, 4, 8] {
            let mc = MinnowConfig::shared(lg, cpe);
            row.push(format!("{:.2}", base / run_with(kind, threads, mc) as f64));
        }
        t.row(row);
    }
    t.finish();
    println!("\nexpected: knees near the paper's choices; sharing trades a little speed for 2-8x less area");
}

//! Fig. 11 — average cycles per worklist enqueue/dequeue operation at the
//! headline thread count, for the software baseline and for Minnow.
//!
//! Paper shape: the engine is touched only every few hundred cycles, so an
//! aggressive engine front-end is unnecessary; worker-visible op cost under
//! Minnow is a fraction of the software worklist's.

use minnow_algos::WorkloadKind;
use minnow_bench::max_threads;
use minnow_bench::runner::BenchRun;
use minnow_bench::table::Table;

fn main() {
    let threads = max_threads();
    println!("Fig. 11: worklist operation interval and worker-visible cost at {threads} threads\n");
    let mut t = Table::new(
        "fig11_worklist_op_interval",
        &[
            "Workload",
            "sw cycles/op",
            "sw interval",
            "minnow cycles/op",
            "minnow interval",
        ],
    );
    for kind in WorkloadKind::ALL {
        let input = BenchRun::software_default(kind, threads).input();
        let sw = BenchRun::software_default(kind, threads).execute_on(input.clone());
        let mn = BenchRun::minnow(kind, threads).execute_on(input);
        t.row(vec![
            kind.name().to_string(),
            format!("{:.0}", sw.sched.mean_op_cost()),
            format!("{:.0}", sw.op_interval(threads)),
            format!("{:.0}", mn.sched.mean_op_cost()),
            format!("{:.0}", mn.op_interval(threads)),
        ]);
    }
    t.finish();
    println!("\npaper shape: ops every few hundred cycles; Minnow's worker cost ~10 cycles");
}

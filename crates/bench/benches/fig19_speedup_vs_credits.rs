//! Fig. 19 — prefetching speedup vs credit count, relative to Minnow with
//! prefetching disabled.
//!
//! Paper shape: every workload gains (1.4x-2.5x); diminishing returns
//! around 32-64 credits; G500 degrades past its optimum (hub overflow).
//!
//! Shares the `credits` sweep with Figs. 18 and 20; set
//! `MINNOW_SWEEP_THREADS` to fan the points out across cores.

use minnow_algos::WorkloadKind;
use minnow_bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow_bench::table::Table;

const CREDITS: [u32; 6] = [1, 8, 16, 32, 64, 256];

fn main() {
    let params = SweepParams::from_env();
    let threads = params.headline_threads.min(16);
    println!("Fig. 19: prefetching speedup vs credits at {threads} threads\n");

    let result = run_sweep(&Sweep::credits(&params), &SweepConfig::from_env());

    let mut header = vec!["Workload".to_string()];
    header.extend(CREDITS.iter().map(|c| format!("{c}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig19_speedup_vs_credits", &header_refs);

    for kind in WorkloadKind::ALL {
        let base = result.report(&format!("credits/{kind}/nopf")).makespan as f64;
        let mut row = vec![kind.name().to_string()];
        for c in CREDITS {
            let r = result.report(&format!("credits/{kind}/c{c}"));
            row.push(format!("{:.2}", base / r.makespan as f64));
        }
        t.row(row);
    }
    t.finish();
    println!("\npaper shape: gains everywhere; knee at 32-64 credits");
}

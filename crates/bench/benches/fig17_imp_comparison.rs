//! Fig. 17 — worklist-directed prefetching vs IMP vs a basic stride
//! prefetcher at 16 threads, normalized to Minnow without prefetching.
//!
//! Paper shape: IMP helps on hub-heavy inputs (G500, PR, TC) but behaves
//! like plain stride elsewhere; low-degree mesh graphs (SSSP, BFS) defeat
//! its fixed prefetch distance entirely. WDP wins everywhere.

use minnow_algos::WorkloadKind;
use minnow_bench::runner::{BenchRun, HwKind, SchedSpec};
use minnow_bench::table::{ratio, Table};

fn main() {
    let threads = 16;
    println!("Fig. 17: prefetching speedup vs Minnow-without-prefetching at {threads} threads\n");
    let mut t = Table::new(
        "fig17_imp_comparison",
        &["Workload", "stride", "IMP", "Minnow WDP"],
    );
    for kind in WorkloadKind::ALL {
        let input = BenchRun::minnow(kind, threads).input();
        let base = BenchRun::minnow(kind, threads).execute_on(input.clone()).makespan as f64;
        let stride = BenchRun::new(kind, threads, SchedSpec::MinnowWithHw(HwKind::Stride))
            .execute_on(input.clone())
            .makespan as f64;
        let imp = BenchRun::new(kind, threads, SchedSpec::MinnowWithHw(HwKind::Imp))
            .execute_on(input.clone())
            .makespan as f64;
        let wdp = BenchRun::minnow_wdp(kind, threads).execute_on(input).makespan as f64;
        t.row(vec![
            kind.name().to_string(),
            ratio(base / stride),
            ratio(base / imp),
            ratio(base / wdp),
        ]);
    }
    t.finish();
    println!("\npaper shape: WDP > IMP >= stride; IMP ~ stride on low-degree graphs");
}

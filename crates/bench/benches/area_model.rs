//! §5.4 — area estimation: SRAM + control-unit area of one Minnow engine
//! at 28nm and 14nm, and overhead per Skylake slice.

use minnow_core::area::{engine_sram_bytes, estimate, Process, SKYLAKE_SLICE_MM2};
use minnow_sim::config::{EngineParams, SimConfig};

fn main() {
    let params = EngineParams::paper();
    let l2_lines = SimConfig::paper().l2_lines();
    println!("Section 5.4: Minnow engine area model\n");
    println!(
        "engine SRAM inventory: {} bytes (localQ + threadletQ + loadQ CAM + imem + dmem + L2 prefetch bits)",
        engine_sram_bytes(&params, l2_lines)
    );
    for process in [Process::Nm28, Process::Nm14] {
        let a = estimate(&params, l2_lines, process);
        println!(
            "{process:?}: SRAM {:.4} mm^2, control unit {:.3} mm^2, total {:.3} mm^2",
            a.sram_mm2,
            a.logic_mm2,
            a.total_mm2()
        );
    }
    let a14 = estimate(&params, l2_lines, Process::Nm14);
    println!(
        "\nSkylake slice: {SKYLAKE_SLICE_MM2} mm^2 -> overhead {:.2}% per slice (paper: <1%)",
        a14.slice_overhead() * 100.0
    );
    assert!(a14.slice_overhead() < 0.01);
}

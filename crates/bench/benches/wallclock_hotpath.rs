//! Host wall-clock benchmarks of the simulator's hot path.
//!
//! These time the *simulator itself* — not the simulated machine — on the
//! three layers the hot-path overhaul touched:
//!
//! * the packed SoA cache model (`Cache::access`/`fill` throughput),
//! * the gap-filling occupancy timeline behind NoC links, DRAM channels,
//!   and software serialization points (`GapTracker::reserve`),
//! * full executor runs of one fig16-style point per scheduler, i.e. the
//!   dequeue → record → charge → enqueue inner loop end to end.
//!
//! Run with `cargo bench --bench wallclock_hotpath`. Coarser whole-sweep
//! numbers (the `BENCH_sweep.json` artifact) come from
//! `minnow-sweep <sweep> --bench-out`, which measures the same code on
//! the real figure workloads.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use minnow_algos::WorkloadKind;
use minnow_bench::runner::BenchRun;
use minnow_sim::cache::Cache;
use minnow_sim::config::CacheParams;
use minnow_sim::contend::GapTracker;
use minnow_sim::hierarchy::{AccessKind, MemoryHierarchy};
use minnow_sim::config::SimConfig;

/// A small deterministic LCG for address streams (no external RNG in
/// benches: the stream must be identical run to run).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn bench_packed_cache(c: &mut Criterion) {
    let params = CacheParams {
        size_bytes: 256 * 1024,
        ways: 8,
        line_bytes: 64,
        latency: 11,
    };
    c.bench_function("hotpath/cache_access_fill_mixed", |b| {
        b.iter_batched(
            || Cache::new(params),
            |mut cache| {
                let mut state = 0x1234_5678u64;
                for _ in 0..8192 {
                    let addr = lcg(&mut state) & 0xF_FFFF;
                    let write = state & 4 == 0;
                    if !cache.access(addr, write).hit {
                        cache.fill(addr, write, false);
                    }
                }
                black_box(cache.stats().misses.get())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_gap_tracker(c: &mut Criterion) {
    // Out-of-order reservations with a drifting base time: the steady
    // state keeps the window full, which is exactly the regime the NoC
    // links and DRAM channels run in mid-simulation.
    c.bench_function("hotpath/gap_tracker_reserve_steady_state", |b| {
        b.iter_batched(
            GapTracker::new,
            |mut t| {
                let mut state = 0x9e37_79b9u64;
                for i in 0..4096u64 {
                    let jitter = lcg(&mut state) % 64;
                    black_box(t.reserve(i * 4 + jitter, 2));
                }
                black_box(t.horizon())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_hierarchy_demand_stream(c: &mut Criterion) {
    c.bench_function("hotpath/hierarchy_demand_stream", |b| {
        b.iter_batched(
            || MemoryHierarchy::new(&SimConfig::scaled(8, 16)),
            |mut mem| {
                let mut state = 0xfeed_beefu64;
                let mut now = 0;
                for i in 0..4096u64 {
                    let core = (i % 8) as usize;
                    let addr = lcg(&mut state) & 0x3F_FFFF;
                    let kind = match state % 8 {
                        0 => AccessKind::Atomic,
                        1 | 2 => AccessKind::Store,
                        _ => AccessKind::Load,
                    };
                    let r = mem.access(core, addr, kind, now);
                    now += r.latency / 16;
                }
                black_box(mem.total_stats().accesses)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_executor_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath/executor_fig16_point");
    for (label, run) in [
        ("software", BenchRun::software_default(WorkloadKind::Bfs, 4)),
        ("minnow", BenchRun::minnow(WorkloadKind::Bfs, 4)),
        ("wdp", BenchRun::minnow_wdp(WorkloadKind::Bfs, 4)),
    ] {
        let mut run = run;
        run.scale = 0.02;
        run.seed = 42;
        let graph = run.input();
        g.bench_function(label, |b| {
            b.iter(|| black_box(run.execute_on(graph.clone())).tasks)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_packed_cache,
    bench_gap_tracker,
    bench_hierarchy_demand_stream,
    bench_executor_end_to_end
);
criterion_main!(benches);

//! Fig. 18 — L2 misses per kilo-instruction as prefetch credits sweep from
//! 1 to 256.
//!
//! Paper shape: MPKI falls as the prefetcher is allowed further ahead,
//! bottoms out between 32 and 128 credits (below 1 MPKI for most
//! workloads), then *rises* again where aggressive prefetching thrashes
//! the L2 (G500 especially).
//!
//! Shares the `credits` sweep with Figs. 19 and 20; set
//! `MINNOW_SWEEP_THREADS` to fan the points out across cores.

use minnow_algos::WorkloadKind;
use minnow_bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow_bench::table::Table;

const CREDITS: [u32; 6] = [1, 8, 16, 32, 64, 256];

fn main() {
    let params = SweepParams::from_env();
    let threads = params.headline_threads.min(16); // credit sweeps are per-core effects
    println!("Fig. 18: L2 MPKI vs prefetch credits at {threads} threads\n");

    let cfg = SweepConfig::from_env();
    let result = run_sweep(&Sweep::credits(&params), &cfg);

    let mut header = vec!["Workload".to_string(), "no-pf".to_string()];
    header.extend(CREDITS.iter().map(|c| format!("{c}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig18_mpki_vs_credits", &header_refs);

    for kind in WorkloadKind::ALL {
        let base = result.report(&format!("credits/{kind}/nopf"));
        let mut row = vec![kind.name().to_string(), format!("{:.1}", base.mpki())];
        for c in CREDITS {
            let r = result.report(&format!("credits/{kind}/c{c}"));
            row.push(format!("{:.1}", r.mpki()));
        }
        t.row(row);
    }
    t.finish();
    println!("\npaper shape: minimum between 32 and 128 credits; thrashing beyond");
}

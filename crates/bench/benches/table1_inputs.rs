//! Table 1 — evaluated graph inputs: nodes, edges, estimated diameter,
//! largest node (max out-degree), in-memory size.

use minnow_bench::table::Table;
use minnow_bench::{scale, seed};
use minnow_graph::{inputs, stats::GraphStats};

fn main() {
    println!(
        "Table 1: graph inputs (scaled analogues at scale {:.2}; paper sizes in EXPERIMENTS.md)\n",
        scale()
    );
    let mut t = Table::new(
        "table1_inputs",
        &["Name", "Nodes", "Edges", "Est. Diam.", "Largest Node", "Size"],
    );
    for spec in inputs::all(scale(), seed()) {
        let s = GraphStats::compute(&spec.graph, seed());
        t.row(vec![
            spec.name.to_string(),
            format!("{}", s.nodes),
            format!("{}", s.edges),
            format!("{}", s.est_diameter),
            format!("{}", s.max_degree),
            format!("{:.1} MB", s.size_bytes as f64 / 1e6),
        ]);
    }
    t.finish();
    println!("\nshape checks: road = high diameter/low degree; rmat = one dominant hub");
}

//! Fig. 15 — scalability from 1 to 64 threads, with and without Minnow
//! (worklist offload only, prefetching disabled), relative to the
//! optimized serial baseline.
//!
//! Paper shape: the software baseline scales to ~32 threads then stalls;
//! CC collapses past 16 threads; Minnow keeps every workload scaling.
//!
//! Points are enumerated and executed through the parallel sweep engine;
//! set `MINNOW_SWEEP_THREADS` to fan them out across cores.

use minnow_algos::WorkloadKind;
use minnow_bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow_bench::table::Table;

fn main() {
    let params = SweepParams::from_env();
    let mut threads = vec![1usize, 2, 4, 8, 16, 32, 64];
    threads.retain(|&t| t <= params.max_threads);
    println!("Fig. 15: speedup vs optimized serial baseline (offload only, no prefetching)\n");

    let result = run_sweep(&Sweep::fig15(&params), &SweepConfig::from_env());

    let mut header = vec!["Workload".to_string(), "Config".to_string()];
    header.extend(threads.iter().map(|t| format!("{t}T")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig15_scalability", &header_refs);

    for kind in WorkloadKind::ALL {
        let serial = result.report(&format!("fig15/{kind}/serial/t1")).makespan as f64;
        for label in ["galois", "minnow"] {
            let mut row = vec![kind.name().to_string(), label.to_string()];
            for &th in &threads {
                let r = result.report(&format!("fig15/{kind}/{label}/t{th}"));
                row.push(if r.timed_out {
                    "timeout".into()
                } else {
                    format!("{:.2}", serial / r.makespan as f64)
                });
            }
            t.row(row);
        }
    }
    t.finish();
    println!("\npaper shape: galois plateaus (CC regresses past 16T); minnow keeps scaling");
}

//! Fig. 15 — scalability from 1 to 64 threads, with and without Minnow
//! (worklist offload only, prefetching disabled), relative to the
//! optimized serial baseline.
//!
//! Paper shape: the software baseline scales to ~32 threads then stalls;
//! CC collapses past 16 threads; Minnow keeps every workload scaling.

use minnow_algos::WorkloadKind;
use minnow_bench::runner::{serial_baseline, BenchRun};
use minnow_bench::table::Table;
use minnow_bench::{max_threads, scale, seed};

fn main() {
    let max_threads = max_threads();
    let mut threads = vec![1usize, 2, 4, 8, 16, 32, 64];
    threads.retain(|&t| t <= max_threads);
    println!("Fig. 15: speedup vs optimized serial baseline (offload only, no prefetching)\n");

    let mut header = vec!["Workload".to_string(), "Config".to_string()];
    header.extend(threads.iter().map(|t| format!("{t}T")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig15_scalability", &header_refs);

    for kind in WorkloadKind::ALL {
        let serial = serial_baseline(kind, scale(), seed()) as f64;
        let input = BenchRun::software_default(kind, 1).input();
        for (label, minnow) in [("galois", false), ("minnow", true)] {
            let mut row = vec![kind.name().to_string(), label.to_string()];
            for &th in &threads {
                let run = if minnow {
                    BenchRun::minnow(kind, th)
                } else {
                    BenchRun::software_default(kind, th)
                };
                let r = run.execute_on(input.clone());
                row.push(if r.timed_out {
                    "timeout".into()
                } else {
                    format!("{:.2}", serial / r.makespan as f64)
                });
            }
            t.row(row);
        }
    }
    t.finish();
    println!("\npaper shape: galois plateaus (CC regresses past 16T); minnow keeps scaling");
}

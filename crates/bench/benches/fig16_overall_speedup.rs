//! Fig. 16 — overall Minnow speedup over the optimized software baseline
//! at the headline thread count: offload alone and offload + worklist-
//! directed prefetching.
//!
//! Paper shape: 2.96x average for Minnow without prefetching, 6.01x with;
//! TC shows the least benefit.
//!
//! Points are enumerated and executed through the parallel sweep engine;
//! set `MINNOW_SWEEP_THREADS` to fan them out across cores.

use minnow_algos::WorkloadKind;
use minnow_bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow_bench::table::{ratio, Table};

fn main() {
    let params = SweepParams::from_env();
    let threads = params.headline_threads;
    println!("Fig. 16: Minnow speedup over the software baseline at {threads} threads\n");

    let result = run_sweep(&Sweep::fig16(&params), &SweepConfig::from_env());

    let mut t = Table::new(
        "fig16_overall_speedup",
        &["Workload", "Minnow", "Minnow+WDP", "MPKI sw", "MPKI wdp"],
    );
    let mut logs = [0.0f64; 2];
    for kind in WorkloadKind::ALL {
        let soft = result.report(&format!("fig16/{kind}/software"));
        let plain = result.report(&format!("fig16/{kind}/minnow"));
        let wdp = result.report(&format!("fig16/{kind}/wdp"));
        let s1 = soft.makespan as f64 / plain.makespan as f64;
        let s2 = soft.makespan as f64 / wdp.makespan as f64;
        logs[0] += s1.ln();
        logs[1] += s2.ln();
        t.row(vec![
            kind.name().to_string(),
            ratio(s1),
            ratio(s2),
            format!("{:.1}", soft.mpki()),
            format!("{:.1}", wdp.mpki()),
        ]);
    }
    let n = WorkloadKind::ALL.len() as f64;
    t.row(vec![
        "geomean".into(),
        ratio((logs[0] / n).exp()),
        ratio((logs[1] / n).exp()),
        String::new(),
        String::new(),
    ]);
    t.finish();
    println!("\npaper shape: ~3x offload-only, ~6x with prefetching; TC least");
}

//! Fig. 5 — Galois cycle breakdown at the headline thread count: useful
//! work vs worklist operations vs memory/serialization stalls.
//!
//! Paper shape: only ~28% of cycles are useful work on average; CC is
//! catastrophically worklist-bound (92%); PR has a large atomic share.

use minnow_algos::WorkloadKind;
use minnow_bench::max_threads;
use minnow_bench::runner::BenchRun;
use minnow_bench::table::{pct, Table};

fn main() {
    let threads = max_threads();
    println!("Fig. 5: software-baseline cycle breakdown at {threads} threads\n");
    let mut t = Table::new(
        "fig05_overhead_breakdown",
        &["Workload", "useful", "worklist", "memory", "atomics/fence", "branch"],
    );
    let mut sums = [0.0f64; 5];
    for kind in WorkloadKind::ALL {
        let r = BenchRun::software_default(kind, threads).execute();
        let b = r.breakdown;
        let fr = [
            b.fraction(b.useful),
            b.fraction(b.worklist),
            b.fraction(b.memory),
            b.fraction(b.fence),
            b.fraction(b.branch),
        ];
        for (s, f) in sums.iter_mut().zip(fr) {
            *s += f;
        }
        t.row(vec![
            kind.name().to_string(),
            pct(fr[0]),
            pct(fr[1]),
            pct(fr[2]),
            pct(fr[3]),
            pct(fr[4]),
        ]);
    }
    let n = WorkloadKind::ALL.len() as f64;
    t.row(vec![
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
    ]);
    t.finish();
    println!("\npaper shape: useful ~28% avg; CC worklist-dominated; PR atomic-heavy");
}

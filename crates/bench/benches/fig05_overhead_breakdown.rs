//! Fig. 5 — Galois cycle breakdown at the headline thread count: useful
//! work vs worklist operations vs memory/serialization stalls.
//!
//! Paper shape: only ~28% of cycles are useful work on average; CC is
//! catastrophically worklist-bound (92%); PR has a large atomic share.
//!
//! Columns come from the closed per-core cycle accounting: every core
//! cycle lands in exactly one bin, so each row sums to 100% of
//! `makespan x cores` (idle = scheduler polling, drain = a core
//! finishing before the makespan).

use minnow_algos::WorkloadKind;
use minnow_bench::max_threads;
use minnow_bench::runner::BenchRun;
use minnow_bench::table::{pct, Table};
use minnow_sim::stats::CycleBin;

fn main() {
    let threads = max_threads();
    println!("Fig. 5: software-baseline cycle breakdown at {threads} threads\n");
    let mut cols = vec!["Workload".to_string()];
    cols.extend(CycleBin::ALL.iter().map(|b| b.name().to_string()));
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = Table::new("fig05_overhead_breakdown", &col_refs);
    let mut sums = [0.0f64; CycleBin::COUNT];
    for kind in WorkloadKind::ALL {
        let r = BenchRun::software_default(kind, threads).execute();
        r.accounting
            .verify_closed(r.makespan)
            .expect("per-core bins must cover every cycle of the makespan");
        let total = (r.makespan as f64 * threads as f64).max(1.0);
        let merged = r.accounting.merged();
        let mut row = vec![kind.name().to_string()];
        for (s, bin) in sums.iter_mut().zip(CycleBin::ALL) {
            let f = merged.get(bin) as f64 / total;
            *s += f;
            row.push(pct(f));
        }
        t.row(row);
    }
    let n = WorkloadKind::ALL.len() as f64;
    let mut avg = vec!["average".to_string()];
    avg.extend(sums.iter().map(|s| pct(s / n)));
    t.row(avg);
    t.finish();
    println!("\npaper shape: useful ~28% avg; CC worklist-dominated; PR atomic-heavy");
    println!("rows are closed: the seven bins sum to 100% of makespan x cores");
}

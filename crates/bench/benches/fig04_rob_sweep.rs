//! Fig. 4 — sensitivity to ROB size (with RS/LQ/SQ scaled proportionally),
//! normalized to the 256-entry configuration.
//!
//! Paper shape: "realistic" (TAGE branch prediction + x86 fencing atomics)
//! barely improves past 256 entries; removing branch/fence serialization
//! makes ROB size the limiting factor again, and PR gains up to 5x once
//! fences go away.

use minnow_algos::WorkloadKind;
use minnow_bench::runner::BenchRun;
use minnow_bench::table::Table;
use minnow_sim::core::CoreMode;

fn main() {
    let threads = 8; // per-core effect; a few cores keep the sweep fast
    let robs = [64usize, 128, 256, 512, 1024];
    let modes = [
        ("realistic", CoreMode::realistic()),
        (
            "perfect-bp",
            CoreMode {
                perfect_branch: true,
                no_fence: false,
            },
        ),
        (
            "no-fence",
            CoreMode {
                perfect_branch: false,
                no_fence: true,
            },
        ),
        ("ideal", CoreMode::ideal()),
    ];
    println!("Fig. 4: speedup vs 256-entry ROB (RS/LQ/SQ scaled with it)\n");
    let mut header = vec!["Workload".to_string(), "Mode".to_string()];
    header.extend(robs.iter().map(|r| format!("ROB {r}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig04_rob_sweep", &header_refs);

    for kind in [WorkloadKind::Bfs, WorkloadKind::Sssp, WorkloadKind::Pr, WorkloadKind::Cc] {
        let input = BenchRun::software_default(kind, threads).input();
        for (mode_name, mode) in modes {
            let cycles = |rob: usize| {
                let mut run = BenchRun::software_default(kind, threads);
                run.core_mode = mode;
                run.rob = Some(rob);
                run.execute_on(input.clone()).makespan as f64
            };
            let base = cycles(256);
            let mut row = vec![kind.name().to_string(), mode_name.to_string()];
            for rob in robs {
                row.push(format!("{:.2}", base / cycles(rob)));
            }
            t.row(row);
        }
    }
    t.finish();
    println!("\npaper shape: realistic flat past 256; ideal keeps scaling with ROB");
}

//! Criterion microbenchmarks of the substrate components: worklist
//! operations, cache model throughput, contention model, graph generation,
//! and prefetch-program expansion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use minnow_core::wdp::program_lines;
use minnow_graph::gen::rmat::{self, RmatConfig};
use minnow_graph::gen::uniform::{self, UniformConfig};
use minnow_graph::AddressMap;
use minnow_runtime::worklist::PolicyKind;
use minnow_runtime::{PrefetchKind, Task};
use minnow_sim::cache::Cache;
use minnow_sim::config::CacheParams;
use minnow_sim::contend::SharedResource;

fn bench_worklists(c: &mut Criterion) {
    let mut g = c.benchmark_group("worklist_ops");
    for kind in [
        PolicyKind::Fifo,
        PolicyKind::Chunked(16),
        PolicyKind::Obim(3),
        PolicyKind::Strict,
    ] {
        g.bench_function(kind.label(), |b| {
            b.iter_batched(
                || kind.build(),
                |mut wl| {
                    for i in 0..256u64 {
                        wl.push(Task::new(i * 7 % 64, i as u32));
                    }
                    while let Some(t) = wl.pop() {
                        black_box(t);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_l2_geometry", |b| {
        let params = CacheParams {
            size_bytes: 256 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 11,
        };
        b.iter_batched(
            || Cache::new(params),
            |mut cache| {
                for i in 0..4096u64 {
                    let addr = (i.wrapping_mul(0x9E3779B97F4A7C15)) & 0xF_FFFF;
                    if !cache.access(addr, false).hit {
                        cache.fill(addr, false, false);
                    }
                }
                black_box(cache.stats().misses.get())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_contention(c: &mut Criterion) {
    c.bench_function("shared_resource_gap_fill", |b| {
        b.iter_batched(
            || SharedResource::new(40),
            |mut r| {
                for i in 0..512u64 {
                    black_box(r.acquire((i % 8) as usize, (i * 37) % 10_000, 8));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_graph_gen(c: &mut Criterion) {
    c.bench_function("gen_uniform_10k", |b| {
        b.iter(|| black_box(uniform::generate(&UniformConfig::new(10_000, 4), 7)))
    });
    c.bench_function("gen_rmat_scale12", |b| {
        b.iter(|| black_box(rmat::generate(&RmatConfig::graph500(12, 16), 7)))
    });
}

fn bench_prefetch_program(c: &mut Criterion) {
    let graph = uniform::generate(&UniformConfig::new(5_000, 8), 3);
    let map = AddressMap::standard();
    c.bench_function("wdp_program_expansion", |b| {
        b.iter(|| {
            for v in 0..64u32 {
                black_box(program_lines(
                    PrefetchKind::Standard,
                    &graph,
                    &map,
                    &Task::new(0, v),
                ));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_worklists,
    bench_cache,
    bench_contention,
    bench_graph_gen,
    bench_prefetch_program
);
criterion_main!(benches);

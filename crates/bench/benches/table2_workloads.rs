//! Table 2 — benchmark configuration: algorithm, input, single-threaded
//! baseline cycles. Also prints the Table 3 machine configuration in use.

use minnow_algos::WorkloadKind;
use minnow_bench::runner::serial_baseline;
use minnow_bench::table::Table;
use minnow_bench::{scale, seed};
use minnow_sim::SimConfig;

fn main() {
    println!("Table 2: benchmark configuration (serial baseline cycles at scale {:.2})\n", scale());
    let mut t = Table::new("table2_workloads", &["Workload", "Algorithm", "Input", "Cycles"]);
    for kind in WorkloadKind::ALL {
        let cycles = serial_baseline(kind, scale(), seed());
        t.row(vec![
            kind.name().to_string(),
            kind.algorithm().to_string(),
            kind.input_name().to_string(),
            format!("{:.2}M", cycles as f64 / 1e6),
        ]);
    }
    t.finish();

    let cfg = SimConfig::paper();
    println!("\nTable 3: baseline microarchitecture (paper values)");
    println!("  cores:              {} Skylake-like @ {} GHz", cfg.cores, cfg.ghz);
    println!("  ROB/RS/LQ/SQ:       {}/{}/{}/{}", cfg.ooo.rob, cfg.ooo.rs, cfg.ooo.load_queue, cfg.ooo.store_queue);
    println!("  L1D:                {} KB, {}-way, {} cycles", cfg.l1d.size_bytes / 1024, cfg.l1d.ways, cfg.l1d.latency);
    println!("  L2:                 {} KB, {}-way, {} cycles", cfg.l2.size_bytes / 1024, cfg.l2.ways, cfg.l2.latency);
    println!("  L3:                 {} MB, {}-way, {} cycles", cfg.l3.size_bytes / (1024 * 1024), cfg.l3.ways, cfg.l3.latency);
    println!("  NoC:                {0}x{0} mesh, {1} cycles/hop, {2} B/cycle/link", cfg.mesh_width, cfg.noc_hop_cycles, cfg.noc_link_bytes);
    println!("  DRAM:               {} channels, {} cycles base", cfg.mem_channels, cfg.mem_latency);
    println!("  Minnow engine:      {}-entry localQ ({} cycles), {}-entry loadQ ({}-cycle wakeup)",
        cfg.engine.local_queue, cfg.engine.local_queue_latency, cfg.engine.load_buffer, cfg.engine.load_buffer_wakeup);
}

//! Fig. 6 — delinquent load density: frequently-missing (first-touch graph)
//! loads as a fraction of all loads.
//!
//! Paper shape: ~10% across the suite — the reason big OOO windows expose
//! so little MLP (§3.4).

use minnow_algos::WorkloadKind;
use minnow_bench::runner::BenchRun;
use minnow_bench::table::{pct, Table};

fn main() {
    println!("Fig. 6: delinquent load density (first graph touches / all loads)\n");
    let mut t = Table::new(
        "fig06_delinquent_density",
        &["Workload", "delinquent loads", "total loads", "density"],
    );
    let mut sum = 0.0;
    for kind in WorkloadKind::ALL {
        let r = BenchRun::software_default(kind, 8).execute();
        sum += r.delinquent_density();
        t.row(vec![
            kind.name().to_string(),
            r.delinquent_loads.to_string(),
            r.total_loads.to_string(),
            pct(r.delinquent_density()),
        ]);
    }
    t.row(vec![
        "average".into(),
        String::new(),
        String::new(),
        pct(sum / WorkloadKind::ALL.len() as f64),
    ]);
    t.finish();
    println!("\npaper shape: ~10% average density");
}

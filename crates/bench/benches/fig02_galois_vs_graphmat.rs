//! Fig. 2 — Galois vs GraphMat speedup at 10 threads, normalized to
//! 1-thread GraphMat.
//!
//! Paper shape: GraphMat wins modestly on unordered-friendly workloads
//! (G500, PR); Galois+OBIM wins by orders of magnitude on SSSP; the
//! bucketed `GMat*` Delta-Stepping kernel recovers only a small factor.

use minnow_algos::WorkloadKind;
use minnow_bench::runner::{BenchRun, SchedSpec};
use minnow_bench::table::{ratio, Table};
use minnow_runtime::PolicyKind;

fn main() {
    let threads = 10; // the paper's 10-core Xeon host
    println!("Fig. 2: speedup at {threads} threads, normalized to 1-thread GraphMat\n");
    let mut t = Table::new(
        "fig02_galois_vs_graphmat",
        &["Workload", "GraphMat", "GMat*", "Galois-FIFO", "Galois-OBIM"],
    );
    for kind in WorkloadKind::ALL {
        let input = BenchRun::new(kind, 1, SchedSpec::Bsp(None)).input();
        let base = BenchRun::new(kind, 1, SchedSpec::Bsp(None))
            .execute_on(input.clone())
            .makespan as f64;

        let cell = |sched: SchedSpec, threads: usize| {
            let mut run = BenchRun::new(kind, threads, sched);
            run.task_limit = 600_000;
            let r = run.execute_on(input.clone());
            if r.timed_out {
                "timeout".to_string()
            } else {
                ratio(base / r.makespan as f64)
            }
        };
        t.row(vec![
            kind.name().to_string(),
            cell(SchedSpec::Bsp(None), threads),
            cell(SchedSpec::Bsp(Some(kind.lg_bucket() + 3)), threads),
            cell(SchedSpec::Software(PolicyKind::Chunked(16)), threads),
            cell(SchedSpec::Software(kind.build_policy()), threads),
        ]);
    }
    t.finish();
    println!("\npaper shape: SSSP OBIM >> GraphMat (576x there); unordered workloads closer");
}

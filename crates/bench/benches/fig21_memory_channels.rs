//! Fig. 21 — speedup vs number of DRAM channels (relative to the
//! 12-channel design), with and without worklist-directed prefetching.
//!
//! Paper shape: without prefetching the workloads are latency-bound —
//! only very few channels hurt; with prefetching they consume the
//! available bandwidth and become bandwidth-sensitive. TC (fits in LLC)
//! is insensitive either way.
//!
//! Points are enumerated and executed through the parallel sweep engine;
//! set `MINNOW_SWEEP_THREADS` to fan them out across cores.

use minnow_algos::WorkloadKind;
use minnow_bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams, CHANNEL_AXIS};
use minnow_bench::table::Table;

fn main() {
    let params = SweepParams::from_env();
    let threads = params.max_threads.min(32);
    println!("Fig. 21: speedup vs DRAM channels (normalized to 12 channels) at {threads} threads\n");

    let result = run_sweep(&Sweep::channels(&params), &SweepConfig::from_env());

    let mut header = vec!["Workload".to_string(), "Config".to_string()];
    header.extend(CHANNEL_AXIS.iter().map(|c| format!("{c}ch")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig21_memory_channels", &header_refs);

    for kind in WorkloadKind::ALL {
        for label in ["no-pf", "wdp"] {
            let cfg = if label == "wdp" { "wdp" } else { "nopf" };
            let base = result.report(&format!("channels/{kind}/{cfg}/ch12")).makespan as f64;
            let mut row = vec![kind.name().to_string(), label.to_string()];
            for ch in CHANNEL_AXIS {
                let r = result.report(&format!("channels/{kind}/{cfg}/ch{ch}"));
                row.push(format!("{:.2}", base / r.makespan as f64));
            }
            t.row(row);
        }
    }
    t.finish();
    println!("\npaper shape: latency-bound without prefetching; bandwidth-bound with it; TC flat");
}

//! Fig. 21 — speedup vs number of DRAM channels (relative to the
//! 12-channel design), with and without worklist-directed prefetching.
//!
//! Paper shape: without prefetching the workloads are latency-bound —
//! only very few channels hurt; with prefetching they consume the
//! available bandwidth and become bandwidth-sensitive. TC (fits in LLC)
//! is insensitive either way.

use minnow_algos::WorkloadKind;
use minnow_bench::max_threads;
use minnow_bench::runner::BenchRun;
use minnow_bench::table::Table;

const CHANNELS: [usize; 4] = [1, 2, 4, 12];

fn main() {
    let threads = max_threads().min(32);
    println!("Fig. 21: speedup vs DRAM channels (normalized to 12 channels) at {threads} threads\n");
    let mut header = vec!["Workload".to_string(), "Config".to_string()];
    header.extend(CHANNELS.iter().map(|c| format!("{c}ch")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig21_memory_channels", &header_refs);

    for kind in WorkloadKind::ALL {
        let input = BenchRun::minnow(kind, threads).input();
        for (label, wdp) in [("no-pf", false), ("wdp", true)] {
            let runner = |ch: usize| {
                let mut run = if wdp {
                    BenchRun::minnow_wdp(kind, threads)
                } else {
                    BenchRun::minnow(kind, threads)
                };
                run.channels = Some(ch);
                run.execute_on(input.clone()).makespan as f64
            };
            let base = runner(12);
            let mut row = vec![kind.name().to_string(), label.to_string()];
            for ch in CHANNELS {
                row.push(format!("{:.2}", base / runner(ch)));
            }
            t.row(row);
        }
    }
    t.finish();
    println!("\npaper shape: latency-bound without prefetching; bandwidth-bound with it; TC flat");
}

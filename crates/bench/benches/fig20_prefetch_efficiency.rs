//! Fig. 20 — prefetch efficiency (prefetched lines used before eviction /
//! total prefetch fills) vs credit count, with IMP for comparison.
//!
//! Paper shape: near-100% at low credit counts, degrading for G500/CC/PR/BC
//! as credits climb; 32 credits keeps >99% everywhere; IMP is much lower.

use minnow_algos::WorkloadKind;
use minnow_bench::headline_threads;
use minnow_bench::runner::{BenchRun, HwKind, SchedSpec};
use minnow_bench::table::{pct, Table};

const CREDITS: [u32; 5] = [8, 32, 64, 128, 256];

fn main() {
    let threads = headline_threads().min(16);
    println!("Fig. 20: prefetch efficiency vs credits at {threads} threads (+ IMP)\n");
    let mut header = vec!["Workload".to_string()];
    header.extend(CREDITS.iter().map(|c| format!("{c}")));
    header.push("IMP".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig20_prefetch_efficiency", &header_refs);

    for kind in WorkloadKind::ALL {
        let input = BenchRun::minnow(kind, threads).input();
        let mut row = vec![kind.name().to_string()];
        for c in CREDITS {
            let r = BenchRun::new(
                kind,
                threads,
                SchedSpec::Minnow {
                    wdp_credits: Some(c),
                },
            )
            .execute_on(input.clone());
            row.push(pct(r.prefetch_efficiency()));
        }
        let imp = BenchRun::new(kind, threads, SchedSpec::MinnowWithHw(HwKind::Imp))
            .execute_on(input);
        row.push(if imp.prefetch_fills == 0 {
            "n/a".into()
        } else {
            pct(imp.prefetch_efficiency())
        });
        t.row(row);
    }
    t.finish();
    println!("\npaper shape: ~99% at 32 credits; falls with aggressiveness; IMP lower");
}

//! Fig. 20 — prefetch efficiency (prefetched lines used before eviction /
//! total prefetch fills) vs credit count, with IMP for comparison.
//!
//! Paper shape: near-100% at low credit counts, degrading for G500/CC/PR/BC
//! as credits climb; 32 credits keeps >99% everywhere; IMP is much lower.
//!
//! Shares the `credits` sweep with Figs. 18 and 19; set
//! `MINNOW_SWEEP_THREADS` to fan the points out across cores.

use minnow_algos::WorkloadKind;
use minnow_bench::sweep::{run_sweep, Sweep, SweepConfig, SweepParams};
use minnow_bench::table::{pct, Table};

const CREDITS: [u32; 5] = [8, 32, 64, 128, 256];

fn main() {
    let params = SweepParams::from_env();
    let threads = params.headline_threads.min(16);
    println!("Fig. 20: prefetch efficiency vs credits at {threads} threads (+ IMP)\n");

    let result = run_sweep(&Sweep::credits(&params), &SweepConfig::from_env());

    let mut header = vec!["Workload".to_string()];
    header.extend(CREDITS.iter().map(|c| format!("{c}")));
    header.push("IMP".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("fig20_prefetch_efficiency", &header_refs);

    for kind in WorkloadKind::ALL {
        let mut row = vec![kind.name().to_string()];
        for c in CREDITS {
            let r = result.report(&format!("credits/{kind}/c{c}"));
            row.push(pct(r.prefetch_efficiency()));
        }
        let imp = result.report(&format!("credits/{kind}/imp"));
        row.push(if imp.prefetch_fills == 0 {
            "n/a".into()
        } else {
            pct(imp.prefetch_efficiency())
        });
        t.row(row);
    }
    t.finish();
    println!("\npaper shape: ~99% at 32 credits; falls with aggressiveness; IMP lower");
}

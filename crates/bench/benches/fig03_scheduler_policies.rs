//! Fig. 3 — runtime of Galois under various scheduling policies,
//! normalized to GraphMat (lower is better; high bars/timeouts = the
//! policy never converges in reasonable work).

use minnow_algos::WorkloadKind;
use minnow_bench::runner::{BenchRun, SchedSpec};
use minnow_bench::table::Table;
use minnow_runtime::PolicyKind;

fn main() {
    let threads = 10;
    println!("Fig. 3: runtime normalized to GraphMat at {threads} threads (lower is better)\n");
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("lifo (Carbon)", PolicyKind::Lifo),
        ("fifo", PolicyKind::Fifo),
        ("chunked", PolicyKind::Chunked(16)),
        ("obim(lg)", PolicyKind::Obim(0)), // replaced per workload below
        ("obim(lg+3)", PolicyKind::Obim(0)),
        ("strict", PolicyKind::Strict),
    ];
    let mut header = vec!["Workload"];
    header.extend(policies.iter().map(|(n, _)| *n));
    let mut t = Table::new("fig03_scheduler_policies", &header);

    for kind in WorkloadKind::ALL {
        let input = BenchRun::new(kind, 1, SchedSpec::Bsp(None)).input();
        let gmat = BenchRun::new(kind, threads, SchedSpec::Bsp(None))
            .execute_on(input.clone())
            .makespan as f64;
        let mut row = vec![kind.name().to_string()];
        for (name, policy) in &policies {
            let policy = match *name {
                "obim(lg)" => PolicyKind::Obim(kind.lg_bucket()),
                "obim(lg+3)" => PolicyKind::Obim(kind.lg_bucket() + 3),
                _ => *policy,
            };
            let mut run = BenchRun::new(kind, threads, SchedSpec::Software(policy));
            run.task_limit = 400_000;
            let r = run.execute_on(input.clone());
            row.push(if r.timed_out {
                "timeout".into()
            } else {
                format!("{:.2}", r.makespan as f64 / gmat)
            });
        }
        t.row(row);
    }
    t.finish();
    println!("\npaper shape: LIFO times out on ordering-sensitive workloads; OBIM variants win");
}

//! Virtual-time serialization for shared software structures.
//!
//! Concurrent worklists, OBIM buckets, and lock-protected maps serialize
//! their critical sections. [`SharedResource`] models one such serialization
//! point: an acquisition at virtual time `now` occupies the earliest free
//! interval at or after `now`, and pays an extra *hand-off* cost when the
//! previous holder was a different core (the lock/queue cache line must
//! ping-pong through the coherence fabric).
//!
//! Because the simulated executor advances one thread through several
//! operations before returning to others, acquisition requests do **not**
//! arrive in virtual-time order. The resource therefore keeps a window of
//! future busy intervals and gap-fills: a request at `t=0` slots into an
//! idle gap even if a later-issued request already reserved `t=500`.
//!
//! This single mechanism produces the paper's software-worklist pathologies:
//! rising cycles-per-operation with thread count (Fig. 11), the worklist
//! share of the cycle breakdown (Fig. 5), and CC's scalability collapse past
//! 16 threads (Fig. 15).

use std::collections::VecDeque;

use crate::cycles::Cycle;
use crate::stats::{Counter, Distribution};

/// Maximum tracked future busy intervals; the oldest are dropped beyond
/// this (far more than any realistic number of in-flight operations).
const MAX_INTERVALS: usize = 256;

/// A single-server occupancy timeline that accepts out-of-order requests.
///
/// `reserve(now, duration)` books the earliest interval of `duration` at or
/// after `now`, gap-filling between existing reservations. Used by
/// [`SharedResource`], NoC links, and DRAM channels — anywhere one physical
/// resource serves requests arriving at non-monotonic virtual times.
/// `PartialEq` compares the full booked timeline — the sharded weave's
/// oracle tests assert lane-merged timelines equal the serial ones bit for
/// bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GapTracker {
    busy: VecDeque<(Cycle, Cycle)>,
}

impl GapTracker {
    /// Creates an idle timeline.
    pub fn new() -> Self {
        GapTracker::default()
    }

    /// Books the earliest `duration`-cycle slot at or after `now`; returns
    /// the slot's begin time.
    pub fn reserve(&mut self, now: Cycle, duration: Cycle) -> Cycle {
        if duration == 0 {
            return now;
        }
        // Intervals are non-overlapping with both starts and ends strictly
        // increasing (each insert lands in a gap), so an interval ending at
        // or before `now` can neither host this reservation (its successor
        // would have to start >= now + duration > its own end) nor raise
        // `begin` above `now`. Binary-search past them instead of scanning:
        // in steady state almost the whole window is history.
        let mut lo = 0usize;
        let mut hi = self.busy.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.busy[mid].1 <= now {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut begin = now;
        let mut insert_at = self.busy.len();
        for i in lo..self.busy.len() {
            let (s, e) = self.busy[i];
            if begin + duration <= s {
                insert_at = i;
                break;
            }
            begin = begin.max(e);
        }
        self.busy.insert(insert_at, (begin, begin + duration));
        if self.busy.len() > MAX_INTERVALS {
            // Coalesce the two earliest intervals (closing the gap between
            // them) so past occupancy is never forgotten, only coarsened.
            let (s0, _) = self.busy.pop_front().expect("len > cap");
            if let Some(front) = self.busy.front_mut() {
                front.0 = s0.min(front.0);
            }
        }
        begin
    }

    /// The latest reserved end time (0 when idle).
    pub fn horizon(&self) -> Cycle {
        self.busy.back().map_or(0, |&(_, e)| e)
    }
}

/// Result of acquiring a [`SharedResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acquire {
    /// When the critical section began (>= request time; includes any
    /// hand-off transfer).
    pub start: Cycle,
    /// When the resource was released again.
    pub done: Cycle,
    /// Cycles between the request and the start of the critical section.
    pub waited: Cycle,
}

/// One serialization point in virtual time.
#[derive(Debug, Clone)]
pub struct SharedResource {
    timeline: GapTracker,
    last_core: Option<usize>,
    handoff_cost: Cycle,
    acquisitions: Counter,
    handoffs: Counter,
    wait: Distribution,
}

impl SharedResource {
    /// Creates an idle resource. `handoff_cost` is the extra latency paid
    /// when consecutive holders are different cores (coherence transfer of
    /// the protected cache line, typically an L3 round trip).
    pub fn new(handoff_cost: Cycle) -> Self {
        SharedResource {
            timeline: GapTracker::new(),
            last_core: None,
            handoff_cost,
            acquisitions: Counter::new(),
            handoffs: Counter::new(),
            wait: Distribution::new(),
        }
    }

    /// Acquires the resource for `core` at time `now`, holding it `hold`
    /// cycles (plus a hand-off transfer when the holder changes).
    pub fn acquire(&mut self, core: usize, now: Cycle, hold: Cycle) -> Acquire {
        self.acquisitions.inc();
        let handoff = match self.last_core {
            Some(prev) if prev != core => {
                self.handoffs.inc();
                self.handoff_cost
            }
            _ => 0,
        };
        self.last_core = Some(core);
        let duration = handoff + hold;
        let begin = self.timeline.reserve(now, duration);
        let start = begin + handoff;
        let done = begin + duration;
        let waited = start - now;
        self.wait.record(waited as f64);
        Acquire { start, done, waited }
    }

    /// The latest time any reserved interval ends (0 when idle forever).
    pub fn horizon(&self) -> Cycle {
        self.timeline.horizon()
    }

    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.get()
    }

    /// Acquisitions that required a cross-core hand-off.
    pub fn handoffs(&self) -> u64 {
        self.handoffs.get()
    }

    /// Wait-time distribution across acquisitions.
    pub fn wait(&self) -> &Distribution {
        &self.wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_same_core_has_no_wait() {
        let mut r = SharedResource::new(50);
        let a = r.acquire(0, 100, 10);
        assert_eq!(a, Acquire { start: 100, done: 110, waited: 0 });
        let b = r.acquire(0, 200, 10);
        assert_eq!(b.waited, 0);
        assert_eq!(r.handoffs(), 0);
    }

    #[test]
    fn back_to_back_same_core_serializes() {
        let mut r = SharedResource::new(50);
        r.acquire(0, 0, 10);
        let b = r.acquire(0, 5, 10);
        assert_eq!(b.start, 10);
        assert_eq!(b.waited, 5);
    }

    #[test]
    fn cross_core_handoff_costs_extra() {
        let mut r = SharedResource::new(50);
        r.acquire(0, 0, 10);
        let b = r.acquire(1, 0, 10);
        // Slot opens at 10; 50 cycles of line transfer, then 10 held.
        assert_eq!(b.start, 60);
        assert_eq!(b.done, 70);
        assert_eq!(r.handoffs(), 1);
    }

    #[test]
    fn early_request_fills_idle_gap() {
        let mut r = SharedResource::new(0);
        // A thread raced ahead and reserved far in the future.
        r.acquire(0, 1000, 10);
        // Another thread requests much earlier: must NOT queue behind it.
        let b = r.acquire(0, 0, 10);
        assert_eq!(b.start, 0);
        assert_eq!(b.waited, 0);
        // And a third fits between the two.
        let c = r.acquire(0, 500, 10);
        assert_eq!(c.start, 500);
        assert_eq!(r.horizon(), 1010);
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let mut r = SharedResource::new(0);
        r.acquire(0, 0, 10); // [0,10)
        r.acquire(0, 15, 10); // [15,25)
        // 5-cycle gap at [10,15) cannot hold 10 cycles: lands at 25.
        let c = r.acquire(0, 8, 10);
        assert_eq!(c.start, 25);
        assert_eq!(c.waited, 17);
    }

    #[test]
    fn contention_grows_with_participants() {
        let finish_of = |cores: usize| {
            let mut r = SharedResource::new(40);
            let mut finish = 0;
            for i in 0..100 {
                let a = r.acquire(i % cores, 0, 20);
                finish = finish.max(a.done);
            }
            finish
        };
        assert!(finish_of(8) > finish_of(1));
    }

    #[test]
    fn interval_window_is_bounded() {
        let mut r = SharedResource::new(0);
        for i in 0..10_000u64 {
            r.acquire(0, i * 100, 10);
        }
        assert!(r.acquisitions() == 10_000);
        // Window stayed bounded (internal invariant; horizon still sane).
        assert!(r.horizon() >= 999_900);
    }

    #[test]
    fn wait_distribution_records_all_acquisitions() {
        let mut r = SharedResource::new(10);
        r.acquire(0, 0, 5);
        r.acquire(1, 0, 5);
        assert_eq!(r.wait().count(), 2);
        assert_eq!(r.acquisitions(), 2);
    }
}

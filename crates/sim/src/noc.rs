//! Mesh network-on-chip model (paper Table 3: 8x8 mesh, 512 bits/cycle/link,
//! X-Y routing, 3 cycles/hop).
//!
//! Packets are routed dimension-ordered (X first, then Y). Every directed
//! link keeps a `next_free` virtual time; a packet crossing a busy link waits
//! for it, which yields emergent congestion when many cores hammer the same
//! L3 bank or memory controller.

use crate::contend::GapTracker;
use crate::cycles::Cycle;
use crate::stats::{Counter, Distribution, Histogram};

/// Uncontended X-Y latency between two flat tile ids on a `width`-wide
/// row-major mesh. Pure function of the geometry: usable for coherence cost
/// estimates while the stateful [`Noc`] lives on the weave thread.
pub fn ideal_latency_between(width: usize, hop_cycles: Cycle, src: usize, dst: usize) -> Cycle {
    let (ax, ay) = (src % width, (src / width) % width);
    let (bx, by) = (dst % width, (dst / width) % width);
    let hops = (ax.abs_diff(bx) + ay.abs_diff(by)).max(1) as Cycle;
    hops * hop_cycles
}

/// A tile coordinate on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Column (x) index.
    pub x: usize,
    /// Row (y) index.
    pub y: usize,
}

/// Mesh NoC with per-link queueing.
#[derive(Debug, Clone, PartialEq)]
pub struct Noc {
    width: usize,
    hop_cycles: Cycle,
    link_bytes: usize,
    /// Per-link occupancy timelines, indexed by `link_index`; 4
    /// directions/tile. Gap-filling tolerates out-of-order request times.
    links: Vec<GapTracker>,
    packets: Counter,
    total_hops: Counter,
    queueing: Distribution,
    queue_hist: Histogram,
}

/// Direction of a directed mesh link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

/// Longest X-Y path on the meshes the sharded weave supports (8x8, the
/// paper's Table 3 geometry: at most `2 * (8 - 1)` directed links).
/// `MemoryHierarchy::enable_weave` refuses wider meshes, keeping the
/// fixed-size route plans in `crate::weave` sufficient.
pub(crate) const MAX_PATH_LINKS: usize = 14;

/// The stateless geometry of a mesh: everything needed to enumerate the
/// links of an X-Y route without the stateful [`Noc`]. Both the serial
/// [`Noc::route`] and the sharded weave's dispatcher/lanes plan through
/// this one walker, so they can never disagree on a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NocGeom {
    /// Mesh width (tiles per row).
    pub width: usize,
    /// Cycles per hop.
    pub hop_cycles: Cycle,
    /// Link width in bytes per cycle.
    pub link_bytes: usize,
}

fn link_index(width: usize, tile: Tile, dir: Dir) -> usize {
    let d = match dir {
        Dir::East => 0,
        Dir::West => 1,
        Dir::North => 2,
        Dir::South => 3,
    };
    (tile.y * width + tile.x) * 4 + d
}

impl NocGeom {
    /// Calls `f` with each directed link index an X-Y route from `src` to
    /// `dst` crosses, in traversal order (X legs first, then Y). A local
    /// route (same tile) crosses no links.
    pub(crate) fn for_each_link(&self, src: usize, dst: usize, mut f: impl FnMut(usize)) {
        let w = self.width;
        let mut cur = Tile {
            x: src % w,
            y: (src / w) % w,
        };
        let dest = Tile {
            x: dst % w,
            y: (dst / w) % w,
        };
        while cur != dest {
            let dir = if cur.x < dest.x {
                Dir::East
            } else if cur.x > dest.x {
                Dir::West
            } else if cur.y < dest.y {
                Dir::South
            } else {
                Dir::North
            };
            f(link_index(w, cur, dir));
            cur = match dir {
                Dir::East => Tile { x: cur.x + 1, ..cur },
                Dir::West => Tile { x: cur.x - 1, ..cur },
                Dir::South => Tile { y: cur.y + 1, ..cur },
                Dir::North => Tile { y: cur.y - 1, ..cur },
            };
        }
    }

    /// Per-link serialization occupancy of a `bytes`-byte packet.
    pub(crate) fn occupancy(&self, bytes: usize) -> Cycle {
        (bytes.max(1)).div_ceil(self.link_bytes) as Cycle
    }
}

/// The order-dependent NoC statistics, split out so the sharded weave can
/// defer them to drain barriers and replay them in canonical fetch order
/// (the queueing [`Distribution`] keeps a running `f64` sum, so record
/// *order* matters for bit-identity).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NocStats {
    packets: Counter,
    total_hops: Counter,
    queueing: Distribution,
    queue_hist: Histogram,
}

impl NocStats {
    /// Records one routed packet, exactly as [`Noc::route`] would have.
    pub(crate) fn record_route(&mut self, queued: Cycle, hops: u64) {
        self.packets.inc();
        self.total_hops.add(hops);
        self.queueing.record(queued as f64);
        self.queue_hist.record(queued);
    }
}

impl Noc {
    /// Creates an idle `width x width` mesh.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `hop_cycles == 0`, or `link_bytes == 0`.
    pub fn new(width: usize, hop_cycles: Cycle, link_bytes: usize) -> Self {
        assert!(width > 0, "mesh width must be positive");
        assert!(hop_cycles > 0, "hop latency must be positive");
        assert!(link_bytes > 0, "link width must be positive");
        Noc {
            width,
            hop_cycles,
            link_bytes,
            links: vec![GapTracker::new(); width * width * 4],
            packets: Counter::new(),
            total_hops: Counter::new(),
            queueing: Distribution::new(),
            queue_hist: Histogram::new(),
        }
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maps a flat tile id (core id) to mesh coordinates, row-major.
    pub fn tile_of(&self, id: usize) -> Tile {
        Tile {
            x: id % self.width,
            y: (id / self.width) % self.width,
        }
    }

    /// The stateless geometry of this mesh.
    pub(crate) fn geom(&self) -> NocGeom {
        NocGeom {
            width: self.width,
            hop_cycles: self.hop_cycles,
            link_bytes: self.link_bytes,
        }
    }

    /// Splits the mesh into its geometry, the per-link timelines, and the
    /// deferred statistics — the sharded weave wraps each link in its own
    /// turn cell and replays stats at barriers. [`Noc::join`] reassembles.
    pub(crate) fn split(self) -> (NocGeom, Vec<GapTracker>, NocStats) {
        let geom = NocGeom {
            width: self.width,
            hop_cycles: self.hop_cycles,
            link_bytes: self.link_bytes,
        };
        let stats = NocStats {
            packets: self.packets,
            total_hops: self.total_hops,
            queueing: self.queueing,
            queue_hist: self.queue_hist,
        };
        (geom, self.links, stats)
    }

    /// Reassembles a mesh previously taken apart by [`Noc::split`].
    pub(crate) fn join(geom: NocGeom, links: Vec<GapTracker>, stats: NocStats) -> Self {
        debug_assert_eq!(links.len(), geom.width * geom.width * 4);
        Noc {
            width: geom.width,
            hop_cycles: geom.hop_cycles,
            link_bytes: geom.link_bytes,
            links,
            packets: stats.packets,
            total_hops: stats.total_hops,
            queueing: stats.queueing,
            queue_hist: stats.queue_hist,
        }
    }

    /// Routes a `bytes`-byte packet from tile `src` to tile `dst` starting at
    /// `now`; returns total network latency (hops + queueing + serialization).
    ///
    /// A zero-hop route (src == dst) costs one hop of latency (local ring
    /// stop), matching ZSim-style models.
    pub fn route(&mut self, src: usize, dst: usize, bytes: usize, now: Cycle) -> Cycle {
        let geom = self.geom();
        let mut at = now;
        // Serialization: a packet occupies each link for ceil(bytes/link_bytes).
        let occupancy = geom.occupancy(bytes);
        let mut hops: u64 = 0;
        let mut queued: Cycle = 0;

        let links = &mut self.links;
        geom.for_each_link(src, dst, |idx| {
            let start = links[idx].reserve(at, occupancy);
            queued += start - at;
            at = start + geom.hop_cycles;
            hops += 1;
        });
        if hops == 0 {
            at += self.hop_cycles;
            hops = 1;
        }
        self.packets.inc();
        self.total_hops.add(hops);
        self.queueing.record(queued as f64);
        self.queue_hist.record(queued);
        at - now
    }

    /// Uncontended latency between two tiles (diagnostic; no state change).
    pub fn ideal_latency(&self, src: usize, dst: usize) -> Cycle {
        ideal_latency_between(self.width, self.hop_cycles, src, dst)
    }

    /// Total packets routed.
    pub fn packets(&self) -> u64 {
        self.packets.get()
    }

    /// Mean hops per packet.
    pub fn mean_hops(&self) -> f64 {
        if self.packets.get() == 0 {
            0.0
        } else {
            self.total_hops.get() as f64 / self.packets.get() as f64
        }
    }

    /// Queueing-delay distribution across routed packets.
    pub fn queueing(&self) -> &Distribution {
        &self.queueing
    }

    /// Log2-bucketed histogram of per-packet link-queueing delays
    /// (exactly mergeable, for metrics snapshots).
    pub fn queue_histogram(&self) -> &Histogram {
        &self.queue_hist
    }

    /// Total hops crossed by all packets (link occupancy proxy).
    pub fn total_hops(&self) -> u64 {
        self.total_hops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_latency_matches_manhattan_distance() {
        let mut noc = Noc::new(8, 3, 64);
        // Tile 0 = (0,0); tile 63 = (7,7): 14 hops.
        let lat = noc.route(0, 63, 64, 0);
        assert_eq!(lat, 14 * 3);
        assert_eq!(noc.ideal_latency(0, 63), 42);
    }

    #[test]
    fn local_route_costs_one_hop() {
        let mut noc = Noc::new(4, 3, 64);
        assert_eq!(noc.route(5, 5, 64, 0), 3);
        assert_eq!(noc.ideal_latency(5, 5), 3);
    }

    #[test]
    fn contention_delays_second_packet() {
        let mut noc = Noc::new(4, 3, 64);
        // Two big packets over the same first link at the same time.
        let first = noc.route(0, 3, 512, 0);
        let second = noc.route(0, 3, 512, 0);
        assert!(second > first, "queued packet must be slower: {first} vs {second}");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut noc = Noc::new(4, 3, 64);
        let a = noc.route(0, 1, 64, 0);
        let b = noc.route(14, 15, 64, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_accumulate() {
        let mut noc = Noc::new(4, 3, 64);
        noc.route(0, 5, 64, 0);
        noc.route(0, 5, 64, 100);
        assert_eq!(noc.packets(), 2);
        assert!(noc.mean_hops() > 0.0);
        assert_eq!(noc.queueing().count(), 2);
    }

    #[test]
    fn tile_mapping_is_row_major() {
        let noc = Noc::new(8, 3, 64);
        assert_eq!(noc.tile_of(0), Tile { x: 0, y: 0 });
        assert_eq!(noc.tile_of(7), Tile { x: 7, y: 0 });
        assert_eq!(noc.tile_of(8), Tile { x: 0, y: 1 });
        assert_eq!(noc.tile_of(63), Tile { x: 7, y: 7 });
    }
}

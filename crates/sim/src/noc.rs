//! Mesh network-on-chip model (paper Table 3: 8x8 mesh, 512 bits/cycle/link,
//! X-Y routing, 3 cycles/hop).
//!
//! Packets are routed dimension-ordered (X first, then Y). Every directed
//! link keeps a `next_free` virtual time; a packet crossing a busy link waits
//! for it, which yields emergent congestion when many cores hammer the same
//! L3 bank or memory controller.

use crate::contend::GapTracker;
use crate::cycles::Cycle;
use crate::stats::{Counter, Distribution, Histogram};

/// Uncontended X-Y latency between two flat tile ids on a `width`-wide
/// row-major mesh. Pure function of the geometry: usable for coherence cost
/// estimates while the stateful [`Noc`] lives on the weave thread.
pub fn ideal_latency_between(width: usize, hop_cycles: Cycle, src: usize, dst: usize) -> Cycle {
    let (ax, ay) = (src % width, (src / width) % width);
    let (bx, by) = (dst % width, (dst / width) % width);
    let hops = (ax.abs_diff(bx) + ay.abs_diff(by)).max(1) as Cycle;
    hops * hop_cycles
}

/// A tile coordinate on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Column (x) index.
    pub x: usize,
    /// Row (y) index.
    pub y: usize,
}

/// Mesh NoC with per-link queueing.
#[derive(Debug, Clone)]
pub struct Noc {
    width: usize,
    hop_cycles: Cycle,
    link_bytes: usize,
    /// Per-link occupancy timelines, indexed by `link_index`; 4
    /// directions/tile. Gap-filling tolerates out-of-order request times.
    links: Vec<GapTracker>,
    packets: Counter,
    total_hops: Counter,
    queueing: Distribution,
    queue_hist: Histogram,
}

/// Direction of a directed mesh link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

impl Noc {
    /// Creates an idle `width x width` mesh.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `hop_cycles == 0`, or `link_bytes == 0`.
    pub fn new(width: usize, hop_cycles: Cycle, link_bytes: usize) -> Self {
        assert!(width > 0, "mesh width must be positive");
        assert!(hop_cycles > 0, "hop latency must be positive");
        assert!(link_bytes > 0, "link width must be positive");
        Noc {
            width,
            hop_cycles,
            link_bytes,
            links: vec![GapTracker::new(); width * width * 4],
            packets: Counter::new(),
            total_hops: Counter::new(),
            queueing: Distribution::new(),
            queue_hist: Histogram::new(),
        }
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maps a flat tile id (core id) to mesh coordinates, row-major.
    pub fn tile_of(&self, id: usize) -> Tile {
        Tile {
            x: id % self.width,
            y: (id / self.width) % self.width,
        }
    }

    fn link_index(&self, tile: Tile, dir: Dir) -> usize {
        let d = match dir {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        };
        (tile.y * self.width + tile.x) * 4 + d
    }

    /// Routes a `bytes`-byte packet from tile `src` to tile `dst` starting at
    /// `now`; returns total network latency (hops + queueing + serialization).
    ///
    /// A zero-hop route (src == dst) costs one hop of latency (local ring
    /// stop), matching ZSim-style models.
    pub fn route(&mut self, src: usize, dst: usize, bytes: usize, now: Cycle) -> Cycle {
        self.packets.inc();
        let mut at = now;
        let mut cur = self.tile_of(src);
        let dest = self.tile_of(dst);
        // Serialization: a packet occupies each link for ceil(bytes/link_bytes).
        let occupancy = (bytes.max(1)).div_ceil(self.link_bytes) as Cycle;
        let mut hops: u64 = 0;
        let mut queued: Cycle = 0;

        while cur != dest {
            let dir = if cur.x < dest.x {
                Dir::East
            } else if cur.x > dest.x {
                Dir::West
            } else if cur.y < dest.y {
                Dir::South
            } else {
                Dir::North
            };
            let idx = self.link_index(cur, dir);
            let start = self.links[idx].reserve(at, occupancy);
            queued += start - at;
            at = start + self.hop_cycles;
            hops += 1;
            cur = match dir {
                Dir::East => Tile { x: cur.x + 1, ..cur },
                Dir::West => Tile { x: cur.x - 1, ..cur },
                Dir::South => Tile { y: cur.y + 1, ..cur },
                Dir::North => Tile { y: cur.y - 1, ..cur },
            };
        }
        if hops == 0 {
            at += self.hop_cycles;
            hops = 1;
        }
        self.total_hops.add(hops);
        self.queueing.record(queued as f64);
        self.queue_hist.record(queued);
        at - now
    }

    /// Uncontended latency between two tiles (diagnostic; no state change).
    pub fn ideal_latency(&self, src: usize, dst: usize) -> Cycle {
        ideal_latency_between(self.width, self.hop_cycles, src, dst)
    }

    /// Total packets routed.
    pub fn packets(&self) -> u64 {
        self.packets.get()
    }

    /// Mean hops per packet.
    pub fn mean_hops(&self) -> f64 {
        if self.packets.get() == 0 {
            0.0
        } else {
            self.total_hops.get() as f64 / self.packets.get() as f64
        }
    }

    /// Queueing-delay distribution across routed packets.
    pub fn queueing(&self) -> &Distribution {
        &self.queueing
    }

    /// Log2-bucketed histogram of per-packet link-queueing delays
    /// (exactly mergeable, for metrics snapshots).
    pub fn queue_histogram(&self) -> &Histogram {
        &self.queue_hist
    }

    /// Total hops crossed by all packets (link occupancy proxy).
    pub fn total_hops(&self) -> u64 {
        self.total_hops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_latency_matches_manhattan_distance() {
        let mut noc = Noc::new(8, 3, 64);
        // Tile 0 = (0,0); tile 63 = (7,7): 14 hops.
        let lat = noc.route(0, 63, 64, 0);
        assert_eq!(lat, 14 * 3);
        assert_eq!(noc.ideal_latency(0, 63), 42);
    }

    #[test]
    fn local_route_costs_one_hop() {
        let mut noc = Noc::new(4, 3, 64);
        assert_eq!(noc.route(5, 5, 64, 0), 3);
        assert_eq!(noc.ideal_latency(5, 5), 3);
    }

    #[test]
    fn contention_delays_second_packet() {
        let mut noc = Noc::new(4, 3, 64);
        // Two big packets over the same first link at the same time.
        let first = noc.route(0, 3, 512, 0);
        let second = noc.route(0, 3, 512, 0);
        assert!(second > first, "queued packet must be slower: {first} vs {second}");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut noc = Noc::new(4, 3, 64);
        let a = noc.route(0, 1, 64, 0);
        let b = noc.route(14, 15, 64, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn stats_accumulate() {
        let mut noc = Noc::new(4, 3, 64);
        noc.route(0, 5, 64, 0);
        noc.route(0, 5, 64, 100);
        assert_eq!(noc.packets(), 2);
        assert!(noc.mean_hops() > 0.0);
        assert_eq!(noc.queueing().count(), 2);
    }

    #[test]
    fn tile_mapping_is_row_major() {
        let noc = Noc::new(8, 3, 64);
        assert_eq!(noc.tile_of(0), Tile { x: 0, y: 0 });
        assert_eq!(noc.tile_of(7), Tile { x: 7, y: 0 });
        assert_eq!(noc.tile_of(8), Tile { x: 0, y: 1 });
        assert_eq!(noc.tile_of(63), Tile { x: 7, y: 7 });
    }
}

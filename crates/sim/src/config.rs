//! Machine configuration (paper Table 3) and experiment scaling.
//!
//! The paper simulates a 64-core Skylake-like CMP. Reproduction experiments
//! run scaled-down graph inputs (10^4–10^5 nodes instead of 10^6–10^7), so
//! [`SimConfig::scaled`] also shrinks cache capacities by the same factor to
//! preserve the capacity *ratios* that drive the paper's cache-behaviour
//! results (e.g. TC's input fitting in LLC, G500's hub node overflowing it).

use crate::cycles::Cycle;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: usize,
    /// Access (hit) latency in cycles.
    pub latency: Cycle,
}

impl CacheParams {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is degenerate.
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes > 0 && self.ways > 0, "degenerate cache geometry");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines >= self.ways && lines.is_multiple_of(self.ways),
            "cache size {} must be a multiple of ways*line ({}x{})",
            self.size_bytes,
            self.ways,
            self.line_bytes
        );
        lines / self.ways
    }

    /// Number of cache lines in the cache.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }
}

/// Out-of-order core buffer sizes (paper Table 3, Skylake-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooParams {
    /// Reorder buffer entries.
    pub rob: usize,
    /// Unified reservation station entries.
    pub rs: usize,
    /// Load queue entries.
    pub load_queue: usize,
    /// Store queue entries.
    pub store_queue: usize,
    /// Peak sustainable IPC on non-stalled code.
    pub issue_width: u64,
    /// Branch misprediction pipeline restart penalty, cycles.
    pub mispredict_penalty: Cycle,
}

impl OooParams {
    /// The paper's baseline Skylake-like core (Table 3).
    pub fn skylake() -> Self {
        OooParams {
            rob: 224,
            rs: 97,
            load_queue: 72,
            store_queue: 56,
            issue_width: 4,
            mispredict_penalty: 16,
        }
    }

    /// Scales every buffer by `factor`, keeping the paper's sizing ratios
    /// (used by the Fig. 4 ROB sweep, which holds RS:LQ:SQ proportional).
    pub fn scaled_rob(rob: usize) -> Self {
        let base = OooParams::skylake();
        let scale = |x: usize| ((x * rob) / base.rob).max(1);
        OooParams {
            rob,
            rs: scale(base.rs),
            load_queue: scale(base.load_queue),
            store_queue: scale(base.store_queue),
            issue_width: base.issue_width,
            mispredict_penalty: base.mispredict_penalty,
        }
    }
}

/// Minnow engine hardware parameters (paper Table 3 + §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineParams {
    /// Front-end local task queue entries (64 in the paper).
    pub local_queue: usize,
    /// Local queue access latency seen by a `minnow_dequeue` hit.
    pub local_queue_latency: Cycle,
    /// Back-end threadlet queue entries (128 in the paper §5.4).
    pub threadlet_queue: usize,
    /// CAM-based load buffer entries (32 in the paper).
    pub load_buffer: usize,
    /// Load-buffer CAM wakeup latency (4 cycles in the paper).
    pub load_buffer_wakeup: Cycle,
    /// Threadlet context size in bytes (~64B per §5.1).
    pub context_bytes: usize,
    /// Private data memory bytes (2KB per §5.4).
    pub data_memory_bytes: usize,
    /// Local-queue refill threshold: proactively fetch from the global
    /// worklist when occupancy drops below this (paper §5.2, programmable).
    pub refill_threshold: usize,
}

impl EngineParams {
    /// The paper's evaluated engine configuration.
    pub fn paper() -> Self {
        EngineParams {
            local_queue: 64,
            local_queue_latency: 10,
            threadlet_queue: 128,
            load_buffer: 32,
            load_buffer_wakeup: 4,
            context_bytes: 64,
            data_memory_bytes: 2048,
            refill_threshold: 16,
        }
    }
}

/// Full machine description (paper Table 3).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores (and hardware worker threads; 1 thread/core).
    pub cores: usize,
    /// Core clock in GHz (2.5 in the paper).
    pub ghz: f64,
    /// OOO core buffers.
    pub ooo: OooParams,
    /// L1 data cache (per core).
    pub l1d: CacheParams,
    /// L2 cache (per core). The Minnow engine attaches here.
    pub l2: CacheParams,
    /// L3 cache (shared, banked 2MB/core in the paper).
    pub l3: CacheParams,
    /// Main-memory base (uncontended) latency in cycles.
    pub mem_latency: Cycle,
    /// DRAM channels (12 in the paper; Fig. 21 sweeps 1..12).
    pub mem_channels: usize,
    /// Per-channel service time for one 64B line, cycles (bandwidth model).
    pub mem_channel_service: Cycle,
    /// NoC mesh width (8 => 8x8 = 64 tiles).
    pub mesh_width: usize,
    /// Cycles per mesh hop (3 in the paper).
    pub noc_hop_cycles: Cycle,
    /// Link width in bytes per cycle (512 bits = 64B in the paper).
    pub noc_link_bytes: usize,
    /// Minnow engine parameters.
    pub engine: EngineParams,
    /// Probability that a data-dependent branch mispredicts (TAGE-like
    /// predictors do well on regular code; graph traversal compare-branches
    /// depending on loaded values mispredict far more often).
    pub branch_mispredict_rate: f64,
}

impl SimConfig {
    /// The paper's full 64-core baseline (Table 3).
    pub fn paper() -> Self {
        SimConfig {
            cores: 64,
            ghz: 2.5,
            ooo: OooParams::skylake(),
            l1d: CacheParams {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheParams {
                size_bytes: 256 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 11,
            },
            l3: CacheParams {
                size_bytes: 64 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 27,
            },
            mem_latency: 200,
            mem_channels: 12,
            mem_channel_service: 8,
            mesh_width: 8,
            noc_hop_cycles: 3,
            noc_link_bytes: 64,
            engine: EngineParams::paper(),
            branch_mispredict_rate: 0.06,
        }
    }

    /// A scaled-down machine for fast experiments: `cores` cores and caches
    /// shrunk by `shrink` (so a 16x-smaller input sees the same capacity
    /// pressure as the paper's inputs on the full machine).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or not a perfect square times nothing —
    /// specifically, the mesh width is `ceil(sqrt(cores))` so any positive
    /// count is accepted; only `shrink == 0` panics.
    pub fn scaled(cores: usize, shrink: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(shrink > 0, "shrink factor must be positive");
        let mut cfg = SimConfig::paper();
        cfg.cores = cores;
        cfg.mesh_width = (cores as f64).sqrt().ceil() as usize;
        // Keep at least a sane minimum so geometry stays valid.
        let shrink_cache = |c: &mut CacheParams, min_bytes: usize| {
            c.size_bytes = (c.size_bytes / shrink).max(min_bytes);
        };
        shrink_cache(&mut cfg.l1d, 4 * 1024);
        shrink_cache(&mut cfg.l2, 16 * 1024);
        // L3 scales with core count in the paper (2MB/core).
        cfg.l3.size_bytes = ((2 * 1024 * 1024 * cores) / shrink).max(64 * 1024);
        // Keep core:memory bandwidth ratio: channels scale with cores
        // (12 channels for 64 cores).
        cfg.mem_channels = ((12 * cores).div_ceil(64)).max(1);
        cfg
    }

    /// A small developer-friendly machine used in doctests and unit tests.
    pub fn small(cores: usize) -> Self {
        SimConfig::scaled(cores, 16)
    }

    /// Total L2 lines available to one core's prefetcher — the natural upper
    /// bound for Minnow prefetch credits.
    pub fn l2_lines(&self) -> usize {
        self.l2.lines()
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table3() {
        let c = SimConfig::paper();
        assert_eq!(c.cores, 64);
        assert_eq!(c.ooo.rob, 224);
        assert_eq!(c.ooo.load_queue, 72);
        assert_eq!(c.ooo.store_queue, 56);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l3.size_bytes, 64 * 1024 * 1024);
        assert_eq!(c.mem_channels, 12);
        assert_eq!(c.mesh_width, 8);
        assert_eq!(c.engine.local_queue, 64);
        assert_eq!(c.engine.load_buffer, 32);
    }

    #[test]
    fn cache_sets_geometry() {
        let c = SimConfig::paper();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l1d.lines(), 512);
    }

    #[test]
    fn scaled_rob_keeps_ratios() {
        let p = OooParams::scaled_rob(448);
        assert_eq!(p.rob, 448);
        assert_eq!(p.rs, 194);
        assert_eq!(p.load_queue, 144);
        assert_eq!(p.store_queue, 112);
        let small = OooParams::scaled_rob(16);
        assert!(small.load_queue >= 1);
    }

    #[test]
    fn scaled_config_shrinks_caches_and_channels() {
        let c = SimConfig::scaled(16, 16);
        assert_eq!(c.cores, 16);
        assert_eq!(c.mesh_width, 4);
        assert_eq!(c.mem_channels, 3);
        assert!(c.l3.size_bytes < SimConfig::paper().l3.size_bytes);
        // Geometry must stay valid.
        let _ = c.l1d.sets();
        let _ = c.l2.sets();
        let _ = c.l3.sets();
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn scaled_rejects_zero_cores() {
        let _ = SimConfig::scaled(0, 1);
    }
}

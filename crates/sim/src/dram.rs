//! Multi-channel DRAM model (paper Table 3: 12-channel DDR4-2400; Fig. 21
//! sweeps 1..12 channels).
//!
//! Each channel is a single-server queue in virtual time: a 64B line access
//! costs the base latency plus any queueing delay behind earlier requests on
//! the same channel. Lines are interleaved across channels, so reducing the
//! channel count reduces aggregate bandwidth and — once the offered load
//! exceeds it — inflates effective memory latency, which is exactly the
//! latency-bound → bandwidth-bound transition the paper discusses.

use crate::contend::GapTracker;
use crate::cycles::Cycle;
use crate::stats::{Counter, Distribution, Histogram};

/// The channel a line address interleaves onto, out of `channels` (hash
/// to spread strides). Pure function: the sharded weave's dispatcher uses
/// it to assign per-channel tickets before the access executes.
pub(crate) fn channel_of(line_addr: u64, channels: usize) -> usize {
    let h = line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h % channels as u64) as usize
}

/// The order-dependent DRAM statistics, split out so the sharded weave can
/// defer them to drain barriers and replay them in canonical fetch order
/// (the queueing [`Distribution`]'s running `f64` sum makes record order
/// part of the bit-identity contract).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DramStats {
    accesses: Counter,
    queueing: Distribution,
    queue_hist: Histogram,
}

impl DramStats {
    /// Records one serviced access, exactly as [`Dram::access`] would have.
    pub(crate) fn record_access(&mut self, queued: Cycle) {
        self.accesses.inc();
        self.queueing.record(queued as f64);
        self.queue_hist.record(queued);
    }
}

/// Multi-channel DRAM with per-channel queueing.
#[derive(Debug, Clone, PartialEq)]
pub struct Dram {
    base_latency: Cycle,
    service: Cycle,
    channels: Vec<GapTracker>,
    accesses: Counter,
    queueing: Distribution,
    queue_hist: Histogram,
}

impl Dram {
    /// Creates an idle DRAM model.
    ///
    /// * `channels` — number of independent channels (≥ 1),
    /// * `base_latency` — uncontended access latency in cycles,
    /// * `service` — per-64B-line channel occupancy in cycles (the inverse of
    ///   per-channel bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `service == 0`.
    pub fn new(channels: usize, base_latency: Cycle, service: Cycle) -> Self {
        assert!(channels > 0, "need at least one DRAM channel");
        assert!(service > 0, "channel service time must be positive");
        Dram {
            base_latency,
            service,
            channels: vec![GapTracker::new(); channels],
            accesses: Counter::new(),
            queueing: Distribution::new(),
            queue_hist: Histogram::new(),
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Services one cache-line access to `line_addr` starting at `now`;
    /// returns the total latency including queueing.
    pub fn access(&mut self, line_addr: u64, now: Cycle) -> Cycle {
        self.accesses.inc();
        let ch = channel_of(line_addr, self.channels.len());
        let start = self.channels[ch].reserve(now, self.service);
        let queued = start - now;
        self.queueing.record(queued as f64);
        self.queue_hist.record(queued);
        self.base_latency + queued
    }

    /// Splits the model into its timing parameters `(base_latency,
    /// service)`, the per-channel timelines, and the deferred statistics,
    /// for the sharded weave. [`Dram::join`] reassembles.
    pub(crate) fn split(self) -> (Cycle, Cycle, Vec<GapTracker>, DramStats) {
        let stats = DramStats {
            accesses: self.accesses,
            queueing: self.queueing,
            queue_hist: self.queue_hist,
        };
        (self.base_latency, self.service, self.channels, stats)
    }

    /// Reassembles a model previously taken apart by [`Dram::split`].
    pub(crate) fn join(
        base_latency: Cycle,
        service: Cycle,
        channels: Vec<GapTracker>,
        stats: DramStats,
    ) -> Self {
        Dram {
            base_latency,
            service,
            channels,
            accesses: stats.accesses,
            queueing: stats.queueing,
            queue_hist: stats.queue_hist,
        }
    }

    /// Uncontended access latency in cycles.
    pub fn base_latency(&self) -> Cycle {
        self.base_latency
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Queueing-delay distribution (cycles spent waiting for a channel).
    pub fn queueing(&self) -> &Distribution {
        &self.queueing
    }

    /// Log2-bucketed histogram of per-access queueing delays (exactly
    /// mergeable across sweeps, unlike the running distribution).
    pub fn queue_histogram(&self) -> &Histogram {
        &self.queue_hist
    }

    /// Mean achieved latency (base + mean queueing).
    pub fn mean_latency(&self) -> f64 {
        self.base_latency as f64 + self.queueing.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_costs_base_latency() {
        let mut d = Dram::new(4, 200, 8);
        assert_eq!(d.access(0x40, 0), 200);
        assert_eq!(d.accesses(), 1);
    }

    #[test]
    fn same_channel_back_to_back_queues() {
        let mut d = Dram::new(1, 200, 8);
        let a = d.access(0, 0);
        let b = d.access(1, 0); // one channel: must queue behind `a`
        assert_eq!(a, 200);
        assert_eq!(b, 208);
    }

    #[test]
    fn more_channels_reduce_queueing() {
        let run = |channels: usize| {
            let mut d = Dram::new(channels, 200, 8);
            let mut total = 0u64;
            for i in 0..1000u64 {
                total += d.access(i, 0);
            }
            total
        };
        let narrow = run(1);
        let wide = run(12);
        assert!(wide < narrow, "12 channels must outrun 1: {wide} vs {narrow}");
    }

    #[test]
    fn idle_periods_drain_queues() {
        let mut d = Dram::new(1, 200, 8);
        d.access(0, 0);
        // Much later: channel idle again, no queueing.
        assert_eq!(d.access(1, 10_000), 200);
    }

    #[test]
    fn mean_latency_reflects_contention() {
        let mut d = Dram::new(1, 100, 50);
        for i in 0..10 {
            d.access(i, 0);
        }
        assert!(d.mean_latency() > 100.0);
        assert!(d.queueing().max().unwrap() >= 50.0 * 9.0 - 1.0);
    }
}

//! Analytic out-of-order core timing model.
//!
//! The paper's §3.3 argues that ROB size is *not* the limiting factor for
//! memory-level parallelism in graph workloads — two serializing events are:
//!
//! 1. **branch mispredictions** that depend on long-latency loads flush the
//!    window and stop MLP extraction, and
//! 2. **x86 atomics** act as memory fences, draining all outstanding loads
//!    and stores before each `lock`-prefixed operation.
//!
//! §3.4 adds that only ~10% of loads are *delinquent* (first touches of graph
//! nodes/edges that usually miss), so even a 72-entry load queue holds only a
//! handful of misses.
//!
//! [`CoreModel`] turns those observations into a timing formula. A task's
//! recorded trace (instruction count, branch/atomic counts, and the actual
//! latencies of its delinquent loads as resolved by the cache hierarchy) is
//! mapped to a cycle count by:
//!
//! * computing the *effective window*: the ROB truncated by the mean distance
//!   between serializing events (mispredictions, and fences when modeled),
//! * deriving achievable MLP from the delinquent-load density inside that
//!   window, clamped by the load queue,
//! * overlapping compute with memory stall (`max(compute, stall)`), and
//! * adding explicit penalties for mispredict restarts and fence drains.
//!
//! This reproduces Fig. 4 (flat "realistic" ROB scaling; near-linear scaling
//! once branches and fences are idealized) without simulating individual
//! instructions.

use crate::config::OooParams;
use crate::cycles::Cycle;

/// Idealization switches for the Fig. 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMode {
    /// Perfect branch prediction (no window truncation, no restart penalty).
    pub perfect_branch: bool,
    /// Atomics do not fence (no drain penalty, no MLP segmentation).
    pub no_fence: bool,
}

impl CoreMode {
    /// The realistic baseline: TAGE-like predictor, x86 fencing atomics.
    pub fn realistic() -> Self {
        CoreMode {
            perfect_branch: false,
            no_fence: false,
        }
    }

    /// Fully idealized (perfect prediction and no fences).
    pub fn ideal() -> Self {
        CoreMode {
            perfect_branch: true,
            no_fence: true,
        }
    }
}

/// Memory/control summary of one executed task, produced by the executor
/// from the functional run against the cache hierarchy.
#[derive(Debug, Clone, Default)]
pub struct TaskTrace {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Data-dependent branches (graph-value compares).
    pub branches: u64,
    /// Atomic read-modify-writes.
    pub atomics: u64,
    /// Latencies of delinquent loads (first touches that left the L1),
    /// as resolved by the memory hierarchy.
    pub delinquent_latencies: Vec<Cycle>,
    /// Non-delinquent loads (secondary node/edge touches, stack, spills);
    /// assumed to hit close to the core.
    pub other_loads: u64,
    /// Plain stores.
    pub stores: u64,
}

impl TaskTrace {
    /// Total loads (delinquent + other).
    pub fn loads(&self) -> u64 {
        self.delinquent_latencies.len() as u64 + self.other_loads
    }

    /// Delinquent-load density: the paper's Fig. 6 metric.
    pub fn delinquent_density(&self) -> f64 {
        let loads = self.loads();
        if loads == 0 {
            0.0
        } else {
            self.delinquent_latencies.len() as f64 / loads as f64
        }
    }
}

/// Cycle breakdown of one task (Fig. 5 accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskCycles {
    /// Issue-limited compute cycles that could not overlap with memory.
    pub compute: Cycle,
    /// Memory stall cycles after MLP overlap.
    pub memory: Cycle,
    /// Branch misprediction restart penalties.
    pub branch: Cycle,
    /// Fence drain penalties from atomics.
    pub fence: Cycle,
}

impl TaskCycles {
    /// Total task latency.
    pub fn total(&self) -> Cycle {
        self.compute + self.memory + self.branch + self.fence
    }
}

/// The analytic core model.
#[derive(Debug, Clone)]
pub struct CoreModel {
    params: OooParams,
    mode: CoreMode,
    mispredict_rate: f64,
    /// Fixed cost of executing one fencing atomic (L1 RMW + drain bubble).
    fence_drain: Cycle,
    /// Fraction of instructions that are loads, used to convert an
    /// instruction window into a load window.
    loads_per_instr: f64,
}

impl CoreModel {
    /// Builds a core model.
    ///
    /// `mispredict_rate` is the probability that a data-dependent branch
    /// mispredicts (paper Table 3's TAGE predictor does well on loop
    /// branches; graph compare-branches are the hard ones and the executor
    /// only reports those here).
    pub fn new(params: OooParams, mode: CoreMode, mispredict_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&mispredict_rate));
        CoreModel {
            params,
            mode,
            mispredict_rate,
            fence_drain: 18,
            loads_per_instr: 0.30,
        }
    }

    /// The OOO buffer configuration in use.
    pub fn params(&self) -> &OooParams {
        &self.params
    }

    /// The idealization mode in use.
    pub fn mode(&self) -> CoreMode {
        self.mode
    }

    /// Effective instruction window: ROB truncated by serializing events.
    fn effective_window(&self, trace: &TaskTrace) -> f64 {
        let rob = self.params.rob as f64;
        let instrs = trace.instructions.max(1) as f64;
        let mut window = rob;
        if !self.mode.perfect_branch && trace.branches > 0 {
            let mispredicts = trace.branches as f64 * self.mispredict_rate;
            if mispredicts > 0.0 {
                let span = instrs / (mispredicts + 1.0);
                window = window.min(span);
            }
        }
        if !self.mode.no_fence && trace.atomics > 0 {
            let span = instrs / (trace.atomics as f64 + 1.0);
            window = window.min(span);
        }
        window.max(8.0)
    }

    /// Achievable memory-level parallelism for this trace (exposed for the
    /// Fig. 4/6 analyses and tests).
    pub fn effective_mlp(&self, trace: &TaskTrace) -> f64 {
        let delinquent = trace.delinquent_latencies.len() as f64;
        if delinquent == 0.0 {
            return 1.0;
        }
        let window = self.effective_window(trace);
        let density = trace.delinquent_density();
        // Delinquent loads visible in one window.
        let in_window = window * self.loads_per_instr * density;
        in_window.clamp(1.0, self.params.load_queue as f64)
    }

    /// Maps a task trace to its cycle breakdown.
    pub fn task_cycles(&self, trace: &TaskTrace) -> TaskCycles {
        let compute = trace.instructions.div_ceil(self.params.issue_width).max(1);

        let mlp = self.effective_mlp(trace);
        let total_miss: Cycle = trace.delinquent_latencies.iter().sum();
        let stall = (total_miss as f64 / mlp).round() as Cycle;

        // Compute and memory overlap in an OOO core: total latency is
        // max(compute, stall), attributed as "memory" for the overlapped
        // region and "compute" for the issue-limited remainder.
        let (compute_part, memory_part) = if stall >= compute {
            (0, stall)
        } else {
            (compute - stall, stall)
        };

        let branch = if self.mode.perfect_branch {
            0
        } else {
            let mispredicts = trace.branches as f64 * self.mispredict_rate;
            (mispredicts * self.params.mispredict_penalty as f64).round() as Cycle
        };
        let fence = if self.mode.no_fence {
            // Atomics still execute, but pipelined like stores.
            trace.atomics
        } else {
            trace.atomics * self.fence_drain
        };

        TaskCycles {
            compute: compute_part,
            memory: memory_part,
            branch,
            fence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(instrs: u64, branches: u64, atomics: u64, misses: &[Cycle]) -> TaskTrace {
        TaskTrace {
            instructions: instrs,
            branches,
            atomics,
            delinquent_latencies: misses.to_vec(),
            other_loads: instrs * 3 / 10,
            stores: instrs / 10,
        }
    }

    fn model(rob: usize, mode: CoreMode) -> CoreModel {
        CoreModel::new(OooParams::scaled_rob(rob), mode, 0.06)
    }

    #[test]
    fn compute_only_task_is_issue_limited() {
        let m = model(224, CoreMode::realistic());
        let t = trace(400, 0, 0, &[]);
        let c = m.task_cycles(&t);
        assert_eq!(c.total(), 100); // 400 instrs / width 4
        assert_eq!(c.memory, 0);
    }

    #[test]
    fn misses_dominate_small_tasks() {
        let m = model(224, CoreMode::realistic());
        let t = trace(200, 20, 0, &[300, 300, 300, 300]);
        let c = m.task_cycles(&t);
        assert!(c.memory > 0);
        assert!(c.total() > 200 / 4);
    }

    #[test]
    fn ideal_mode_scales_with_rob() {
        // Many delinquent misses, frequent branches: realistic window is
        // branch-limited so big ROBs do not help; ideal windows do.
        let misses: Vec<Cycle> = vec![250; 64];
        let t = trace(2000, 200, 0, &misses);
        let real_small = model(256, CoreMode::realistic()).task_cycles(&t).total();
        let real_big = model(1024, CoreMode::realistic()).task_cycles(&t).total();
        let ideal_small = model(256, CoreMode::ideal()).task_cycles(&t).total();
        let ideal_big = model(1024, CoreMode::ideal()).task_cycles(&t).total();

        let real_gain = real_small as f64 / real_big as f64;
        let ideal_gain = ideal_small as f64 / ideal_big as f64;
        assert!(
            ideal_gain > real_gain + 0.2,
            "ideal must benefit more from ROB: real {real_gain:.2} ideal {ideal_gain:.2}"
        );
    }

    #[test]
    fn fences_hurt_atomic_heavy_tasks() {
        let misses: Vec<Cycle> = vec![250; 16];
        let t = trace(1000, 20, 40, &misses); // PageRank-like: atomics everywhere
        let fenced = model(224, CoreMode::realistic()).task_cycles(&t);
        let unfenced = model(
            224,
            CoreMode {
                perfect_branch: false,
                no_fence: true,
            },
        )
        .task_cycles(&t);
        assert!(
            fenced.total() as f64 > unfenced.total() as f64 * 1.3,
            "fences must cost >30%: {} vs {}",
            fenced.total(),
            unfenced.total()
        );
    }

    #[test]
    fn mlp_is_clamped_by_load_queue() {
        let m = model(224, CoreMode::ideal());
        let misses: Vec<Cycle> = vec![250; 4000];
        let t = TaskTrace {
            instructions: 8000,
            branches: 0,
            atomics: 0,
            delinquent_latencies: misses,
            other_loads: 0,
            stores: 0,
        };
        assert!(m.effective_mlp(&t) <= m.params().load_queue as f64 + 1e-9);
        assert!(m.effective_mlp(&t) >= 1.0);
    }

    #[test]
    fn empty_trace_has_unit_mlp() {
        let m = model(224, CoreMode::realistic());
        assert_eq!(m.effective_mlp(&TaskTrace::default()), 1.0);
    }

    #[test]
    fn delinquent_density_matches_definition() {
        let t = TaskTrace {
            instructions: 100,
            branches: 0,
            atomics: 0,
            delinquent_latencies: vec![100; 10],
            other_loads: 90,
            stores: 0,
        };
        assert!((t.delinquent_density() - 0.1).abs() < 1e-12);
        assert_eq!(t.loads(), 100);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let m = model(224, CoreMode::realistic());
        let t = trace(500, 30, 5, &[200, 200]);
        let c = m.task_cycles(&t);
        assert_eq!(c.total(), c.compute + c.memory + c.branch + c.fence);
    }
}

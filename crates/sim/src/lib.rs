//! # minnow-sim — timing substrate for the Minnow reproduction
//!
//! This crate provides the simulated 64-core CMP that the Minnow paper
//! (Zhang et al., ASPLOS 2018) evaluates on:
//!
//! * [`cache`] — set-associative caches with LRU replacement and the per-line
//!   *prefetch bit* that backs Minnow's credit-based throttling (paper §5.3.1),
//! * [`hierarchy`] — a per-core L1D/L2 + shared banked L3 hierarchy with a
//!   directory-style invalidation model for cross-core sharing,
//! * [`noc`] — an 8x8 mesh network-on-chip with X-Y routing and per-link
//!   queueing contention (paper Table 3),
//! * [`dram`] — a multi-channel DRAM model with bandwidth queueing
//!   (paper Fig. 21 sweeps channel count),
//! * [`core`] — an analytic out-of-order core timing model parameterized by
//!   ROB/RS/LQ/SQ sizes, with branch-misprediction and x86 atomic-fence
//!   serialization effects (paper §3.3, Fig. 4) and delinquent-load MLP
//!   extraction (paper §3.4, Fig. 6),
//! * [`contend`] — a virtual-time serialization model for shared software
//!   structures (locks, worklist buckets) including coherence hand-off costs,
//! * [`config`] — the Table 3 machine description plus experiment scaling.
//!
//! The substrate is deliberately *trace-agnostic*: upper layers
//! (`minnow-runtime`, `minnow-core`) drive it with memory access streams and
//! per-task instruction summaries, and all cache/NoC/DRAM behaviour — MPKI,
//! prefetch efficiency, bandwidth saturation — is emergent rather than
//! scripted.
//!
//! ## Example
//!
//! ```
//! use minnow_sim::config::SimConfig;
//! use minnow_sim::hierarchy::{AccessKind, MemoryHierarchy};
//!
//! let cfg = SimConfig::small(4); // 4-core scaled-down machine
//! let mut mem = MemoryHierarchy::new(&cfg);
//! let r = mem.access(0, 0x1000, AccessKind::Load, 0);
//! assert!(r.latency >= cfg.l1d.latency); // cold miss goes to memory
//! let r2 = mem.access(0, 0x1000, AccessKind::Load, r.latency);
//! assert_eq!(r2.latency, cfg.l1d.latency); // now an L1 hit
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod config;
pub mod contend;
pub mod core;
pub mod cycles;
pub mod dram;
pub mod hierarchy;
pub mod noc;
pub mod observer;
pub mod stats;
pub mod trace;
mod weave;

pub use crate::config::SimConfig;
pub use crate::cycles::Cycle;
pub use crate::hierarchy::{AccessKind, AccessResult, CacheLevel, MemoryHierarchy};
pub use crate::stats::{CycleAccounting, CycleBin, Histogram, MetricsRegistry};
pub use crate::trace::{TraceEvent, TracePhase, Tracer};

//! Zero-cost-when-disabled structured tracing.
//!
//! Components hold a cloned [`Tracer`] handle and report events through
//! [`Tracer::emit`], which takes a closure so that a *disabled* tracer
//! costs one branch — no event is constructed, no allocation happens,
//! and simulation results are bit-identical with tracing on or off
//! (tracing only observes; it never feeds back into timing).
//!
//! Captured events export to Chrome `trace_event` JSON (loadable in
//! Perfetto / `chrome://tracing`) via [`chrome_trace_json`]; the
//! simulated cycle count is used directly as the trace timestamp.
//! Emission is single-threaded per simulation, so for a fixed seed the
//! event stream — and therefore the exported file — is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::cycles::Cycle;

/// Default cap on buffered events per tracer; later events are counted
/// as dropped rather than buffered (bounds memory on huge runs).
pub const DEFAULT_EVENT_CAP: usize = 4_000_000;

/// Chrome `trace_event` phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span with a duration (`ph: "X"`).
    Complete,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter,
}

impl TracePhase {
    /// The single-character phase code used in the JSON export.
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Complete => "X",
            TracePhase::Instant => "i",
            TracePhase::Counter => "C",
        }
    }
}

/// One structured trace event.
///
/// Names and categories are `&'static str` so emission never allocates
/// for the common fields; only `args` may allocate, and only when the
/// tracer is enabled (events are built inside the [`Tracer::emit`]
/// closure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (`name` in the JSON export).
    pub name: &'static str,
    /// Event category (`cat`), used for filtering in the viewer.
    pub cat: &'static str,
    /// Phase (span / instant / counter).
    pub phase: TracePhase,
    /// Start timestamp in simulated cycles (`ts`).
    pub ts: Cycle,
    /// Duration in cycles (`dur`; 0 for instants and counters).
    pub dur: Cycle,
    /// Track id — the worker core (or engine) the event belongs to.
    pub tid: u32,
    /// Extra key/value arguments (`args`).
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// A span event covering `[ts, ts + dur)`.
    pub fn complete(name: &'static str, cat: &'static str, tid: u32, ts: Cycle, dur: Cycle) -> Self {
        TraceEvent {
            name,
            cat,
            phase: TracePhase::Complete,
            ts,
            dur,
            tid,
            args: Vec::new(),
        }
    }

    /// An instant marker at `ts`.
    pub fn instant(name: &'static str, cat: &'static str, tid: u32, ts: Cycle) -> Self {
        TraceEvent {
            name,
            cat,
            phase: TracePhase::Instant,
            ts,
            dur: 0,
            tid,
            args: Vec::new(),
        }
    }

    /// A counter sample: `value` is recorded under the arg key `"value"`.
    pub fn counter(name: &'static str, cat: &'static str, tid: u32, ts: Cycle, value: u64) -> Self {
        TraceEvent {
            name,
            cat,
            phase: TracePhase::Counter,
            ts,
            dur: 0,
            tid,
            args: vec![("value", value)],
        }
    }

    /// Adds one argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        self.args.push((key, value));
        self
    }

    /// Serializes this event as one Chrome `trace_event` JSON object
    /// under process id `pid`.
    pub fn to_chrome_json(&self, pid: u64) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
            escape(self.name),
            escape(self.cat),
            self.phase.code(),
            self.ts
        );
        if self.phase == TracePhase::Complete {
            let _ = write!(s, "\"dur\":{},", self.dur);
        }
        if self.phase == TracePhase::Instant {
            s.push_str("\"s\":\"t\",");
        }
        let _ = write!(s, "\"pid\":{pid},\"tid\":{},\"args\":{{", self.tid);
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{v}", escape(k));
        }
        s.push_str("}}");
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug)]
struct TraceSink {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
}

/// A cloneable handle to a trace buffer — or to nothing.
///
/// The default handle is *disabled*: [`Tracer::emit`] evaluates a
/// single `Option` branch and discards the closure unevaluated, so
/// instrumentation on hot paths costs nothing when tracing is off.
/// Enabled handles share one buffer across clones (the hierarchy, the
/// executor, and the prefetch pipeline all write to the same stream).
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<TraceSink>>>,
}

impl Tracer {
    /// A disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// An enabled tracer with the default event cap.
    pub fn enabled() -> Self {
        Self::with_cap(DEFAULT_EVENT_CAP)
    }

    /// An enabled tracer that buffers at most `cap` events; further
    /// events are counted in [`Tracer::dropped`] instead.
    pub fn with_cap(cap: usize) -> Self {
        Tracer {
            sink: Some(Arc::new(Mutex::new(TraceSink {
                events: Vec::new(),
                cap,
                dropped: 0,
            }))),
        }
    }

    /// Whether events are being captured.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event built by `f` — or, when disabled, does nothing
    /// without evaluating `f`.
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if let Some(sink) = &self.sink {
            let mut sink = sink.lock().expect("trace sink poisoned");
            if sink.events.len() < sink.cap {
                let ev = f();
                sink.events.push(ev);
            } else {
                sink.dropped += 1;
            }
        }
    }

    /// Number of buffered events so far (0 when disabled).
    pub fn len(&self) -> usize {
        self.sink
            .as_ref()
            .map_or(0, |s| s.lock().expect("trace sink poisoned").events.len())
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected by the cap.
    pub fn dropped(&self) -> u64 {
        self.sink
            .as_ref()
            .map_or(0, |s| s.lock().expect("trace sink poisoned").dropped)
    }

    /// Takes all buffered events, sorted by timestamp (stable, so
    /// emission order breaks ties and the result is deterministic).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.sink {
            None => Vec::new(),
            Some(s) => {
                let mut events =
                    std::mem::take(&mut s.lock().expect("trace sink poisoned").events);
                events.sort_by_key(|e| e.ts);
                events
            }
        }
    }
}

/// Serializes events as a complete Chrome `trace_event` JSON document
/// (object form, `traceEvents` array) for one process id.
///
/// Events are written in the order given; pass the output of
/// [`Tracer::take_events`] for timestamp-sorted, deterministic output.
pub fn chrome_trace_json(events: &[TraceEvent], pid: u64) -> String {
    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&ev.to_chrome_json(pid));
    }
    s.push_str("],\"displayTimeUnit\":\"ns\"}");
    s
}

/// Counts events per `"cat/name"` key, in deterministic (sorted) order
/// — the shape the trace-schema golden test pins.
pub fn event_summary(events: &[TraceEvent]) -> BTreeMap<String, u64> {
    let mut summary = BTreeMap::new();
    for ev in events {
        *summary
            .entry(format!("{}/{}", ev.cat, ev.name))
            .or_insert(0u64) += 1;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_skips_closure() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(|| unreachable!("closure must not run when disabled"));
        assert!(t.is_empty());
        assert!(t.take_events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t.emit(|| TraceEvent::instant("a", "test", 0, 5));
        t2.emit(|| TraceEvent::instant("b", "test", 1, 3));
        assert_eq!(t.len(), 2);
        let events = t.take_events();
        assert_eq!(events[0].name, "b", "sorted by timestamp");
        assert_eq!(events[1].name, "a");
        assert!(t2.is_empty(), "take drains the shared buffer");
    }

    #[test]
    fn cap_counts_dropped_events() {
        let t = Tracer::with_cap(1);
        t.emit(|| TraceEvent::instant("a", "test", 0, 0));
        t.emit(|| TraceEvent::instant("b", "test", 0, 1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn chrome_json_shapes_by_phase() {
        let x = TraceEvent::complete("task", "exec", 3, 10, 7).with_arg("task_id", 42);
        let json = x.to_chrome_json(1);
        assert_eq!(
            json,
            "{\"name\":\"task\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":10,\
             \"dur\":7,\"pid\":1,\"tid\":3,\"args\":{\"task_id\":42}}"
        );
        let i = TraceEvent::instant("spill", "sched", 0, 4);
        assert!(i.to_chrome_json(0).contains("\"ph\":\"i\",\"ts\":4,\"s\":\"t\""));
        let c = TraceEvent::counter("dram_queue", "dram", 0, 9, 12);
        assert!(c.to_chrome_json(0).contains("\"ph\":\"C\""));
        assert!(c.to_chrome_json(0).contains("\"value\":12"));
    }

    #[test]
    fn document_wraps_trace_events() {
        let events = vec![
            TraceEvent::instant("a", "t", 0, 0),
            TraceEvent::instant("b", "t", 0, 1),
        ];
        let doc = chrome_trace_json(&events, 7);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ns\"}"));
        assert!(doc.contains("\"pid\":7"));
    }

    #[test]
    fn summary_counts_by_cat_and_name() {
        let events = vec![
            TraceEvent::instant("a", "t", 0, 0),
            TraceEvent::instant("a", "t", 1, 2),
            TraceEvent::instant("b", "u", 0, 1),
        ];
        let s = event_summary(&events);
        assert_eq!(s.get("t/a"), Some(&2));
        assert_eq!(s.get("u/b"), Some(&1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}

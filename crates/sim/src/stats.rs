//! Statistics primitives shared by all models: counters, running
//! distributions, log2-bucketed histograms with exact merge, a labeled
//! metrics registry, and the *closed* per-core cycle-accounting bins
//! behind the Fig. 5 breakdown (every simulated cycle lands in exactly
//! one bin).

use std::collections::BTreeMap;
use std::fmt;

use crate::cycles::Cycle;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running statistics over a stream of samples: count, sum, min, max, mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// An empty distribution. The extremes start at ±∞ (not 0.0) so the
/// first recorded sample becomes both min and max; a derived `Default`
/// would zero them and silently corrupt `min()` for positive streams.
impl Default for Distribution {
    fn default() -> Self {
        Distribution {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Distribution {
    /// Creates an empty distribution (same state as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &Distribution) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.2} min={:.2} max={:.2}",
                self.count, self.mean(), self.min, self.max
            )
        }
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`. Buckets are *fixed*, so merging two histograms is
/// exact: the merge of two recordings equals the recording of the
/// concatenated stream, bucket for bucket, with count and sum preserved
/// (the sum is kept in a `u128` so it cannot saturate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of a value.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Half-open value range `[lo, hi)` covered by a bucket (`hi` is
    /// `u64::MAX` for the last bucket, which is closed at the top).
    pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
        assert!(bucket < HISTOGRAM_BUCKETS, "bucket out of range");
        match bucket {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), 1 << b),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of a sample.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[Self::bucket_of(value)] += n;
        self.sum += value as u128 * n as u128;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Merges another histogram into this one (exact: equivalent to
    /// having recorded both streams into a single histogram).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// An upper bound below which at least `fraction` of the samples
    /// fall (bucket-granular; `None` when empty).
    pub fn quantile_bound(&self, fraction: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = (count as f64 * fraction.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_bounds(i).1);
            }
        }
        Some(u64::MAX)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.2}", self.count(), self.mean())
    }
}

/// A registry of labeled counters and histograms with deterministic
/// (lexicographic) iteration order, used to snapshot component metrics
/// into reports and trace exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a labeled counter, creating it at zero first.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Sets a labeled counter to an absolute value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into a labeled histogram, creating it if needed.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// A labeled histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Installs a pre-built histogram under a label (snapshotting a
    /// component-owned histogram into the registry), merging into any
    /// existing entry.
    pub fn insert_histogram(&mut self, name: &str, hist: Histogram) {
        if let Some(mine) = self.histograms.get_mut(name) {
            mine.merge(&hist);
        } else {
            self.histograms.insert(name.to_string(), hist);
        }
    }

    /// Counters in lexicographic label order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Histograms in lexicographic label order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, histograms
    /// merge exactly).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.add(k, v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }
}

/// One bin of the closed cycle accounting: where a worker-core cycle
/// went. Every simulated cycle of every core lands in exactly one bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleBin {
    /// Issue-limited useful compute.
    Useful,
    /// Worklist/scheduler operations (instructions, serialization, line
    /// ping-pong, accelerator-call stalls).
    Worklist,
    /// Memory stalls on task data after MLP overlap.
    Memory,
    /// Atomic/fence serialization.
    Fence,
    /// Branch misprediction penalties.
    Branch,
    /// Idle polling while the worklist was momentarily empty, and
    /// superstep load imbalance in BSP engines.
    Idle,
    /// Tail cycles between a core's last activity and the run's
    /// makespan (cores that finished early).
    Drain,
}

impl CycleBin {
    /// All bins, in presentation order.
    pub const ALL: [CycleBin; 7] = [
        CycleBin::Useful,
        CycleBin::Worklist,
        CycleBin::Memory,
        CycleBin::Fence,
        CycleBin::Branch,
        CycleBin::Idle,
        CycleBin::Drain,
    ];

    /// Number of bins.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lowercase label for reports and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            CycleBin::Useful => "useful",
            CycleBin::Worklist => "worklist",
            CycleBin::Memory => "memory",
            CycleBin::Fence => "fence",
            CycleBin::Branch => "branch",
            CycleBin::Idle => "idle",
            CycleBin::Drain => "drain",
        }
    }

    fn index(self) -> usize {
        match self {
            CycleBin::Useful => 0,
            CycleBin::Worklist => 1,
            CycleBin::Memory => 2,
            CycleBin::Fence => 3,
            CycleBin::Branch => 4,
            CycleBin::Idle => 5,
            CycleBin::Drain => 6,
        }
    }
}

/// One core's cycle bins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreBins {
    bins: [u64; CycleBin::COUNT],
}

impl CoreBins {
    /// Cycles in one bin.
    pub fn get(&self, bin: CycleBin) -> u64 {
        self.bins[bin.index()]
    }

    /// Adds cycles to a bin.
    #[inline]
    pub fn charge(&mut self, bin: CycleBin, cycles: u64) {
        self.bins[bin.index()] += cycles;
    }

    /// Sum over all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Adds another core's bins into this one (for cross-core rollups).
    pub fn merge(&mut self, other: &CoreBins) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }
}

/// Closed per-core cycle accounting for one simulated run.
///
/// The executor charges every clock advance of every worker core to
/// exactly one [`CycleBin`]; [`CycleAccounting::close`] then assigns
/// each core's tail (makespan minus its final clock) to
/// [`CycleBin::Drain`]. After closing, **each core's bins sum exactly
/// to the run's makespan** — no cycle is lost or double-counted —
/// which [`CycleAccounting::verify_closed`] checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleAccounting {
    cores: Vec<CoreBins>,
    closed_to: Option<Cycle>,
}

impl CycleAccounting {
    /// Zeroed accounting for `cores` worker cores.
    pub fn new(cores: usize) -> Self {
        CycleAccounting {
            cores: vec![CoreBins::default(); cores],
            closed_to: None,
        }
    }

    /// Number of cores tracked.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// One core's bins.
    pub fn core(&self, core: usize) -> &CoreBins {
        &self.cores[core]
    }

    /// Charges cycles on one core to a bin.
    #[inline]
    pub fn charge(&mut self, core: usize, bin: CycleBin, cycles: u64) {
        self.cores[core].charge(bin, cycles);
    }

    /// Sum of one bin across all cores.
    pub fn bin_total(&self, bin: CycleBin) -> u64 {
        self.cores.iter().map(|c| c.get(bin)).sum()
    }

    /// All cores' bins merged into one.
    pub fn merged(&self) -> CoreBins {
        let mut m = CoreBins::default();
        for c in &self.cores {
            m.merge(c);
        }
        m
    }

    /// The makespan this accounting was closed to, if any.
    pub fn closed_to(&self) -> Option<Cycle> {
        self.closed_to
    }

    /// Closes the books at `makespan`: each core's remaining cycles up
    /// to the makespan land in [`CycleBin::Drain`].
    ///
    /// # Panics
    ///
    /// Panics if any core was charged beyond the makespan — that would
    /// mean a cycle was double-counted upstream.
    pub fn close(&mut self, makespan: Cycle) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            let busy = core.total();
            assert!(
                busy <= makespan,
                "core {i} charged {busy} cycles past makespan {makespan}"
            );
            core.charge(CycleBin::Drain, makespan - busy);
        }
        self.closed_to = Some(makespan);
    }

    /// Checks the closed-accounting invariant: every core's bins sum
    /// exactly to `makespan`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first core whose bins do not sum to
    /// the makespan, or if the books were never closed.
    pub fn verify_closed(&self, makespan: Cycle) -> Result<(), String> {
        if self.closed_to != Some(makespan) {
            return Err(format!(
                "accounting closed to {:?}, expected {makespan}",
                self.closed_to
            ));
        }
        for (i, core) in self.cores.iter().enumerate() {
            let total = core.total();
            if total != makespan {
                return Err(format!(
                    "core {i}: bins sum to {total}, makespan is {makespan}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(format!("{c}"), "0");
    }

    #[test]
    fn distribution_tracks_extremes_and_mean() {
        let mut d = Distribution::new();
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.min(), None);
        for x in [2.0, 4.0, 6.0] {
            d.record(x);
        }
        assert_eq!(d.count(), 3);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert_eq!(d.min(), Some(2.0));
        assert_eq!(d.max(), Some(6.0));
    }

    #[test]
    fn distribution_merge() {
        let mut a = Distribution::new();
        a.record(1.0);
        let mut b = Distribution::new();
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(9.0));
        let empty = Distribution::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn distribution_display_nonempty() {
        let mut d = Distribution::new();
        assert_eq!(format!("{d}"), "n=0");
        d.record(3.0);
        assert!(format!("{d}").contains("n=1"));
    }

    /// Regression: a derived `Default` would start min/max at 0.0, so a
    /// first sample of 5.0 reported min=0.0. `Default` must match
    /// `new()` (±∞ extremes) bit for bit.
    #[test]
    fn distribution_default_matches_new() {
        let mut d = Distribution::default();
        d.record(5.0);
        assert_eq!(d.min(), Some(5.0));
        assert_eq!(d.max(), Some(5.0));
        assert_eq!(Distribution::default(), Distribution::new());
    }

    #[test]
    fn histogram_buckets_values_by_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_of(lo), b);
            if b < 64 {
                assert_eq!(Histogram::bucket_of(hi), b + 1);
            }
        }
    }

    #[test]
    fn histogram_merge_is_exact() {
        let samples = [0u64, 1, 1, 7, 8, 1000, u64::MAX];
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let (left, right) = samples.split_at(3);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &s in left {
            a.record(s);
        }
        for &s in right {
            b.record(s);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), samples.len() as u64);
        assert_eq!(a.sum(), samples.iter().map(|&s| s as u128).sum());
    }

    #[test]
    fn histogram_quantile_bound_brackets_samples() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_bound(0.5), None);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        // The p50 bucket bound must cover at least half the samples.
        let p50 = h.quantile_bound(0.5).unwrap();
        assert!((2..100).contains(&p50), "p50 bound {p50}");
        assert_eq!(h.quantile_bound(1.0), Some(128));
    }

    #[test]
    fn registry_is_deterministic_and_merges() {
        let mut a = MetricsRegistry::new();
        a.add("zeta", 2);
        a.add("alpha", 1);
        a.record("lat", 4);
        let mut b = MetricsRegistry::new();
        b.add("alpha", 10);
        b.record("lat", 8);
        b.record("depth", 1);
        a.merge(&b);
        let names: Vec<_> = a.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["alpha", "zeta"], "lexicographic order");
        assert_eq!(a.counter("alpha"), 11);
        assert_eq!(a.counter("missing"), 0);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("lat").unwrap().sum(), 12);
        assert_eq!(a.histogram("depth").unwrap().count(), 1);
    }

    #[test]
    fn accounting_closes_every_cycle() {
        let mut acct = CycleAccounting::new(2);
        acct.charge(0, CycleBin::Useful, 70);
        acct.charge(0, CycleBin::Memory, 30);
        acct.charge(1, CycleBin::Worklist, 40);
        assert!(acct.verify_closed(100).is_err(), "not yet closed");
        acct.close(100);
        acct.verify_closed(100).unwrap();
        assert_eq!(acct.core(0).get(CycleBin::Drain), 0);
        assert_eq!(acct.core(1).get(CycleBin::Drain), 60);
        assert_eq!(acct.bin_total(CycleBin::Drain), 60);
        assert_eq!(acct.merged().total(), 200);
        assert!(acct.verify_closed(99).is_err(), "wrong makespan rejected");
    }

    #[test]
    #[should_panic(expected = "past makespan")]
    fn accounting_rejects_overcharged_core() {
        let mut acct = CycleAccounting::new(1);
        acct.charge(0, CycleBin::Useful, 10);
        acct.close(5);
    }
}

//! Lightweight statistics counters shared by all models.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running statistics over a stream of samples: count, sum, min, max, mean.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Distribution {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Distribution {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &Distribution) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.2} min={:.2} max={:.2}",
                self.count, self.mean(), self.min, self.max
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(format!("{c}"), "0");
    }

    #[test]
    fn distribution_tracks_extremes_and_mean() {
        let mut d = Distribution::new();
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.min(), None);
        for x in [2.0, 4.0, 6.0] {
            d.record(x);
        }
        assert_eq!(d.count(), 3);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert_eq!(d.min(), Some(2.0));
        assert_eq!(d.max(), Some(6.0));
    }

    #[test]
    fn distribution_merge() {
        let mut a = Distribution::new();
        a.record(1.0);
        let mut b = Distribution::new();
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(9.0));
        let empty = Distribution::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn distribution_display_nonempty() {
        let mut d = Distribution::new();
        assert_eq!(format!("{d}"), "n=0");
        d.record(3.0);
        assert!(format!("{d}").contains("n=1"));
    }
}

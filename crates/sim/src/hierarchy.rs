//! The full CMP memory hierarchy: per-core L1D and L2, a shared banked L3,
//! the mesh NoC between tiles, and multi-channel DRAM behind the L3.
//!
//! This is the component the Minnow engine plugs into: engines access memory
//! *through their core's L2* (paper §4), demand accesses consume prefetch
//! bits and return credits (§5.3.1), and cross-core sharing is modeled with a
//! directory that invalidates remote private copies on writes — which is what
//! makes worklist cache lines ping-pong and atomic-heavy workloads (PR)
//! expensive.
//!
//! The model is a *presence + virtual time* simulation: it answers "how long
//! does this access take starting at cycle `now`, and what happened in the
//! caches", leaving instruction-level overlap to [`crate::core`].

use fxhash::FxMap64;

use crate::cache::Cache;
use crate::config::SimConfig;
use crate::cycles::Cycle;
use crate::dram::Dram;
use crate::noc::{self, Noc};
use crate::stats::MetricsRegistry;
use crate::trace::{TraceEvent, Tracer};
use crate::weave::{SharedFabric, WeaveClient};

/// Marks a `prefetch_ready` arrival value as "still being computed by the
/// weave"; the low bits then hold the fetch's sequence number. Real arrival
/// cycles never reach this bit.
const PREFETCH_PENDING_TAG: u64 = 1 << 63;

/// Kind of demand access issued by a worker core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A normal load.
    Load,
    /// A normal store (write-allocate).
    Store,
    /// An atomic read-modify-write (x86 `lock`-prefixed). Serializing
    /// (fence) effects are applied by the core model; here it behaves as a
    /// store with ownership acquisition.
    Atomic,
}

impl AccessKind {
    /// Whether the access writes the line.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store | AccessKind::Atomic)
    }
}

/// Which level serviced a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheLevel {
    /// Hit in the core's L1D.
    L1,
    /// Hit in the core's private L2.
    L2,
    /// Hit in the shared L3.
    L3,
    /// Serviced by DRAM.
    Memory,
}

/// Outcome of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles from issue to data return.
    pub latency: Cycle,
    /// Level that serviced the access.
    pub level: CacheLevel,
    /// The access consumed a line that the Minnow prefetcher had marked in
    /// this core's L2 (one credit returns to this core's engine).
    pub prefetch_consumed: bool,
}

/// Outcome of a Minnow prefetch fill into a core's L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchResult {
    /// Cycles until the line is resident in L2 (L3/DRAM fetch time).
    pub latency: Cycle,
    /// A new line was filled and marked; the engine must consume a credit.
    /// `false` means the line was already resident (no credit consumed).
    pub filled: bool,
    /// Level the data came from.
    pub level: CacheLevel,
}

/// Per-core demand traffic statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreMemStats {
    /// Demand accesses issued.
    pub accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses (the paper's MPKI numerator, Fig. 18).
    pub l2_misses: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
    /// Minnow-engine accesses (worklist spills/fills through the L2);
    /// tracked separately so core MPKI reflects worker demand traffic.
    pub engine_accesses: u64,
    /// Engine accesses that missed the L2.
    pub engine_l2_misses: u64,
}

/// Outcome of [`MemoryHierarchy::access_deferred`]: either a fully resolved
/// access, or one whose shared-fetch leg is still in flight on the weave.
#[derive(Debug, Clone, Copy)]
pub struct DeferredAccess {
    /// When `pending` is `None` this is the final result. When the fetch is
    /// deferred, `latency` holds only the private-side portion (L2 +
    /// coherence) and `level` is a placeholder — add the fetch's `beyond`
    /// latency and take its level once resolved.
    pub result: AccessResult,
    /// Sequence number of the in-flight shared fetch, to be settled with
    /// [`MemoryHierarchy::take_beyond`] or
    /// [`MemoryHierarchy::resolve_beyond`].
    pub pending: Option<u64>,
}

/// Outcome of [`MemoryHierarchy::prefetch_fill_deferred`].
#[derive(Debug, Clone, Copy)]
pub enum PrefetchIssue {
    /// Line already resident in the L2: nothing fetched, no credit consumed.
    Resident,
    /// Fill serviced synchronously (inline fabric): full result available.
    Filled(PrefetchResult),
    /// Fill issued to the weave; it completes at
    /// `issue time + base + beyond(seq)`.
    Deferred {
        /// Sequence number to settle via
        /// [`MemoryHierarchy::take_beyond`]/[`MemoryHierarchy::resolve_beyond`].
        seq: u64,
        /// Private-side latency ahead of the shared fetch (the L2 leg).
        base: Cycle,
        /// Sound lower bound on the fetch's `beyond` latency (uncontended
        /// single-hop L3 round trip); `base + min_beyond` lower-bounds the
        /// full fill latency.
        min_beyond: Cycle,
    },
}

/// A settled shared fetch parked until its consumer collects it.
#[derive(Debug, Clone, Copy)]
struct ResolvedFetch {
    beyond: Cycle,
    level: CacheLevel,
}

impl Default for ResolvedFetch {
    fn default() -> Self {
        ResolvedFetch {
            beyond: 0,
            level: CacheLevel::L1,
        }
    }
}

/// Deferred `prefetch_ready` arrival awaiting its weave reply.
#[derive(Debug, Clone, Copy)]
struct PrefetchPatch {
    core: u32,
    line: u64,
    seq: u64,
    issued_at: Cycle,
}

/// The shared L3/NoC/DRAM half of the hierarchy: carried inline on the
/// executor thread (the serial oracle path) or by a dedicated weave thread
/// (bound-weave mode, see [`crate::weave`]).
#[derive(Debug)]
enum Fabric {
    /// Shared state lives on the calling thread; every fetch resolves
    /// synchronously. This is today's serial path, bit for bit. Boxed:
    /// the fabric is ~1.5 KB while the other variants are pointer-sized.
    Inline(Box<SharedFabric>),
    /// Shared state lives on the weave thread; fetches are recorded as
    /// ordered events and resolved at barriers.
    Threaded(Box<WeaveClient>),
    /// Transient marker while the fabric moves between modes.
    Moving,
}

/// The complete memory subsystem of the simulated CMP.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    fabric: Fabric,
    l1_latency: Cycle,
    l2_latency: Cycle,
    l3_latency: Cycle,
    cores: usize,
    /// Shared `log2(line_bytes)` of every cache level: all levels use one
    /// line size, so a demand address is decomposed to its line address
    /// exactly once and the parts flow down L1→L2→L3 (see
    /// [`crate::cache::AddrParts`]).
    line_shift: u32,
    /// Directory: line address -> bitmask of cores with a private copy.
    /// Point-access only (never iterated), so the deterministic
    /// open-addressed map is observationally identical to a `HashMap`.
    directory: FxMap64<u64>,
    /// Prefetch credits freed since the last drain (demand consumption,
    /// eviction, or remote invalidation of a marked line), per core.
    pending_credits: Vec<u64>,
    /// Arrival times of in-flight prefetches: a demand access that consumes
    /// a marked line before its fill has arrived stalls until it does.
    prefetch_ready: Vec<FxMap64<Cycle>>,
    /// Marked lines lost to remote-write invalidations (vs capacity
    /// evictions), for prefetch-efficiency diagnosis.
    prefetch_invalidated: u64,
    core_stats: Vec<CoreMemStats>,
    /// Structured event sink; disabled by default (zero timing impact
    /// either way — tracing only observes).
    tracer: Tracer,
    /// Mesh geometry copies so coherence costs (pure functions of tile
    /// distance) stay computable while the NoC lives on the weave thread.
    mesh_width: usize,
    hop_cycles: Cycle,
    /// Settled weave fetches awaiting their consumer (charge barrier, WDP
    /// load-buffer, prefetch-arrival patches).
    resolved: FxMap64<ResolvedFetch>,
    /// Tagged `prefetch_ready` entries to rewrite with real arrival times
    /// at the next drain.
    prefetch_patches: Vec<PrefetchPatch>,
}

impl MemoryHierarchy {
    /// Builds a cold hierarchy for the given machine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0` or `cfg.cores > 64` (the directory uses a
    /// 64-bit sharer mask, matching the paper's 64-core machine).
    pub fn new(cfg: &SimConfig) -> Self {
        assert!(cfg.cores > 0 && cfg.cores <= 64, "1..=64 cores supported");
        assert!(
            cfg.l1d.line_bytes == cfg.l2.line_bytes && cfg.l2.line_bytes == cfg.l3.line_bytes,
            "all cache levels must share one line size"
        );
        MemoryHierarchy {
            l1: (0..cfg.cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: (0..cfg.cores).map(|_| Cache::new(cfg.l2)).collect(),
            fabric: Fabric::Inline(Box::new(SharedFabric {
                l3: Cache::new(cfg.l3),
                noc: Noc::new(cfg.mesh_width, cfg.noc_hop_cycles, cfg.noc_link_bytes),
                dram: Dram::new(cfg.mem_channels, cfg.mem_latency, cfg.mem_channel_service),
                l3_latency: cfg.l3.latency,
            })),
            l1_latency: cfg.l1d.latency,
            l2_latency: cfg.l2.latency,
            l3_latency: cfg.l3.latency,
            cores: cfg.cores,
            line_shift: cfg.l1d.line_bytes.trailing_zeros(),
            directory: FxMap64::new(),
            pending_credits: vec![0; cfg.cores],
            prefetch_ready: vec![FxMap64::new(); cfg.cores],
            prefetch_invalidated: 0,
            core_stats: vec![CoreMemStats::default(); cfg.cores],
            tracer: Tracer::disabled(),
            mesh_width: cfg.mesh_width,
            hop_cycles: cfg.noc_hop_cycles,
            resolved: FxMap64::new(),
            prefetch_patches: Vec::new(),
        }
    }

    // ---- bound-weave control ---------------------------------------------

    /// Moves the shared fabric (L3/NoC/DRAM) onto `lanes` dedicated weave
    /// threads (the sharded ticket-scoreboard engine in [`crate::weave`];
    /// `lanes == 1` is the degenerate single-thread weave).
    ///
    /// Returns `false` — leaving the serial inline path active — when a
    /// tracer is installed: trace capture observes shared-fetch internals
    /// in emission order, so traced points always run on the serial oracle
    /// path (their output is identical either way by the determinism
    /// contract, so nothing is lost). Also refuses meshes wider than the
    /// sharded engine's fixed-size route plans cover (anything past the
    /// paper's 8x8 — never reached by the stock configs).
    ///
    /// `max_inflight` bounds outstanding fetches before the front
    /// self-drains; like `lanes` it is pure flow control and never changes
    /// simulated outcomes (`tests/props.rs` pins that).
    pub fn enable_weave(&mut self, max_inflight: usize, lanes: usize) -> bool {
        if self.tracer.is_enabled() {
            return false;
        }
        if matches!(self.fabric, Fabric::Threaded(_)) {
            return true;
        }
        let Fabric::Inline(fabric) = std::mem::replace(&mut self.fabric, Fabric::Moving) else {
            unreachable!("fabric present outside transitions");
        };
        if !fabric.supports_sharding() {
            self.fabric = Fabric::Inline(fabric);
            return false;
        }
        self.fabric = Fabric::Threaded(Box::new(WeaveClient::spawn(*fabric, max_inflight, lanes)));
        true
    }

    /// Whether the shared fabric currently lives on a weave thread.
    pub fn weave_active(&self) -> bool {
        matches!(self.fabric, Fabric::Threaded(_))
    }

    /// Weave lane threads currently serving the shared fabric (`0` on the
    /// serial inline path). Executors report this as `lane_threads_used`.
    pub fn weave_lanes(&self) -> usize {
        match &self.fabric {
            Fabric::Threaded(client) => client.lanes(),
            _ => 0,
        }
    }

    /// Barrier: blocks until every recorded shared fetch has been replayed
    /// by the weave, parks the results for their consumers, and rewrites
    /// deferred prefetch arrival times. No-op on the inline path.
    pub fn drain_weave(&mut self) {
        {
            let Fabric::Threaded(client) = &mut self.fabric else {
                return;
            };
            for r in client.drain() {
                if r.level == CacheLevel::Memory {
                    self.core_stats[r.core as usize].l3_misses += 1;
                }
                self.resolved.insert(
                    r.seq,
                    ResolvedFetch {
                        beyond: r.beyond,
                        level: r.level,
                    },
                );
            }
        }
        // Every tagged arrival issued since the last drain is now resolved;
        // rewrite the ones whose lines are still marked (entries evicted or
        // re-prefetched in the meantime are skipped by the tag comparison).
        while let Some(p) = self.prefetch_patches.pop() {
            let Some(r) = self.resolved.get(p.seq) else {
                continue;
            };
            let arrival = p.issued_at + self.l2_latency + r.beyond;
            if let Some(v) = self.prefetch_ready[p.core as usize].get_mut(p.line) {
                if *v == PREFETCH_PENDING_TAG | p.seq {
                    *v = arrival;
                }
            }
        }
    }

    /// Finishes bound-weave mode: drains, joins the weave thread, and
    /// brings the fabric back inline so stats accessors work again. No-op
    /// when already inline.
    pub fn finish_weave(&mut self) {
        if !self.weave_active() {
            return;
        }
        self.drain_weave();
        let Fabric::Threaded(client) = std::mem::replace(&mut self.fabric, Fabric::Moving) else {
            unreachable!("weave_active checked");
        };
        self.fabric = Fabric::Inline(Box::new(client.finish()));
        // Fetches whose consumer never returned (e.g. a WDP load buffer
        // still holding entries at the end of the run) are dropped here.
        self.resolved.clear();
    }

    /// Collects a settled shared fetch if its reply has arrived, consuming
    /// it. Never blocks.
    pub fn take_beyond(&mut self, seq: u64) -> Option<(Cycle, CacheLevel)> {
        self.resolved.remove(seq).map(|r| (r.beyond, r.level))
    }

    /// Collects a settled shared fetch, draining the weave first if its
    /// reply is still in flight.
    pub fn resolve_beyond(&mut self, seq: u64) -> (Cycle, CacheLevel) {
        if let Some(r) = self.take_beyond(seq) {
            return r;
        }
        self.drain_weave();
        self.take_beyond(seq)
            .expect("an issued fetch resolves after a drain")
    }

    /// Sound lower bound on any fetch's latency beyond the private caches:
    /// one uncontended NoC hop each way around an L3 hit.
    pub fn min_beyond_latency(&self) -> Cycle {
        2 * self.hop_cycles + self.l3_latency
    }

    /// The private L2 access latency (the fixed leg ahead of every shared
    /// fetch).
    pub fn l2_latency(&self) -> Cycle {
        self.l2_latency
    }

    /// The inline fabric, for accessors that read shared state directly.
    fn fabric_inline(&self) -> &SharedFabric {
        match &self.fabric {
            Fabric::Inline(f) => f,
            _ => panic!("shared-fabric state is on the weave thread; call finish_weave() first"),
        }
    }

    fn fabric_inline_mut(&mut self) -> &mut SharedFabric {
        match &mut self.fabric {
            Fabric::Inline(f) => f,
            _ => panic!("shared-fabric state is on the weave thread; call finish_weave() first"),
        }
    }

    /// Records one shared-fetch event in canonical order; the weave replays
    /// it against the fabric. Threaded mode only.
    fn issue_fetch(&mut self, core: usize, line: u64, now: Cycle) -> u64 {
        let bank = self.bank_of(line);
        let Fabric::Threaded(client) = &mut self.fabric else {
            unreachable!("issue_fetch requires the weave");
        };
        client.issue(core, bank, line, now)
    }

    /// Flow control: drains when the front has run too far ahead of the
    /// weave. Outcome-neutral by construction.
    fn drain_if_over_cap(&mut self) {
        if let Fabric::Threaded(client) = &self.fabric {
            if client.over_cap() {
                self.drain_weave();
            }
        }
    }

    /// Number of cores this hierarchy serves.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Installs a tracer; the hierarchy and anything that clones the
    /// handle via [`MemoryHierarchy::tracer`] (executors, prefetch
    /// pipelines) will report structured events into it.
    ///
    /// # Panics
    ///
    /// Panics if the weave is active: tracing observes shared-fetch
    /// internals in emission order, so the tracer must be installed before
    /// [`MemoryHierarchy::enable_weave`] decides the execution mode.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        assert!(
            !self.weave_active() || !tracer.is_enabled(),
            "install the tracer before enabling the weave"
        );
        self.tracer = tracer;
    }

    /// The installed tracer handle (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// L3 bank (tile) holding a line — used for NoC distance.
    fn bank_of(&self, line_addr: u64) -> usize {
        (line_addr.wrapping_mul(0x517C_C1B7_2722_0A95) % self.cores as u64) as usize
    }

    /// Demand access from `core` at virtual time `now`.
    pub fn access(&mut self, core: usize, addr: u64, kind: AccessKind, now: Cycle) -> AccessResult {
        self.access_inner(core, addr, kind, now, false).result
    }

    /// Demand access that may leave its shared-fetch leg in flight on the
    /// weave (bound-weave mode; identical to [`MemoryHierarchy::access`] on
    /// the inline path). Used by the executors' charge loop, which folds
    /// deferred latencies back in at the task barrier.
    pub fn access_deferred(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
        now: Cycle,
    ) -> DeferredAccess {
        self.access_inner(core, addr, kind, now, true)
    }

    fn access_inner(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
        now: Cycle,
        defer: bool,
    ) -> DeferredAccess {
        debug_assert!(core < self.cores);
        let write = kind.is_write();
        // One decomposition for every level (the line address doubles as
        // the tag, the directory key, and the prefetch-arrival key).
        let line = addr >> self.line_shift;
        let stats = &mut self.core_stats[core];
        stats.accesses += 1;

        // L1.
        let l1 = self.l1[core].access_line(line, write);
        if l1.hit {
            // The data is hot in L1, but a (re-)prefetched copy may still be
            // marked in L2: consume the mark so its credit recycles instead
            // of pinning the pool (paper §5.3.1: accessed marked lines
            // return their credit).
            let mut prefetch_consumed = false;
            if self.l2[core].consume_mark_line(line) {
                self.pending_credits[core] += 1;
                self.prefetch_ready[core].remove(line);
                prefetch_consumed = true;
            }
            let mut latency = self.l1_latency;
            if write {
                latency += self.ownership_cost(core, line, now);
            }
            return DeferredAccess {
                result: AccessResult {
                    latency,
                    level: CacheLevel::L1,
                    prefetch_consumed,
                },
                pending: None,
            };
        }
        self.core_stats[core].l1_misses += 1;

        // L2 (where Minnow prefetch bits live).
        let l2 = self.l2[core].access_line(line, write);
        if l2.hit {
            self.fill_private(core, line, write, FillDepth::L1Only, now);
            let mut latency = self.l2_latency;
            if l2.prefetch_consumed {
                self.pending_credits[core] += 1;
                latency = latency.max(self.hit_under_miss_stall(core, line, now));
            }
            if write {
                latency += self.ownership_cost(core, line, now);
            }
            return DeferredAccess {
                result: AccessResult {
                    latency,
                    level: CacheLevel::L2,
                    prefetch_consumed: l2.prefetch_consumed,
                },
                pending: None,
            };
        }
        self.core_stats[core].l2_misses += 1;

        // Beyond the private caches. In bound-weave mode the fetch is
        // recorded for the weave and resolved later: the private-side fill,
        // directory update, and coherence cost do not depend on the fetch's
        // latency, so they proceed immediately in serial order.
        if defer && self.weave_active() {
            let seq = self.issue_fetch(core, line, now + self.l2_latency);
            self.fill_private(core, line, write, FillDepth::L1AndL2, now);
            self.directory_add_sharer(core, line);
            let mut latency = self.l2_latency;
            if write {
                latency += self.ownership_cost(core, line, now);
            }
            self.drain_if_over_cap();
            return DeferredAccess {
                result: AccessResult {
                    latency,
                    level: CacheLevel::L3, // placeholder; settled with the fetch
                    prefetch_consumed: false,
                },
                pending: Some(seq),
            };
        }
        let (beyond_latency, level) = self.fetch_from_shared(core, line, now + self.l2_latency);
        self.fill_private(core, line, write, FillDepth::L1AndL2, now);
        self.directory_add_sharer(core, line);
        let mut latency = self.l2_latency + beyond_latency;
        if write {
            latency += self.ownership_cost(core, line, now);
        }
        DeferredAccess {
            result: AccessResult {
                latency,
                level,
                prefetch_consumed: false,
            },
            pending: None,
        }
    }

    /// Minnow engine prefetch: fetch `addr` into `core`'s L2, marking the
    /// line. Does not touch L1 (the engine attaches at L2, paper §4).
    pub fn prefetch_fill(&mut self, core: usize, addr: u64, now: Cycle) -> PrefetchResult {
        debug_assert!(core < self.cores);
        let line = addr >> self.line_shift;
        if self.l2[core].probe_line(line) {
            return PrefetchResult {
                latency: self.l2_latency,
                filled: false,
                level: CacheLevel::L2,
            };
        }
        let (beyond_latency, level) = self.fetch_from_shared(core, line, now + self.l2_latency);
        if let Some(ev) = self.l2[core].fill_line(line, false, true) {
            if ev.prefetch_unused {
                self.pending_credits[core] += 1;
                self.prefetch_ready[core].remove(ev.line_addr);
            }
            self.directory_remove_sharer_line(core, ev.line_addr);
            let line = ev.line_addr;
            let unused = ev.prefetch_unused as u64;
            self.tracer.emit(|| {
                TraceEvent::instant("evict", "cache", core as u32, now)
                    .with_arg("line", line)
                    .with_arg("prefetch_unused", unused)
            });
        }
        self.directory_add_sharer(core, line);
        let latency = self.l2_latency + beyond_latency;
        // The line is marked resident now, but its data only arrives at
        // `now + latency`; early demand consumers stall until then.
        self.prefetch_ready[core].insert(line, now + latency);
        self.tracer.emit(|| {
            TraceEvent::complete("fill", "cache", core as u32, now, latency).with_arg("line", line)
        });
        PrefetchResult {
            latency,
            filled: true,
            level,
        }
    }

    /// [`MemoryHierarchy::prefetch_fill`] that may leave its shared-fetch
    /// leg on the weave. The line is marked resident immediately (serial
    /// order is preserved); its `prefetch_ready` arrival time is tagged
    /// with the fetch's sequence number and rewritten with the real value
    /// at the next drain (early demand consumers force that drain via
    /// [`Self::prefetch_arrival_stall`]).
    pub fn prefetch_fill_deferred(&mut self, core: usize, addr: u64, now: Cycle) -> PrefetchIssue {
        if !self.weave_active() {
            let res = self.prefetch_fill(core, addr, now);
            return if res.filled {
                PrefetchIssue::Filled(res)
            } else {
                PrefetchIssue::Resident
            };
        }
        debug_assert!(core < self.cores);
        let line = addr >> self.line_shift;
        if self.l2[core].probe_line(line) {
            return PrefetchIssue::Resident;
        }
        let seq = self.issue_fetch(core, line, now + self.l2_latency);
        if let Some(ev) = self.l2[core].fill_line(line, false, true) {
            if ev.prefetch_unused {
                self.pending_credits[core] += 1;
                self.prefetch_ready[core].remove(ev.line_addr);
            }
            self.directory_remove_sharer_line(core, ev.line_addr);
            // No tracer emission: traced points never enable the weave.
        }
        self.directory_add_sharer(core, line);
        self.prefetch_ready[core].insert(line, PREFETCH_PENDING_TAG | seq);
        self.prefetch_patches.push(PrefetchPatch {
            core: core as u32,
            line,
            seq,
            issued_at: now,
        });
        self.drain_if_over_cap();
        PrefetchIssue::Deferred {
            seq,
            base: self.l2_latency,
            min_beyond: self.min_beyond_latency(),
        }
    }

    /// Engine-side demand load through the core's L2 (worklist spill/fill
    /// traffic). Consumes prefetch bits like any demand access but never
    /// touches L1.
    pub fn engine_access(
        &mut self,
        core: usize,
        addr: u64,
        kind: AccessKind,
        now: Cycle,
    ) -> AccessResult {
        debug_assert!(core < self.cores);
        let write = kind.is_write();
        let line = addr >> self.line_shift;
        self.core_stats[core].engine_accesses += 1;
        let l2 = self.l2[core].access_line(line, write);
        if l2.hit {
            let mut latency = self.l2_latency;
            if l2.prefetch_consumed {
                self.pending_credits[core] += 1;
                latency = latency.max(self.hit_under_miss_stall(core, line, now));
            }
            if write {
                latency += self.ownership_cost(core, line, now);
            }
            return AccessResult {
                latency,
                level: CacheLevel::L2,
                prefetch_consumed: l2.prefetch_consumed,
            };
        }
        self.core_stats[core].engine_l2_misses += 1;
        let (beyond_latency, level) = self.fetch_from_shared(core, line, now + self.l2_latency);
        if let Some(ev) = self.l2[core].fill_line(line, write, false) {
            if ev.prefetch_unused {
                self.pending_credits[core] += 1;
                self.prefetch_ready[core].remove(ev.line_addr);
            }
            self.directory_remove_sharer_line(core, ev.line_addr);
            let line = ev.line_addr;
            let unused = ev.prefetch_unused as u64;
            self.tracer.emit(|| {
                TraceEvent::instant("evict", "cache", core as u32, now)
                    .with_arg("line", line)
                    .with_arg("prefetch_unused", unused)
            });
        }
        self.directory_add_sharer(core, line);
        let mut latency = self.l2_latency + beyond_latency;
        if write {
            latency += self.ownership_cost(core, line, now);
        }
        AccessResult {
            latency,
            level,
            prefetch_consumed: l2.prefetch_consumed,
        }
    }

    // ---- speculative private probes --------------------------------------

    /// Opens a speculative probe window over `core`'s private L1/L2 (see
    /// [`Cache::begin_spec`]). Within the window,
    /// [`MemoryHierarchy::spec_probe_private`] replays the private-cache leg
    /// of demand accesses with every mutation journaled;
    /// [`MemoryHierarchy::rollback_spec_probe`] restores both caches
    /// bit-for-bit. The shared fabric, directory, credit pool, and per-core
    /// stats are deliberately out of scope — speculation stops at the first
    /// shared-fabric touch, and the committed (post-validation) charge
    /// replays the real path for all of them.
    pub fn begin_spec_probe(&mut self, core: usize) {
        debug_assert!(core < self.cores);
        self.l1[core].begin_spec();
        self.l2[core].begin_spec();
    }

    /// The private L1/L2 leg of [`MemoryHierarchy::access`] inside a probe
    /// window: same lookup/fill/mark decisions against the same SoA arrays,
    /// journaled for rollback. Returns the level that would service the
    /// access, with `CacheLevel::L3` standing in for "beyond the private
    /// caches" (the probe does not consult the shared fabric).
    pub fn spec_probe_private(&mut self, core: usize, addr: u64, kind: AccessKind) -> CacheLevel {
        debug_assert!(core < self.cores);
        let write = kind.is_write();
        let line = addr >> self.line_shift;
        let l1 = self.l1[core].spec_access_line(line, write);
        if l1.hit {
            // The demand path consumes a lingering L2 mark on L1 hits.
            self.l2[core].spec_consume_mark_line(line);
            return CacheLevel::L1;
        }
        let l2 = self.l2[core].spec_access_line(line, write);
        if l2.hit {
            self.l1[core].spec_fill_line(line, write, false);
            return CacheLevel::L2;
        }
        // Beyond the private caches: fill both levels exactly as the demand
        // path would after the shared fetch returns.
        self.l2[core].spec_fill_line(line, write, false);
        self.l1[core].spec_fill_line(line, write, false);
        CacheLevel::L3
    }

    /// Closes `core`'s probe window, restoring its L1 and L2 bit-for-bit.
    pub fn rollback_spec_probe(&mut self, core: usize) {
        self.l1[core].rollback_spec();
        self.l2[core].rollback_spec();
    }

    /// Combined digest of `core`'s private L1/L2 state, for asserting that
    /// a probe window left no trace (`MINNOW_SPEC_CHECK`).
    pub fn spec_private_checksum(&self, core: usize) -> u64 {
        self.l1[core].spec_checksum().rotate_left(17) ^ self.l2[core].spec_checksum()
    }

    /// Drains prefetch credits returned to `core`'s engine by evictions and
    /// remote invalidations since the last drain.
    pub fn drain_returned_credits(&mut self, core: usize) -> u64 {
        std::mem::take(&mut self.pending_credits[core])
    }

    /// Per-core demand statistics.
    pub fn core_stats(&self, core: usize) -> &CoreMemStats {
        &self.core_stats[core]
    }

    /// Sums demand statistics across cores.
    pub fn total_stats(&self) -> CoreMemStats {
        let mut t = CoreMemStats::default();
        for s in &self.core_stats {
            t.accesses += s.accesses;
            t.l1_misses += s.l1_misses;
            t.l2_misses += s.l2_misses;
            t.l3_misses += s.l3_misses;
            t.engine_accesses += s.engine_accesses;
            t.engine_l2_misses += s.engine_l2_misses;
        }
        t
    }

    /// The L2 cache of one core (prefetch-efficiency stats live here).
    pub fn l2_cache(&self, core: usize) -> &Cache {
        &self.l2[core]
    }

    /// The shared L3 cache.
    ///
    /// # Panics
    ///
    /// Panics while the weave is active (the L3 lives on the weave thread);
    /// call [`MemoryHierarchy::finish_weave`] first.
    pub fn l3_cache(&self) -> &Cache {
        &self.fabric_inline().l3
    }

    /// Marked (prefetched, unused) lines lost to remote-write invalidations.
    pub fn prefetch_invalidated(&self) -> u64 {
        self.prefetch_invalidated
    }

    /// The DRAM model (for bandwidth/queueing stats).
    ///
    /// # Panics
    ///
    /// Panics while the weave is active; call
    /// [`MemoryHierarchy::finish_weave`] first.
    pub fn dram(&self) -> &Dram {
        &self.fabric_inline().dram
    }

    /// The NoC model (for congestion stats).
    ///
    /// # Panics
    ///
    /// Panics while the weave is active; call
    /// [`MemoryHierarchy::finish_weave`] first.
    pub fn noc(&self) -> &Noc {
        &self.fabric_inline().noc
    }

    /// Snapshots hierarchy-wide metrics into a labeled registry:
    /// demand/engine traffic counters, prefetch health, and the DRAM
    /// and NoC queueing histograms. Labels are stable and sorted, so
    /// two snapshots of identical runs compare equal.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let t = self.total_stats();
        reg.set("mem.accesses", t.accesses);
        reg.set("mem.l1_misses", t.l1_misses);
        reg.set("mem.l2_misses", t.l2_misses);
        reg.set("mem.l3_misses", t.l3_misses);
        reg.set("mem.engine_accesses", t.engine_accesses);
        reg.set("mem.engine_l2_misses", t.engine_l2_misses);
        reg.set("mem.prefetch_invalidated", self.prefetch_invalidated);
        let fabric = self.fabric_inline();
        reg.set("dram.accesses", fabric.dram.accesses());
        reg.set("noc.packets", fabric.noc.packets());
        reg.set("noc.hops", fabric.noc.total_hops());
        reg.insert_histogram("dram.queue_cycles", fabric.dram.queue_histogram().clone());
        reg.insert_histogram("noc.queue_cycles", fabric.noc.queue_histogram().clone());
        reg
    }

    /// Resets all statistics, keeping cache contents (post-warmup).
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.fabric_inline_mut().l3.reset_stats();
        for s in &mut self.core_stats {
            *s = CoreMemStats::default();
        }
    }

    // ---- internals -------------------------------------------------------

    /// Remaining cycles until an in-flight prefetch of `line` arrives in
    /// `core`'s L2 (0 when already arrived). Consumes the arrival record.
    fn prefetch_arrival_stall(&mut self, core: usize, line: u64, now: Cycle) -> Cycle {
        if let Some(v) = self.prefetch_ready[core].get(line) {
            // The fill is still in flight on the weave: barrier so the tag
            // is rewritten with the real arrival cycle before we read it.
            if *v & PREFETCH_PENDING_TAG != 0 {
                self.drain_weave();
            }
        }
        match self.prefetch_ready[core].remove(line) {
            Some(ready) => {
                debug_assert_eq!(ready & PREFETCH_PENDING_TAG, 0, "drain settles arrivals");
                ready.saturating_sub(now)
            }
            None => 0,
        }
    }

    /// [`Self::prefetch_arrival_stall`], tracing the hit-under-miss span
    /// when a demand access catches an in-flight prefetch.
    fn hit_under_miss_stall(&mut self, core: usize, line: u64, now: Cycle) -> Cycle {
        let stall = self.prefetch_arrival_stall(core, line, now);
        if stall > 0 {
            self.tracer.emit(|| {
                TraceEvent::complete("hit_under_miss", "cache", core as u32, now, stall)
                    .with_arg("line", line)
            });
        }
        stall
    }

    /// Fetches a line from L3/DRAM on behalf of `core`; returns (latency
    /// beyond the private caches, servicing level) and fills the L3.
    ///
    /// Synchronous in either mode: on the threaded path it records the event
    /// and immediately barriers (a round trip through the weave). Hot paths
    /// that can tolerate latency arriving later use
    /// [`Self::issue_fetch`]/[`Self::take_beyond`] instead.
    fn fetch_from_shared(&mut self, core: usize, line: u64, now: Cycle) -> (Cycle, CacheLevel) {
        let bank = self.bank_of(line);
        match &mut self.fabric {
            Fabric::Inline(fabric) => {
                let out = fabric.fetch(core, bank, line, now);
                if out.level == CacheLevel::Memory {
                    self.core_stats[core].l3_misses += 1;
                    if self.tracer.is_enabled() {
                        let queued = out.dram_queued;
                        let hops = out.noc_hops;
                        self.tracer.emit(|| {
                            TraceEvent::counter("dram_queue", "dram", core as u32, now, queued)
                        });
                        self.tracer
                            .emit(|| TraceEvent::counter("noc_hops", "noc", core as u32, now, hops));
                    }
                }
                (out.beyond, out.level)
            }
            Fabric::Threaded(_) => {
                let seq = self.issue_fetch(core, line, now);
                self.resolve_beyond(seq)
            }
            Fabric::Moving => unreachable!("fabric present outside transitions"),
        }
    }

    /// Fill the private caches after a hit at an outer level.
    fn fill_private(&mut self, core: usize, line: u64, write: bool, depth: FillDepth, now: Cycle) {
        if matches!(depth, FillDepth::L1AndL2) {
            if let Some(ev) = self.l2[core].fill_line(line, write, false) {
                if ev.prefetch_unused {
                    self.pending_credits[core] += 1;
                    self.prefetch_ready[core].remove(ev.line_addr);
                }
                self.directory_remove_sharer_line(core, ev.line_addr);
                let line = ev.line_addr;
                let unused = ev.prefetch_unused as u64;
                self.tracer.emit(|| {
                    TraceEvent::instant("evict", "cache", core as u32, now)
                        .with_arg("line", line)
                        .with_arg("prefetch_unused", unused)
                });
            }
        }
        self.l1[core].fill_line(line, write, false);
    }

    /// Write-ownership: invalidate other cores' private copies and charge a
    /// coherence round-trip when any existed.
    fn ownership_cost(&mut self, core: usize, line: u64, now: Cycle) -> Cycle {
        let Some(mask) = self.directory.get_mut(line) else {
            self.directory.insert(line, 1u64 << core);
            return 0;
        };
        let others = *mask & !(1u64 << core);
        if others == 0 {
            *mask |= 1u64 << core;
            return 0;
        }
        *mask = 1u64 << core;
        let mut cost = 0;
        let mut m = others;
        while m != 0 {
            let other = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(ev) = self.l2[other].invalidate_line(line) {
                if ev.prefetch_unused {
                    self.pending_credits[other] += 1;
                    self.prefetch_ready[other].remove(ev.line_addr);
                    self.prefetch_invalidated += 1;
                }
            }
            self.l1[other].invalidate_line(line);
            // One invalidation round-trip dominates; extra sharers add a
            // small serialization cost. Coherence cost is a pure function
            // of tile distance (no link reservations), so it stays on the
            // front even when the NoC lives on the weave thread.
            if cost == 0 {
                cost = noc::ideal_latency_between(self.mesh_width, self.hop_cycles, core, other) * 2
                    + self.l3_latency;
            } else {
                cost += 2;
            }
            let _ = now;
        }
        cost
    }

    fn directory_add_sharer(&mut self, core: usize, line: u64) {
        *self.directory.or_insert(line, 0) |= 1u64 << core;
    }

    fn directory_remove_sharer_line(&mut self, core: usize, line_addr: u64) {
        if let Some(mask) = self.directory.get_mut(line_addr) {
            *mask &= !(1u64 << core);
            if *mask == 0 {
                self.directory.remove(line_addr);
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum FillDepth {
    L1Only,
    L1AndL2,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(cores: usize) -> MemoryHierarchy {
        MemoryHierarchy::new(&SimConfig::small(cores))
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits_l1() {
        let mut m = hierarchy(2);
        let r = m.access(0, 0x4000, AccessKind::Load, 0);
        assert_eq!(r.level, CacheLevel::Memory);
        assert!(r.latency > 200);
        let r2 = m.access(0, 0x4000, AccessKind::Load, r.latency);
        assert_eq!(r2.level, CacheLevel::L1);
        assert_eq!(r2.latency, 4);
    }

    #[test]
    fn second_core_hits_in_l3() {
        let mut m = hierarchy(2);
        m.access(0, 0x4000, AccessKind::Load, 0);
        let r = m.access(1, 0x4000, AccessKind::Load, 500);
        assert_eq!(r.level, CacheLevel::L3);
    }

    #[test]
    fn write_invalidate_remote_copies() {
        let mut m = hierarchy(2);
        m.access(0, 0x4000, AccessKind::Load, 0);
        m.access(1, 0x4000, AccessKind::Load, 500);
        // Core 1 writes: core 0's copy must be invalidated.
        let w = m.access(1, 0x4000, AccessKind::Store, 1000);
        assert!(w.latency > 4, "ownership acquisition must cost extra");
        // Core 0's next access misses its private caches.
        let r = m.access(0, 0x4000, AccessKind::Load, 1500);
        assert!(matches!(r.level, CacheLevel::L3 | CacheLevel::Memory));
    }

    #[test]
    fn prefetch_fill_marks_l2_and_demand_consumes() {
        let mut m = hierarchy(2);
        let p = m.prefetch_fill(0, 0x8000, 0);
        assert!(p.filled);
        assert!(m.l2_cache(0).probe_prefetched(0x8000));
        let r = m.access(0, 0x8000, AccessKind::Load, p.latency);
        assert_eq!(r.level, CacheLevel::L2);
        assert!(r.prefetch_consumed);
        assert_eq!(m.l2_cache(0).stats().prefetch_used.get(), 1);
    }

    #[test]
    fn prefetch_of_resident_line_does_not_consume_credit() {
        let mut m = hierarchy(2);
        m.access(0, 0x8000, AccessKind::Load, 0);
        let p = m.prefetch_fill(0, 0x8000, 100);
        assert!(!p.filled);
        assert_eq!(p.level, CacheLevel::L2);
    }

    #[test]
    fn evicted_unused_prefetch_returns_credit() {
        let mut m = MemoryHierarchy::new(&SimConfig::small(1));
        // Fill one set of the scaled L2 (16KB, 8 ways, 32 sets) with
        // prefetches, then overflow it.
        let set_stride = 32 * 64; // sets * line
        for i in 0..9u64 {
            m.prefetch_fill(0, i * set_stride as u64, 0);
        }
        assert!(m.drain_returned_credits(0) >= 1);
        assert_eq!(m.drain_returned_credits(0), 0, "drain clears pending");
    }

    #[test]
    fn engine_access_skips_l1() {
        let mut m = hierarchy(2);
        let r = m.engine_access(0, 0xC000, AccessKind::Load, 0);
        assert_eq!(r.level, CacheLevel::Memory);
        // Line is in L2 but not L1.
        assert!(m.l2_cache(0).probe(0xC000));
        let r2 = m.engine_access(0, 0xC000, AccessKind::Load, r.latency);
        assert_eq!(r2.level, CacheLevel::L2);
    }

    #[test]
    fn stats_accumulate_per_core() {
        let mut m = hierarchy(2);
        m.access(0, 0x1000, AccessKind::Load, 0);
        m.access(0, 0x1000, AccessKind::Load, 400);
        m.access(1, 0x2000, AccessKind::Load, 0);
        let s0 = m.core_stats(0);
        assert_eq!(s0.accesses, 2);
        assert_eq!(s0.l2_misses, 1);
        let total = m.total_stats();
        assert_eq!(total.accesses, 3);
        assert_eq!(total.l2_misses, 2);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = hierarchy(1);
        m.access(0, 0x1000, AccessKind::Load, 0);
        m.reset_stats();
        assert_eq!(m.core_stats(0).accesses, 0);
        let r = m.access(0, 0x1000, AccessKind::Load, 500);
        assert_eq!(r.level, CacheLevel::L1, "contents survived the reset");
    }

    #[test]
    fn demand_consumption_returns_credit() {
        let mut m = hierarchy(2);
        let p = m.prefetch_fill(0, 0x8000, 0);
        assert!(p.filled);
        m.access(0, 0x8000, AccessKind::Load, p.latency + 10);
        assert_eq!(m.drain_returned_credits(0), 1);
    }

    #[test]
    fn early_access_stalls_until_prefetch_arrives() {
        let mut m = hierarchy(2);
        let p = m.prefetch_fill(0, 0x8000, 0);
        assert!(p.latency > 100, "cold prefetch must take a memory trip");
        // Worker touches the line immediately: it must wait ~the full fill.
        let early = m.access(0, 0x8000, AccessKind::Load, 5);
        assert!(
            early.latency >= p.latency - 5,
            "early hit {} must stall for fill {}",
            early.latency,
            p.latency
        );
        // A later re-access is a plain L1 hit (the first access filled L1).
        let late = m.access(0, 0x8000, AccessKind::Load, p.latency + 100);
        assert_eq!(late.latency, 4);
    }

    #[test]
    fn spec_probe_rolls_back_private_caches() {
        let mut m = hierarchy(2);
        // Warm a mix of levels, including a marked prefetch line.
        m.access(0, 0x1000, AccessKind::Load, 0);
        m.prefetch_fill(0, 0x8000, 100);
        let sum = m.spec_private_checksum(0);

        m.begin_spec_probe(0);
        assert_eq!(m.spec_probe_private(0, 0x1000, AccessKind::Load), CacheLevel::L1);
        assert_eq!(m.spec_probe_private(0, 0x8000, AccessKind::Load), CacheLevel::L2);
        assert_eq!(m.spec_probe_private(0, 0x2000, AccessKind::Store), CacheLevel::L3);
        assert_ne!(m.spec_private_checksum(0), sum, "probes must be observable");
        m.rollback_spec_probe(0);

        assert_eq!(m.spec_private_checksum(0), sum);
        assert!(m.l2_cache(0).probe_prefetched(0x8000), "mark restored");
        // The real demand path still behaves as if the probe never ran.
        let r = m.access(0, 0x8000, AccessKind::Load, 5000);
        assert!(r.prefetch_consumed);
    }

    #[test]
    fn atomic_counts_as_write() {
        assert!(AccessKind::Atomic.is_write());
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
    }
}

//! Bound-weave split of the memory hierarchy's shared half.
//!
//! ZSim-style bound-weave simulation separates per-core ("bound") state from
//! globally ordered shared ("weave") state. In this reproduction the split
//! runs through the middle of [`crate::hierarchy::MemoryHierarchy`]:
//!
//! * **Bound-owned (front)**: private L1/L2 caches, the sharer directory,
//!   prefetch credits and arrival table, per-core stats, schedulers and
//!   worklists. These are advanced by the executor thread in exact serial
//!   order.
//! * **Weave-owned**: the shared L3 array, the mesh NoC link reservations
//!   ([`crate::contend::GapTracker`] timelines), and the DRAM channel queues
//!   — everything a shared fetch touches beyond the private caches. This
//!   half is packaged as [`SharedFabric`] so it can be carried by a
//!   dedicated weave thread.
//!
//! The contract that keeps outputs byte-identical to the serial oracle:
//! the front emits fetch events in its (serial) execution order, each
//! stamped with a monotonically increasing sequence number, and the weave
//! consumes them strictly in that canonical `(timestamp, core, seq)` order
//! — which, because the front is a single linearized producer, is exactly
//! the order the serial simulator would have performed them. Disjoint state
//! ownership plus identical operation order means identical final state and
//! identical latencies; the only thing that changes is *when in host time*
//! the shared-fabric work happens, which is what buys the overlap.
//!
//! Replies flow back asynchronously and are folded in at *barriers*: the
//! end of each task's charge (before the core model runs), whenever shared
//! state must be read synchronously, and at fixed-length simulated-time
//! epoch boundaries driven by the executor (see
//! `minnow_runtime::sim_exec`).

use std::sync::mpsc;

use crate::cache::Cache;
use crate::cycles::Cycle;
use crate::dram::Dram;
use crate::hierarchy::CacheLevel;
use crate::noc::Noc;

/// The weave-owned half of the hierarchy: shared L3 + NoC + DRAM.
///
/// All methods are pure functions of fabric state and their arguments, so
/// processing the canonical event order on any thread reproduces the serial
/// state evolution exactly.
#[derive(Debug)]
pub(crate) struct SharedFabric {
    /// Shared banked L3.
    pub l3: Cache,
    /// Mesh NoC (per-link reservation timelines).
    pub noc: Noc,
    /// Multi-channel DRAM (per-channel queues).
    pub dram: Dram,
    /// L3 access latency (needed to time the DRAM leg of a fetch).
    pub l3_latency: Cycle,
}

/// What one shared fetch produced, in fabric-state order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchOutcome {
    /// Latency beyond the private caches (NoC + L3 [+ DRAM] + NoC).
    pub beyond: Cycle,
    /// `L3` on an L3 hit, `Memory` on an L3 miss.
    pub level: CacheLevel,
    /// DRAM queueing delay (meaningful only when `level == Memory`), for
    /// the `dram_queue` trace counter.
    pub dram_queued: Cycle,
    /// Cumulative NoC hops after this fetch, for the `noc_hops` trace
    /// counter.
    pub noc_hops: u64,
}

impl SharedFabric {
    /// Services one line fetch from `core` against bank `bank` starting at
    /// `now`: routes the request, probes the L3, goes to DRAM on a miss
    /// (filling the L3), and routes the response back.
    ///
    /// This is the exact body of the serial `fetch_from_shared`, minus the
    /// front-owned parts (per-core miss counters, tracer emission) which
    /// the hierarchy applies from the outcome.
    pub fn fetch(&mut self, core: usize, bank: usize, line: u64, now: Cycle) -> FetchOutcome {
        let req = self.noc.route(core, bank, 16, now);
        let l3 = self.l3.access_line(line, false);
        if l3.hit {
            let resp = self.noc.route(bank, core, 64, now + req + self.l3_latency);
            return FetchOutcome {
                beyond: req + self.l3_latency + resp,
                level: CacheLevel::L3,
                dram_queued: 0,
                noc_hops: self.noc.total_hops(),
            };
        }
        let mem = self.dram.access(line, now + req + self.l3_latency);
        self.l3.fill_line(line, false, false);
        let resp = self
            .noc
            .route(bank, core, 64, now + req + self.l3_latency + mem);
        FetchOutcome {
            beyond: req + self.l3_latency + mem + resp,
            level: CacheLevel::Memory,
            dram_queued: mem - self.dram.base_latency(),
            noc_hops: self.noc.total_hops(),
        }
    }
}

/// One fetch event in the canonical weave order.
#[derive(Debug, Clone, Copy)]
struct FetchEvent {
    seq: u64,
    core: u32,
    bank: u32,
    line: u64,
    now: Cycle,
}

/// A serviced fetch flowing back to the front.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchReply {
    /// Sequence number of the originating event.
    pub seq: u64,
    /// Core the fetch was issued for (per-core miss accounting).
    pub core: u32,
    /// Latency beyond the private caches.
    pub beyond: Cycle,
    /// Servicing level (`L3` or `Memory`).
    pub level: CacheLevel,
}

/// Front-side handle to the weave thread: issues fetch events, tracks how
/// many are outstanding, and drains replies at barriers.
#[derive(Debug)]
pub(crate) struct WeaveClient {
    tx: mpsc::Sender<FetchEvent>,
    rx: mpsc::Receiver<FetchReply>,
    handle: Option<std::thread::JoinHandle<SharedFabric>>,
    outstanding: usize,
    next_seq: u64,
    max_inflight: usize,
    /// Reusable drain buffer (steady-state drains allocate nothing).
    drained: Vec<FetchReply>,
}

impl WeaveClient {
    /// Moves `fabric` onto a fresh weave thread. `max_inflight` bounds how
    /// many fetches may be outstanding before the front must drain (flow
    /// control only — the value never affects simulated outcomes).
    pub fn spawn(fabric: SharedFabric, max_inflight: usize) -> Self {
        let (tx, req_rx) = mpsc::channel::<FetchEvent>();
        let (reply_tx, rx) = mpsc::channel::<FetchReply>();
        let handle = std::thread::Builder::new()
            .name("minnow-weave".into())
            .spawn(move || {
                let mut fabric = fabric;
                // Strict FIFO: events are replayed in emission (= canonical
                // serial) order, so fabric state evolves exactly as in the
                // serial oracle.
                while let Ok(ev) = req_rx.recv() {
                    let out = fabric.fetch(ev.core as usize, ev.bank as usize, ev.line, ev.now);
                    if reply_tx
                        .send(FetchReply {
                            seq: ev.seq,
                            core: ev.core,
                            beyond: out.beyond,
                            level: out.level,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                fabric
            })
            .expect("spawning the weave thread");
        WeaveClient {
            tx,
            rx,
            handle: Some(handle),
            outstanding: 0,
            next_seq: 0,
            max_inflight: max_inflight.max(1),
            drained: Vec::new(),
        }
    }

    /// Emits one fetch event; returns its sequence number.
    pub fn issue(&mut self, core: usize, bank: usize, line: u64, now: Cycle) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding += 1;
        self.tx
            .send(FetchEvent {
                seq,
                core: core as u32,
                bank: bank as u32,
                line,
                now,
            })
            .expect("weave thread alive while the hierarchy runs");
        seq
    }

    /// Whether the front has run past its flow-control window and must
    /// drain before issuing more work.
    pub fn over_cap(&self) -> bool {
        self.outstanding > self.max_inflight
    }

    /// Blocks until every outstanding fetch has replied; returns the
    /// replies (in weave order) via the reusable internal buffer.
    pub fn drain(&mut self) -> &[FetchReply] {
        self.drained.clear();
        while self.outstanding > 0 {
            let reply = self
                .rx
                .recv()
                .expect("weave thread alive while fetches are outstanding");
            self.outstanding -= 1;
            self.drained.push(reply);
        }
        &self.drained
    }

    /// Shuts the weave thread down and brings the fabric home. The caller
    /// must have drained first (no outstanding fetches).
    pub fn finish(mut self) -> SharedFabric {
        debug_assert_eq!(self.outstanding, 0, "drain before finishing the weave");
        let handle = self.handle.take().expect("finish runs once");
        drop(self.tx); // disconnect: the weave loop exits and returns the fabric
        handle.join().expect("weave thread exits cleanly")
    }
}

//! Bound-weave split of the memory hierarchy's shared half, with N-way
//! sharded weave lanes.
//!
//! ZSim-style bound-weave simulation separates per-core ("bound") state from
//! globally ordered shared ("weave") state. In this reproduction the split
//! runs through the middle of [`crate::hierarchy::MemoryHierarchy`]:
//!
//! * **Bound-owned (front)**: private L1/L2 caches, the sharer directory,
//!   prefetch credits and arrival table, per-core stats, schedulers and
//!   worklists. These are advanced by the executor thread in exact serial
//!   order — the front is the single linearized producer, so the order it
//!   emits fetch events in *is* the serial oracle's order.
//! * **Weave-owned**: the shared L3 array, the mesh NoC link reservations
//!   ([`crate::contend::GapTracker`] timelines), and the DRAM channel queues
//!   — everything a shared fetch touches beyond the private caches.
//!
//! # Sharded lanes: conservative PDES by per-resource tickets
//!
//! The weave half is serviced by N *lane* threads. Fetch `seq` is handed to
//! lane `seq % N`, and each lane executes the whole fetch (request route,
//! L3 probe/fill, DRAM access, response route). What keeps N concurrent
//! lanes bit-identical to the serial oracle is a ticket scoreboard:
//!
//! * The dispatcher ([`WeaveClient::issue`], on the front thread) walks the
//!   exact resource list a fetch will touch — the request-path links (pure
//!   X-Y geometry), the L3, the DRAM channel (pure address hash), the
//!   response-path links — and assigns each resource a dense per-resource
//!   *ticket* in issue order. Issue order is serial order, so for every
//!   individual resource the ticket order is exactly the serial order of
//!   its operations.
//! * Every shared resource lives in its own [`Turn`] cell (per-link, whole
//!   L3, per-channel). A lane performs an operation only when the cell's
//!   turn counter reaches its ticket, then passes the baton to the next
//!   ticket. Each resource therefore sees its serial operation sequence,
//!   with identical arguments — identical state evolution and identical
//!   latencies — while operations on *different* resources overlap freely
//!   across lanes.
//! * Tickets are assigned *conservatively*: a fetch takes a DRAM-channel
//!   ticket before knowing whether it will hit in L3. On a hit the lane
//!   advances the channel's turn without touching it ([`Turn::skip`]), so
//!   the channel's realized operation sequence is still exactly the serial
//!   one (the misses, in order).
//! * Deadlock-free by induction on `seq`: lanes service their queues in
//!   ascending `seq`, and a fetch only ever waits on tickets assigned to
//!   strictly earlier fetches, so the earliest unfinished fetch never
//!   blocks.
//!
//! The one piece that cannot be updated in place by concurrent lanes is the
//! order-dependent fabric statistics (the NoC/DRAM queueing
//! [`crate::stats::Distribution`]s keep running `f64` sums, where addition
//! order changes low bits). Lanes report per-fetch stat deltas in their
//! replies; the client folds them at every drain barrier in ascending
//! `seq` — the canonical order — so the final fabric state (including
//! stats) is bit-identical to the serial oracle's.
//!
//! Replies flow back asynchronously and are folded in at *barriers*: the
//! end of each task's charge (before the core model runs), whenever shared
//! state must be read synchronously, and at fixed-length simulated-time
//! epoch boundaries driven by the executor (see `minnow_runtime::sim_exec`).
//!
//! A test-only hook, `MINNOW_SHARD_STALL_NS`, makes every lane sleep that
//! many nanoseconds (scaled by lane index, to skew lanes against each
//! other) before servicing each event. Schedule-fuzz tests use it to prove
//! host-scheduling nondeterminism cannot reach simulated outcomes.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use crate::cache::Cache;
use crate::contend::GapTracker;
use crate::cycles::Cycle;
use crate::dram::{channel_of, Dram, DramStats};
use crate::hierarchy::CacheLevel;
use crate::noc::{Noc, NocGeom, NocStats, MAX_PATH_LINKS};

/// Request packet size on the NoC (a line address + command).
const REQ_BYTES: usize = 16;
/// Response packet size on the NoC (one 64B line).
const RESP_BYTES: usize = 64;

/// The weave-owned half of the hierarchy: shared L3 + NoC + DRAM.
///
/// All methods are pure functions of fabric state and their arguments, so
/// processing the canonical event order on any thread reproduces the serial
/// state evolution exactly.
#[derive(Debug, PartialEq)]
pub(crate) struct SharedFabric {
    /// Shared banked L3.
    pub l3: Cache,
    /// Mesh NoC (per-link reservation timelines).
    pub noc: Noc,
    /// Multi-channel DRAM (per-channel queues).
    pub dram: Dram,
    /// L3 access latency (needed to time the DRAM leg of a fetch).
    pub l3_latency: Cycle,
}

/// What one shared fetch produced, in fabric-state order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchOutcome {
    /// Latency beyond the private caches (NoC + L3 [+ DRAM] + NoC).
    pub beyond: Cycle,
    /// `L3` on an L3 hit, `Memory` on an L3 miss.
    pub level: CacheLevel,
    /// DRAM queueing delay (meaningful only when `level == Memory`), for
    /// the `dram_queue` trace counter.
    pub dram_queued: Cycle,
    /// Cumulative NoC hops after this fetch, for the `noc_hops` trace
    /// counter.
    pub noc_hops: u64,
}

impl SharedFabric {
    /// Services one line fetch from `core` against bank `bank` starting at
    /// `now`: routes the request, probes the L3, goes to DRAM on a miss
    /// (filling the L3), and routes the response back.
    ///
    /// This is the exact body of the serial `fetch_from_shared`, minus the
    /// front-owned parts (per-core miss counters, tracer emission) which
    /// the hierarchy applies from the outcome. The sharded lane path
    /// ([`lane_fetch`]) mirrors this body operation for operation.
    pub fn fetch(&mut self, core: usize, bank: usize, line: u64, now: Cycle) -> FetchOutcome {
        let req = self.noc.route(core, bank, REQ_BYTES, now);
        let l3 = self.l3.access_line(line, false);
        if l3.hit {
            let resp = self.noc.route(bank, core, RESP_BYTES, now + req + self.l3_latency);
            return FetchOutcome {
                beyond: req + self.l3_latency + resp,
                level: CacheLevel::L3,
                dram_queued: 0,
                noc_hops: self.noc.total_hops(),
            };
        }
        let mem = self.dram.access(line, now + req + self.l3_latency);
        self.l3.fill_line(line, false, false);
        let resp = self
            .noc
            .route(bank, core, RESP_BYTES, now + req + self.l3_latency + mem);
        FetchOutcome {
            beyond: req + self.l3_latency + mem + resp,
            level: CacheLevel::Memory,
            dram_queued: mem - self.dram.base_latency(),
            noc_hops: self.noc.total_hops(),
        }
    }

    /// Whether the sharded weave's fixed-size route plans cover this mesh
    /// (see [`MAX_PATH_LINKS`]).
    pub fn supports_sharding(&self) -> bool {
        2 * (self.noc.width().saturating_sub(1)) <= MAX_PATH_LINKS
    }
}

/// A shared resource guarded by a ticket turn counter.
///
/// The dispatcher hands out each ticket value for a cell exactly once, in
/// canonical (serial) order; [`Turn::run`] admits only the holder of the
/// current ticket and then passes the baton. Consecutive holders are
/// ordered by the release/acquire pair on `turn`, which is what makes the
/// unsynchronized `&mut` access to `cell` sound.
struct Turn<T> {
    turn: AtomicU64,
    cell: UnsafeCell<T>,
}

// SAFETY: access to `cell` is mutually exclusive and happens-before ordered
// by the ticket protocol in `run`/`skip` (see the type docs).
unsafe impl<T: Send> Sync for Turn<T> {}

impl<T> Turn<T> {
    fn new(value: T) -> Self {
        Turn {
            turn: AtomicU64::new(0),
            cell: UnsafeCell::new(value),
        }
    }

    fn wait(&self, ticket: u64) {
        let mut spins: u32 = 0;
        while self.turn.load(Ordering::Acquire) != ticket {
            spins = spins.wrapping_add(1);
            if spins & 31 == 0 {
                // Oversubscribed hosts (or a 1-core container) must make
                // progress: the ticket holder may not even be scheduled.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Runs `f` on the resource when `ticket` comes up, then passes the
    /// baton to `ticket + 1`.
    fn run<R>(&self, ticket: u64, f: impl FnOnce(&mut T) -> R) -> R {
        self.wait(ticket);
        // SAFETY: `wait` admitted the unique holder of the current ticket;
        // the release store below pairs with the next holder's acquire
        // load, so accesses are exclusive and ordered.
        let r = f(unsafe { &mut *self.cell.get() });
        self.turn.store(ticket + 1, Ordering::Release);
        r
    }

    /// Advances the turn without touching the resource — for fetches that
    /// were conservatively ticketed on a resource they dynamically skip
    /// (a DRAM channel on an L3 hit).
    fn skip(&self, ticket: u64) {
        self.wait(ticket);
        self.turn.store(ticket + 1, Ordering::Release);
    }

    fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

impl<T> fmt::Debug for Turn<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Turn({})", self.turn.load(Ordering::Relaxed))
    }
}

/// The links of one X-Y route with their pre-assigned tickets, in
/// traversal order. Fixed-size so events stay allocation-free.
#[derive(Debug, Clone, Copy)]
struct RoutePlan {
    len: u8,
    links: [u16; MAX_PATH_LINKS],
    tickets: [u64; MAX_PATH_LINKS],
}

impl RoutePlan {
    fn empty() -> Self {
        RoutePlan {
            len: 0,
            links: [0; MAX_PATH_LINKS],
            tickets: [0; MAX_PATH_LINKS],
        }
    }
}

/// One fetch event dispatched to a lane, carrying every ticket it needs.
#[derive(Debug, Clone, Copy)]
struct LaneEvent {
    seq: u64,
    core: u32,
    line: u64,
    now: Cycle,
    l3_ticket: u64,
    dram_ticket: u64,
    req: RoutePlan,
    resp: RoutePlan,
}

/// Per-fetch statistic deltas a lane reports back for deferred, in-order
/// folding at drain barriers.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReplyStats {
    req_queued: Cycle,
    resp_queued: Cycle,
    dram_queued: Cycle,
    req_hops: u64,
    resp_hops: u64,
}

/// A serviced fetch flowing back to the front.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchReply {
    /// Sequence number of the originating event.
    pub seq: u64,
    /// Core the fetch was issued for (per-core miss accounting).
    pub core: u32,
    /// Latency beyond the private caches.
    pub beyond: Cycle,
    /// Servicing level (`L3` or `Memory`).
    pub level: CacheLevel,
    /// Deferred fabric-stat deltas (folded by the client at drains).
    stats: ReplyStats,
}

/// The resources and immutable parameters every lane shares.
#[derive(Debug)]
struct LaneShared {
    geom: NocGeom,
    links: Vec<Turn<GapTracker>>,
    l3: Turn<Cache>,
    channels: Vec<Turn<GapTracker>>,
    l3_latency: Cycle,
    dram_base: Cycle,
    dram_service: Cycle,
    /// Test-only fault injection (`MINNOW_SHARD_STALL_NS`): base
    /// nanoseconds each lane sleeps before servicing an event, scaled by
    /// lane index + 1 so lanes skew apart.
    stall_ns: u64,
}

/// Walks one route's links under their tickets; returns
/// `(latency, queued, hops)` exactly as [`Noc::route`] computes them.
fn run_route(
    links: &[Turn<GapTracker>],
    plan: &RoutePlan,
    hop_cycles: Cycle,
    occupancy: Cycle,
    now: Cycle,
) -> (Cycle, Cycle, u64) {
    let mut at = now;
    let mut queued: Cycle = 0;
    for i in 0..plan.len as usize {
        let start = links[plan.links[i] as usize]
            .run(plan.tickets[i], |g| g.reserve(at, occupancy));
        queued += start - at;
        at = start + hop_cycles;
    }
    let mut hops = plan.len as u64;
    if hops == 0 {
        at += hop_cycles;
        hops = 1;
    }
    (at - now, queued, hops)
}

/// Executes one fetch on a lane: the exact operation sequence of
/// [`SharedFabric::fetch`], with every shared-resource touch gated by its
/// pre-assigned ticket.
///
/// The only reordering relative to the serial body is that the L3 fill on
/// a miss happens inside the same L3 turn as the probe, *before* the DRAM
/// reservation instead of after it. Both orders are state-identical: in
/// the serial oracle no other L3 operation can intervene between a fetch's
/// probe and its fill, the fill does not depend on the DRAM latency, and
/// the DRAM reservation time does not depend on the fill.
fn lane_fetch(sh: &LaneShared, ev: &LaneEvent) -> FetchReply {
    let now = ev.now;
    let (req, req_queued, req_hops) = run_route(
        &sh.links,
        &ev.req,
        sh.geom.hop_cycles,
        sh.geom.occupancy(REQ_BYTES),
        now,
    );
    let hit = sh.l3.run(ev.l3_ticket, |l3| {
        let probe = l3.access_line(ev.line, false);
        if !probe.hit {
            l3.fill_line(ev.line, false, false);
        }
        probe.hit
    });
    let ch = channel_of(ev.line, sh.channels.len());
    let (mem, dram_queued, level) = if hit {
        sh.channels[ch].skip(ev.dram_ticket);
        (0, 0, CacheLevel::L3)
    } else {
        let at = now + req + sh.l3_latency;
        let start = sh.channels[ch].run(ev.dram_ticket, |g| g.reserve(at, sh.dram_service));
        let queued = start - at;
        (sh.dram_base + queued, queued, CacheLevel::Memory)
    };
    let (resp, resp_queued, resp_hops) = run_route(
        &sh.links,
        &ev.resp,
        sh.geom.hop_cycles,
        sh.geom.occupancy(RESP_BYTES),
        now + req + sh.l3_latency + mem,
    );
    FetchReply {
        seq: ev.seq,
        core: ev.core,
        beyond: req + sh.l3_latency + mem + resp,
        level,
        stats: ReplyStats {
            req_queued,
            resp_queued,
            dram_queued,
            req_hops,
            resp_hops,
        },
    }
}

/// Plans one route: records its link indices and dispenses their tickets
/// in traversal order.
fn plan_route(
    geom: &NocGeom,
    next_link: &mut [u64],
    src: usize,
    dst: usize,
    out: &mut RoutePlan,
) {
    let mut n = 0usize;
    geom.for_each_link(src, dst, |idx| {
        debug_assert!(n < MAX_PATH_LINKS, "route longer than MAX_PATH_LINKS");
        out.links[n] = idx as u16;
        out.tickets[n] = next_link[idx];
        next_link[idx] += 1;
        n += 1;
    });
    out.len = n as u8;
}

/// Front-side handle to the weave lanes: issues fetch events (dispensing
/// tickets in canonical order), tracks how many are outstanding, drains
/// replies at barriers, and folds deferred fabric stats in `seq` order.
#[derive(Debug)]
pub(crate) struct WeaveClient {
    lane_txs: Vec<mpsc::Sender<LaneEvent>>,
    rx: mpsc::Receiver<FetchReply>,
    handles: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<LaneShared>,
    outstanding: usize,
    next_seq: u64,
    max_inflight: usize,
    /// Reusable drain buffer (steady-state drains allocate nothing).
    drained: Vec<FetchReply>,
    /// Ticket dispensers, front-owned: next ticket per NoC link, for the
    /// L3, and per DRAM channel.
    next_link: Vec<u64>,
    next_l3: u64,
    next_chan: Vec<u64>,
    /// Deferred order-dependent fabric stats, folded at drains in `seq`
    /// order and reinstalled into the fabric at `finish`.
    noc_stats: NocStats,
    dram_stats: DramStats,
}

impl WeaveClient {
    /// Weave lane threads this client spawned.
    pub fn lanes(&self) -> usize {
        self.lane_txs.len()
    }

    /// Shards `fabric` across `lanes` weave threads. `max_inflight` bounds
    /// how many fetches may be outstanding before the front must drain
    /// (flow control only — the value never affects simulated outcomes,
    /// and neither does `lanes`).
    ///
    /// Tickets are dispensed at *issue* time, on whichever host thread
    /// calls [`WeaveClient::issue`] — under the front-sharded executor
    /// that is whichever front shard currently holds the relayed spine.
    /// The dispatcher's canonical order is the executor's
    /// `(simulated_clock, core_id)` heap order, **not** host arrival
    /// order: because exactly one shard holds the spine at a time and
    /// shards issue in heap order, tickets are pre-assigned
    /// deterministically no matter which front thread reaches the fetch
    /// first, and the deferred NoC/DRAM stats fold in the same canonical
    /// `seq` order at every drain.
    pub fn spawn(fabric: SharedFabric, max_inflight: usize, lanes: usize) -> Self {
        assert!(
            fabric.supports_sharding(),
            "mesh too wide for the sharded weave (checked by enable_weave)"
        );
        let lanes = lanes.max(1);
        let SharedFabric {
            l3,
            noc,
            dram,
            l3_latency,
        } = fabric;
        let (geom, links, noc_stats) = noc.split();
        let (dram_base, dram_service, channels, dram_stats) = dram.split();
        let n_links = links.len();
        let n_chan = channels.len();
        let stall_ns = std::env::var("MINNOW_SHARD_STALL_NS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let shared = Arc::new(LaneShared {
            geom,
            links: links.into_iter().map(Turn::new).collect(),
            l3: Turn::new(l3),
            channels: channels.into_iter().map(Turn::new).collect(),
            l3_latency,
            dram_base,
            dram_service,
            stall_ns,
        });
        let (reply_tx, rx) = mpsc::channel::<FetchReply>();
        let mut lane_txs = Vec::with_capacity(lanes);
        let mut handles = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let (tx, lane_rx) = mpsc::channel::<LaneEvent>();
            let reply_tx = reply_tx.clone();
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("minnow-weave-{lane}"))
                .spawn(move || {
                    let stall = shared.stall_ns.saturating_mul(lane as u64 + 1);
                    // Each lane receives its events in ascending seq order
                    // (FIFO channel, dispatched in issue order), which the
                    // deadlock-freedom argument relies on.
                    while let Ok(ev) = lane_rx.recv() {
                        if stall > 0 {
                            std::thread::sleep(std::time::Duration::from_nanos(stall));
                        }
                        if reply_tx.send(lane_fetch(&shared, &ev)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawning a weave lane");
            lane_txs.push(tx);
            handles.push(handle);
        }
        WeaveClient {
            lane_txs,
            rx,
            handles,
            shared,
            outstanding: 0,
            next_seq: 0,
            max_inflight: max_inflight.max(1),
            drained: Vec::new(),
            next_link: vec![0; n_links],
            next_l3: 0,
            next_chan: vec![0; n_chan],
            noc_stats,
            dram_stats,
        }
    }

    /// Emits one fetch event; returns its sequence number.
    ///
    /// Tickets are dispensed here, in issue (= canonical serial) order,
    /// following the exact resource order of [`SharedFabric::fetch`]:
    /// request-route links, L3, DRAM channel, response-route links.
    pub fn issue(&mut self, core: usize, bank: usize, line: u64, now: Cycle) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding += 1;
        let geom = self.shared.geom;
        let mut ev = LaneEvent {
            seq,
            core: core as u32,
            line,
            now,
            l3_ticket: 0,
            dram_ticket: 0,
            req: RoutePlan::empty(),
            resp: RoutePlan::empty(),
        };
        plan_route(&geom, &mut self.next_link, core, bank, &mut ev.req);
        ev.l3_ticket = self.next_l3;
        self.next_l3 += 1;
        let ch = channel_of(line, self.next_chan.len());
        ev.dram_ticket = self.next_chan[ch];
        self.next_chan[ch] += 1;
        plan_route(&geom, &mut self.next_link, bank, core, &mut ev.resp);
        let lane = (seq % self.lane_txs.len() as u64) as usize;
        self.lane_txs[lane]
            .send(ev)
            .expect("weave lanes alive while the hierarchy runs");
        seq
    }

    /// Whether the front has run past its flow-control window and must
    /// drain before issuing more work.
    pub fn over_cap(&self) -> bool {
        self.outstanding > self.max_inflight
    }

    /// Blocks until every outstanding fetch has replied; returns the
    /// replies in canonical (`seq`) order via the reusable internal
    /// buffer, and folds the deferred fabric stats in that same order.
    pub fn drain(&mut self) -> &[FetchReply] {
        self.drained.clear();
        while self.outstanding > 0 {
            let reply = self
                .rx
                .recv()
                .expect("weave lanes alive while fetches are outstanding");
            self.outstanding -= 1;
            self.drained.push(reply);
        }
        // Replies interleave arbitrarily across lanes; restore canonical
        // order so the order-dependent stat folds below (and the caller's
        // iteration) match the serial oracle exactly.
        self.drained.sort_unstable_by_key(|r| r.seq);
        for r in &self.drained {
            self.noc_stats.record_route(r.stats.req_queued, r.stats.req_hops);
            if r.level == CacheLevel::Memory {
                self.dram_stats.record_access(r.stats.dram_queued);
            }
            self.noc_stats.record_route(r.stats.resp_queued, r.stats.resp_hops);
        }
        &self.drained
    }

    /// Shuts the lanes down and reassembles the fabric. The caller must
    /// have drained first (no outstanding fetches).
    pub fn finish(self) -> SharedFabric {
        debug_assert_eq!(self.outstanding, 0, "drain before finishing the weave");
        let WeaveClient {
            lane_txs,
            rx,
            handles,
            shared,
            noc_stats,
            dram_stats,
            ..
        } = self;
        drop(lane_txs); // disconnect: every lane loop exits
        drop(rx);
        for h in handles {
            h.join().expect("weave lane exits cleanly");
        }
        let shared = Arc::try_unwrap(shared).expect("all lane clones joined");
        let LaneShared {
            geom,
            links,
            l3,
            channels,
            l3_latency,
            dram_base,
            dram_service,
            ..
        } = shared;
        SharedFabric {
            l3: l3.into_inner(),
            noc: Noc::join(
                geom,
                links.into_iter().map(Turn::into_inner).collect(),
                noc_stats,
            ),
            dram: Dram::join(
                dram_base,
                dram_service,
                channels.into_iter().map(Turn::into_inner).collect(),
                dram_stats,
            ),
            l3_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheParams;

    /// A small fabric: 4x4 mesh, 2-channel DRAM, 16KB/4-way shared L3.
    fn test_fabric() -> SharedFabric {
        SharedFabric {
            l3: Cache::new(CacheParams {
                size_bytes: 16 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 27,
            }),
            noc: Noc::new(4, 3, 64),
            dram: Dram::new(2, 200, 8),
            l3_latency: 27,
        }
    }

    /// A deterministic pseudo-random fetch schedule (SplitMix64 — no
    /// `rand` dependency needed) mixing repeated lines (L3 hits), shared
    /// links, shared DRAM channels, and equal-clock ties.
    fn fetch_schedule(n: usize) -> Vec<(usize, usize, u64, Cycle)> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|i| {
                let r = next();
                let core = (r % 16) as usize;
                let bank = ((r >> 8) % 16) as usize;
                // A small line universe forces hits, refetches, and
                // channel collisions.
                let line = (r >> 16) % 96;
                // Coarse clocks create plenty of equal-`now` ties.
                let now = ((i as u64) / 4) * 50;
                (core, bank, line, now)
            })
            .collect()
    }

    /// Replays `schedule` through the serial oracle, returning per-fetch
    /// `(beyond, level)` and the final fabric.
    fn run_serial(schedule: &[(usize, usize, u64, Cycle)]) -> (Vec<(Cycle, CacheLevel)>, SharedFabric) {
        let mut fabric = test_fabric();
        let outcomes = schedule
            .iter()
            .map(|&(core, bank, line, now)| {
                let o = fabric.fetch(core, bank, line, now);
                (o.beyond, o.level)
            })
            .collect();
        (outcomes, fabric)
    }

    /// Replays `schedule` through `lanes` sharded weave lanes, draining
    /// every `drain_every` issues; returns per-fetch `(beyond, level)` in
    /// seq order and the reassembled fabric.
    fn run_sharded(
        schedule: &[(usize, usize, u64, Cycle)],
        lanes: usize,
        drain_every: usize,
    ) -> (Vec<(Cycle, CacheLevel)>, SharedFabric) {
        let mut client = WeaveClient::spawn(test_fabric(), 1 << 20, lanes);
        let mut outcomes = vec![(0, CacheLevel::L3); schedule.len()];
        for (i, &(core, bank, line, now)) in schedule.iter().enumerate() {
            client.issue(core, bank, line, now);
            if (i + 1) % drain_every == 0 {
                for r in client.drain() {
                    outcomes[r.seq as usize] = (r.beyond, r.level);
                }
            }
        }
        for r in client.drain() {
            outcomes[r.seq as usize] = (r.beyond, r.level);
        }
        (outcomes, client.finish())
    }

    #[test]
    fn single_lane_matches_serial_oracle_bit_for_bit() {
        let schedule = fetch_schedule(300);
        let (serial, serial_fabric) = run_serial(&schedule);
        let (sharded, sharded_fabric) = run_sharded(&schedule, 1, 64);
        assert_eq!(serial, sharded);
        assert_eq!(serial_fabric, sharded_fabric);
    }

    #[test]
    fn any_lane_count_matches_serial_oracle_bit_for_bit() {
        let schedule = fetch_schedule(400);
        let (serial, serial_fabric) = run_serial(&schedule);
        for lanes in [2, 3, 5, 8] {
            // Vary the drain cadence too: barriers are outcome-neutral.
            for drain_every in [7, 64, 401] {
                let (sharded, sharded_fabric) = run_sharded(&schedule, lanes, drain_every);
                assert_eq!(serial, sharded, "lanes={lanes} drain_every={drain_every}");
                assert_eq!(
                    serial_fabric, sharded_fabric,
                    "final fabric state diverged: lanes={lanes} drain_every={drain_every}"
                );
            }
        }
    }

    /// Golden fixture for the equal-clock tie-break: three fetches issued
    /// at the *same* simulated time, all crossing the same first link and
    /// hashing to the same DRAM channel. The oracle order is issue (seq)
    /// order — earlier seq wins every shared resource — and these exact
    /// latencies pin that tie-break for any lane count.
    #[test]
    fn equal_clock_ties_resolve_in_seq_order() {
        // Cores 0,0,0 -> banks 3,3,3 at now=0: identical routes; lines
        // chosen so 10 and 12 share DRAM channel 0 of 2 and line 10
        // repeats (second occurrence hits in L3, skipping its channel
        // ticket).
        let schedule = vec![
            (0usize, 3usize, 10u64, 0u64),
            (0, 3, 12, 0),
            (0, 3, 10, 0),
        ];
        let (serial, _) = run_serial(&schedule);
        // Golden values (hand-checked against the model):
        // fetch 0: req 3 hops * 3cy, L3 miss, DRAM 200cy uncontended,
        //          resp 3 hops * 3cy => 9 + 27 + 200 + 9 = 245.
        assert_eq!(serial[0], (245, CacheLevel::Memory));
        // fetch 1: queues 1cy behind fetch 0 on the first link (the later
        //          links have already gone idle by the time it arrives),
        //          then 7cy behind fetch 0's DRAM service ([36,44) vs an
        //          arrival at 37): req 9+1, L3 miss, DRAM 200+7,
        //          resp 9 => 253.
        assert_eq!(serial[1], (253, CacheLevel::Memory));
        // fetch 2: queues 2cy on the first link behind both earlier
        //          fetches; L3 *hit* on the refetched line, response
        //          gap-fills long before the misses' responses:
        //          req 9+2, L3 27, resp 9 => 47.
        assert_eq!(serial[2], (47, CacheLevel::L3));
        for lanes in [1, 2, 3] {
            let (sharded, _) = run_sharded(&schedule, lanes, 64);
            assert_eq!(serial, sharded, "lanes={lanes}");
        }
    }

    #[test]
    fn stall_injection_never_changes_outcomes() {
        let schedule = fetch_schedule(200);
        let (serial, serial_fabric) = run_serial(&schedule);
        std::env::set_var("MINNOW_SHARD_STALL_NS", "1500");
        let result = std::panic::catch_unwind(|| run_sharded(&schedule, 3, 32));
        std::env::remove_var("MINNOW_SHARD_STALL_NS");
        let (sharded, sharded_fabric) = result.expect("sharded run completes under stalls");
        assert_eq!(serial, sharded);
        assert_eq!(serial_fabric, sharded_fabric);
    }

    #[test]
    fn paper_mesh_is_within_route_plan_capacity() {
        let fabric = test_fabric();
        assert!(fabric.supports_sharding());
        // The paper's 8x8 mesh sits exactly at the limit.
        let f8 = SharedFabric {
            noc: Noc::new(8, 3, 64),
            ..test_fabric()
        };
        assert!(f8.supports_sharding());
        let f9 = SharedFabric {
            noc: Noc::new(9, 3, 64),
            ..test_fabric()
        };
        assert!(!f9.supports_sharding());
    }
}

//! Cycle arithmetic for the simulator.
//!
//! The whole substrate measures time in core clock cycles (the paper's
//! baseline runs at 2.5 GHz, Table 3). We use a plain `u64` alias rather than
//! a heavyweight newtype because cycle values flow through arithmetic-dense
//! inner loops in every model; the alias keeps call sites readable while the
//! helpers below centralize the few non-trivial operations.

/// A point in simulated time, measured in core clock cycles.
pub type Cycle = u64;

/// Saturating difference `a - b`, useful for "how long past the deadline".
#[inline]
pub fn since(a: Cycle, b: Cycle) -> Cycle {
    a.saturating_sub(b)
}

/// Integer ceiling division, used for `work / throughput` style latencies.
///
/// # Examples
///
/// ```
/// assert_eq!(minnow_sim::cycles::div_ceil(10, 4), 3);
/// assert_eq!(minnow_sim::cycles::div_ceil(8, 4), 2);
/// assert_eq!(minnow_sim::cycles::div_ceil(0, 4), 0);
/// ```
#[inline]
pub fn div_ceil(num: u64, den: u64) -> u64 {
    debug_assert!(den > 0, "div_ceil denominator must be positive");
    num.div_ceil(den)
}

/// Converts a cycle count at the core clock into wall-clock seconds for the
/// given frequency in GHz.
///
/// ```
/// let secs = minnow_sim::cycles::cycles_to_seconds(2_500_000_000, 2.5);
/// assert!((secs - 1.0).abs() < 1e-9);
/// ```
#[inline]
pub fn cycles_to_seconds(cycles: Cycle, ghz: f64) -> f64 {
    cycles as f64 / (ghz * 1e9)
}

/// An exponentially-weighted running mean, used by adaptive models (e.g. the
/// DRAM queue and NoC link congestion estimators) where a full history would
/// be too expensive.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    value: f64,
    alpha: f64,
    primed: bool,
}

impl Ewma {
    /// Creates a new EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            value: 0.0,
            alpha,
            primed: false,
        }
    }

    /// Feeds an observation into the running mean.
    pub fn observe(&mut self, x: f64) {
        if self.primed {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
    }

    /// Current smoothed value (0.0 before the first observation).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one observation has been recorded.
    pub fn is_primed(&self) -> bool {
        self.primed
    }
}

impl Default for Ewma {
    fn default() -> Self {
        Ewma::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_saturates() {
        assert_eq!(since(5, 3), 2);
        assert_eq!(since(3, 5), 0);
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(div_ceil(1, 64), 1);
        assert_eq!(div_ceil(64, 64), 1);
        assert_eq!(div_ceil(65, 64), 2);
    }

    #[test]
    fn ewma_tracks_constant_stream() {
        let mut e = Ewma::new(0.5);
        assert!(!e.is_primed());
        for _ in 0..20 {
            e.observe(10.0);
        }
        assert!(e.is_primed());
        assert!((e.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_primes_directly() {
        let mut e = Ewma::new(0.1);
        e.observe(42.0);
        assert!((e.value() - 42.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn cycles_to_seconds_matches_frequency() {
        assert!((cycles_to_seconds(5_000_000_000, 2.5) - 2.0).abs() < 1e-9);
    }
}

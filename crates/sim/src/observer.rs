//! Interfaces for table-based hardware prefetchers (the paper's Fig. 17
//! comparison points: a classic stride prefetcher and IMP).
//!
//! Hardware prefetchers are *reactive*: they snoop the demand access stream
//! and predict future addresses. Indirect prefetchers like IMP additionally
//! read values out of (already cached) memory to chase `A[B[i]]` patterns,
//! which [`MemoryImage`] provides — a read-only oracle over the simulated
//! program's data, standing in for the actual DRAM contents a real
//! prefetcher would see.

use crate::cycles::Cycle;
use crate::hierarchy::MemoryHierarchy;

/// Read-only view of simulated memory contents, used by indirect
/// prefetchers to dereference pointer/index values.
///
/// `Sync` is a supertrait: the front-sharded executor shares the image by
/// reference across front threads as the simulation spine migrates.
pub trait MemoryImage: Sync {
    /// Reads the 64-bit value at `addr`, if the address is backed by a
    /// modeled structure (e.g. a CSR edge record's destination id).
    fn read_u64(&self, addr: u64) -> Option<u64>;
}

/// Statistics common to hardware prefetchers.
#[derive(Debug, Clone, Copy, Default)]
pub struct HwPrefetchStats {
    /// Prefetches issued into the L2.
    pub issued: u64,
    /// Predictions skipped because the line was already resident.
    pub already_resident: u64,
    /// Demand accesses observed.
    pub observed: u64,
}

/// A table-based hardware prefetcher attached to each core's L2.
///
/// `Send` is a supertrait for the same reason as `MemoryImage: Sync` — the
/// prefetcher rides the relayed simulation spine between front threads.
pub trait HwPrefetcher: std::fmt::Debug + Send {
    /// Prefetcher name for reports.
    fn name(&self) -> &'static str;

    /// Observes one demand load and possibly issues prefetch fills.
    ///
    /// * `value` — the loaded value when the modeled structure is known
    ///   (index/pointer loads), used by indirect prefetchers.
    fn on_demand_load(
        &mut self,
        core: usize,
        addr: u64,
        value: Option<u64>,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        image: &dyn MemoryImage,
    );

    /// Accumulated statistics.
    fn stats(&self) -> HwPrefetchStats;
}

/// A [`MemoryImage`] with no readable contents (for pattern prefetchers
/// that never dereference values).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyImage;

impl MemoryImage for EmptyImage {
    fn read_u64(&self, _addr: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_image_reads_nothing() {
        assert_eq!(EmptyImage.read_u64(0x1234), None);
    }
}

//! Set-associative cache model with LRU replacement and per-line prefetch
//! metadata.
//!
//! The Minnow credit system (paper §5.3.1) augments each L2 line with one
//! *prefetch bit*: lines filled by the Minnow engine are marked, and when a
//! marked line is accessed or evicted the bit is cleared and a credit is
//! returned to the engine. [`Cache`] implements exactly that protocol and
//! reports everything the paper's Fig. 18 (MPKI) and Fig. 20 (prefetch
//! efficiency) need.
//!
//! # Storage layout
//!
//! Lines are stored structure-of-arrays: a packed `u64` tag array (with
//! `u64::MAX` as the invalid sentinel), a parallel `u64` LRU-timestamp
//! array, and two bitsets for the dirty and prefetch bits. A tag lookup in
//! an 8-way set therefore scans one 64-byte cache line of tags instead of
//! pointer-hopping eight `Option<Line>` slots, and the LRU victim scan is a
//! straight min-reduction over eight adjacent words. Every simulated
//! decision (hit/miss, victim choice, mark handling) is identical to the
//! previous array-of-structs representation — `tests/props.rs` checks that
//! against a naive reference model property-by-property.

use crate::config::CacheParams;
use crate::stats::Counter;

/// Tag value marking an invalid (empty) way. Real tags are line addresses
/// (`addr >> line_shift` with `line_shift >= 1`), which can never reach it.
const INVALID: u64 = u64::MAX;

/// A byte address pre-decomposed into the pieces every cache level needs.
///
/// All levels of the hierarchy share one line size, so the line address can
/// be computed once per demand access and passed down L1→L2→L3 instead of
/// being re-derived (shift + mask) at each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrParts {
    /// The original byte address.
    pub addr: u64,
    /// `addr >> line_shift` — the tag, and the unit the directory and
    /// prefetch-arrival tables are keyed by.
    pub line_addr: u64,
}

impl AddrParts {
    /// Decomposes `addr` for caches with the given line shift.
    #[inline]
    pub fn new(addr: u64, line_shift: u32) -> Self {
        AddrParts {
            addr,
            line_addr: addr >> line_shift,
        }
    }
}

/// What happened to a victim line when a fill forced an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line address of the victim (`addr >> line_shift`).
    pub line_addr: u64,
    /// The victim was dirty and would be written back.
    pub dirty: bool,
    /// The victim still had its prefetch bit set — i.e. it was prefetched
    /// but never used. Its credit must be returned (paper §5.3.1).
    pub prefetch_unused: bool,
}

/// Result of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// The line was resident.
    pub hit: bool,
    /// The line was resident *and* had its prefetch bit set; the bit has been
    /// cleared and the corresponding credit must be returned.
    pub prefetch_consumed: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: Counter,
    /// Demand lookups that missed.
    pub misses: Counter,
    /// Lines evicted to make room for fills.
    pub evictions: Counter,
    /// Fills performed on behalf of a prefetcher (marked lines).
    pub prefetch_fills: Counter,
    /// Prefetched lines consumed by a demand access before eviction.
    pub prefetch_used: Counter,
    /// Prefetched lines evicted before any demand access.
    pub prefetch_evicted_unused: Counter,
}

impl CacheStats {
    /// Prefetch efficiency as the paper defines it (Fig. 20): prefetched
    /// lines used before eviction over total prefetch fills.
    pub fn prefetch_efficiency(&self) -> f64 {
        let fills = self.prefetch_fills.get();
        if fills == 0 {
            return 1.0;
        }
        self.prefetch_used.get() as f64 / fills as f64
    }

    /// Demand miss ratio (misses / lookups), or 0.0 with no traffic.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }
}

/// A single set-associative, write-allocate, LRU cache.
///
/// The cache is a *presence* model: it tracks which lines are resident, not
/// their data. Fills are explicit so that the surrounding
/// [hierarchy](crate::hierarchy) can decide inclusion/exclusion policy and
/// so prefetchers can insert marked lines.
/// `PartialEq` compares full packed state (tags, recency clocks, bitsets,
/// stats) — the sharded weave's oracle tests rely on it for bit-identity.
/// The speculation journal is deliberately excluded: its generation stamps
/// persist across windows and carry no simulated state.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: usize,
    line_shift: u32,
    /// `sets * ways` packed tags; [`INVALID`] = empty way.
    tags: Vec<u64>,
    /// LRU timestamps parallel to `tags` (bigger = more recently used).
    last_use: Vec<u64>,
    /// Dirty bits, one per way slot.
    dirty: Bitset,
    /// Minnow prefetch bits (paper §5.3.1), one per way slot.
    prefetch: Bitset,
    /// Advances exactly when a recency timestamp is recorded (every hit and
    /// every fill). Misses that perform no fill leave it untouched: they
    /// write no timestamp, so bumping the clock for them could never change
    /// a victim choice — LRU only compares recorded timestamps.
    tick: u64,
    /// Resident lines whose prefetch bit is still set. Lets
    /// [`Cache::consume_mark_line`] — probed on *every* L1 hit by the
    /// hierarchy — answer `false` without a tag walk when nothing is
    /// marked, which is always the case in non-prefetching runs.
    marked: usize,
    stats: CacheStats,
    /// Undo journal for speculative probes (see [`Cache::begin_spec`]).
    spec: SpecJournal,
}

impl PartialEq for Cache {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
            && self.sets == other.sets
            && self.line_shift == other.line_shift
            && self.tags == other.tags
            && self.last_use == other.last_use
            && self.dirty == other.dirty
            && self.prefetch == other.prefetch
            && self.tick == other.tick
            && self.marked == other.marked
            && self.stats == other.stats
    }
}

/// Generation-stamped undo log for a speculative probe window — *not* a
/// copy of the cache. Each way slot's prior metadata is saved at most once
/// per window (the per-slot generation stamp dedupes), so a window touching
/// a handful of sets journals a handful of entries regardless of cache
/// size; rollback restores the saved entries and scalar snapshot.
#[derive(Debug, Clone, Default)]
struct SpecJournal {
    /// Current window generation; slots stamped with an older generation
    /// have not been journaled this window.
    generation: u64,
    /// Per-way-slot generation stamps (lazily sized on first window).
    touched: Vec<u64>,
    /// Saved prior per-slot state: `(idx, tag, last_use, dirty, prefetch)`.
    entries: Vec<(usize, u64, u64, bool, bool)>,
    /// Scalar snapshot at window open: `(tick, marked, stats)`.
    saved: Option<(u64, usize, CacheStats)>,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheParams::sets`]) or the
    /// line size is not a power of two of at least 2 bytes.
    pub fn new(params: CacheParams) -> Self {
        assert!(
            params.line_bytes.is_power_of_two() && params.line_bytes >= 2,
            "line size must be a power of two of at least 2 bytes"
        );
        let sets = params.sets();
        let slots = sets * params.ways;
        Cache {
            params,
            sets,
            line_shift: params.line_bytes.trailing_zeros(),
            tags: vec![INVALID; slots],
            last_use: vec![0; slots],
            dirty: Bitset::new(slots),
            prefetch: Bitset::new(slots),
            tick: 0,
            marked: 0,
            stats: CacheStats::default(),
            spec: SpecJournal::default(),
        }
    }

    /// Geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents are kept, supporting warmup phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Maps a byte address to its line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// `log2(line_bytes)` — for building [`AddrParts`] once per access.
    #[inline]
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Pre-decomposes `addr` for this cache's geometry.
    #[inline]
    pub fn parts_of(&self, addr: u64) -> AddrParts {
        AddrParts::new(addr, self.line_shift)
    }

    /// First slot index of the set holding `line_addr`.
    #[inline]
    fn set_base(&self, line_addr: u64) -> usize {
        let set = if self.sets.is_power_of_two() {
            (line_addr as usize) & (self.sets - 1)
        } else {
            (line_addr as usize) % self.sets
        };
        set * self.params.ways
    }

    /// Index of the way holding `line_addr`, if resident.
    #[inline]
    fn find(&self, line_addr: u64) -> Option<usize> {
        let base = self.set_base(line_addr);
        let ways = self.params.ways;
        self.tags[base..base + ways]
            .iter()
            .position(|&t| t == line_addr)
            .map(|w| base + w)
    }

    /// Demand access. Updates LRU, clears the prefetch bit on a hit to a
    /// marked line, and records hit/miss stats. The caller performs the fill
    /// on a miss via [`Cache::fill`].
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        self.access_line(self.line_of(addr), write)
    }

    /// [`Cache::access`] with the line address already computed.
    pub fn access_line(&mut self, line_addr: u64, write: bool) -> Lookup {
        if let Some(idx) = self.find(line_addr) {
            self.tick += 1;
            self.last_use[idx] = self.tick;
            if write {
                self.dirty.set(idx);
            }
            let prefetch_consumed = self.prefetch.get(idx);
            if prefetch_consumed {
                self.prefetch.clear(idx);
                self.marked -= 1;
                self.stats.prefetch_used.inc();
            }
            self.stats.hits.inc();
            return Lookup {
                hit: true,
                prefetch_consumed,
            };
        }
        self.stats.misses.inc();
        Lookup {
            hit: false,
            prefetch_consumed: false,
        }
    }

    /// Non-mutating presence probe (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        self.probe_line(self.line_of(addr))
    }

    /// [`Cache::probe`] with the line address already computed.
    #[inline]
    pub fn probe_line(&self, line_addr: u64) -> bool {
        self.find(line_addr).is_some()
    }

    /// Returns whether the line holding `addr` is resident with its prefetch
    /// bit still set (prefetched but not yet used).
    pub fn probe_prefetched(&self, addr: u64) -> bool {
        self.find(self.line_of(addr))
            .is_some_and(|idx| self.prefetch.get(idx))
    }

    /// Inserts the line holding `addr`. `prefetch` marks the line as a
    /// prefetch fill (paper §5.3.1). Returns the eviction, if any.
    pub fn fill(&mut self, addr: u64, write: bool, prefetch: bool) -> Option<Eviction> {
        self.fill_line(self.line_of(addr), write, prefetch)
    }

    /// [`Cache::fill`] with the line address already computed.
    ///
    /// Filling an already-resident line refreshes LRU; a demand fill
    /// (`prefetch == false`) over a marked line leaves the mark intact so the
    /// pending credit is still returned on first *demand access* — in
    /// practice the hierarchy always accesses before filling, so this path
    /// only matters for prefetch-over-prefetch, which is idempotent.
    pub fn fill_line(&mut self, line_addr: u64, write: bool, prefetch: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        if prefetch {
            self.stats.prefetch_fills.inc();
        }
        let base = self.set_base(line_addr);
        let ways = self.params.ways;

        // One pass over the packed tags: find a resident match, the first
        // free way, and the LRU victim (first minimum, matching the old
        // strict-`<` scan) all at once.
        let mut free = usize::MAX;
        let mut victim = base;
        let mut victim_use = u64::MAX;
        for idx in base..base + ways {
            let tag = self.tags[idx];
            if tag == line_addr {
                // Already resident: refresh.
                self.last_use[idx] = tick;
                if write {
                    self.dirty.set(idx);
                }
                return None;
            }
            if tag == INVALID {
                if free == usize::MAX {
                    free = idx;
                }
            } else if self.last_use[idx] < victim_use {
                victim_use = self.last_use[idx];
                victim = idx;
            }
        }

        if free != usize::MAX {
            self.install(free, line_addr, tick, write, prefetch);
            return None;
        }

        // Evict LRU.
        let evicted = Eviction {
            line_addr: self.tags[victim],
            dirty: self.dirty.get(victim),
            prefetch_unused: self.prefetch.get(victim),
        };
        self.stats.evictions.inc();
        if evicted.prefetch_unused {
            self.stats.prefetch_evicted_unused.inc();
        }
        self.install(victim, line_addr, tick, write, prefetch);
        Some(evicted)
    }

    /// Writes a new line into way slot `idx`, overwriting all metadata.
    #[inline]
    fn install(&mut self, idx: usize, line_addr: u64, tick: u64, dirty: bool, prefetch: bool) {
        self.tags[idx] = line_addr;
        self.last_use[idx] = tick;
        self.dirty.assign(idx, dirty);
        self.marked -= usize::from(self.prefetch.get(idx));
        self.marked += usize::from(prefetch);
        self.prefetch.assign(idx, prefetch);
    }

    /// Clears the prefetch mark on `addr`'s line without a full access
    /// (used when an inner-level hit consumes the prefetched data). Returns
    /// whether a mark was cleared; counts as a used prefetch.
    pub fn consume_mark(&mut self, addr: u64) -> bool {
        self.consume_mark_line(self.line_of(addr))
    }

    /// [`Cache::consume_mark`] with the line address already computed.
    #[inline]
    pub fn consume_mark_line(&mut self, line_addr: u64) -> bool {
        if self.marked == 0 {
            return false;
        }
        if let Some(idx) = self.find(line_addr) {
            if self.prefetch.get(idx) {
                self.prefetch.clear(idx);
                self.marked -= 1;
                self.stats.prefetch_used.inc();
                return true;
            }
        }
        false
    }

    /// Invalidates the line holding `addr` (directory-initiated).
    ///
    /// Returns the invalidated line's metadata as an [`Eviction`] so callers
    /// can return credits for marked lines; `None` if the line was absent.
    pub fn invalidate(&mut self, addr: u64) -> Option<Eviction> {
        self.invalidate_line(self.line_of(addr))
    }

    /// [`Cache::invalidate`] with the line address already computed.
    pub fn invalidate_line(&mut self, line_addr: u64) -> Option<Eviction> {
        let idx = self.find(line_addr)?;
        let out = Eviction {
            line_addr,
            dirty: self.dirty.get(idx),
            prefetch_unused: self.prefetch.get(idx),
        };
        if out.prefetch_unused {
            self.marked -= 1;
            self.stats.prefetch_evicted_unused.inc();
        }
        self.tags[idx] = INVALID;
        self.dirty.clear(idx);
        self.prefetch.clear(idx);
        Some(out)
    }

    /// Opens a speculative probe window: subsequent
    /// [`Cache::spec_access_line`] / [`Cache::spec_fill_line`] calls mutate
    /// the cache exactly like their non-spec counterparts but journal prior
    /// state so [`Cache::rollback_spec`] can restore it bit-for-bit.
    pub fn begin_spec(&mut self) {
        debug_assert!(self.spec.saved.is_none(), "nested spec window");
        self.spec.generation += 1;
        self.spec.touched.resize(self.tags.len(), 0);
        self.spec.entries.clear();
        self.spec.saved = Some((self.tick, self.marked, self.stats));
    }

    /// Journals the prior state of every way slot in `line_addr`'s set
    /// (once per window). Accesses and fills only ever mutate slots within
    /// the addressed set, so this bounds the undo exactly.
    fn spec_note_set(&mut self, line_addr: u64) {
        debug_assert!(self.spec.saved.is_some(), "spec op outside a window");
        let base = self.set_base(line_addr);
        for idx in base..base + self.params.ways {
            if self.spec.touched[idx] != self.spec.generation {
                self.spec.touched[idx] = self.spec.generation;
                self.spec.entries.push((
                    idx,
                    self.tags[idx],
                    self.last_use[idx],
                    self.dirty.get(idx),
                    self.prefetch.get(idx),
                ));
            }
        }
    }

    /// [`Cache::access_line`] inside a speculative window: identical
    /// behavior (it delegates), with the touched set journaled first.
    pub fn spec_access_line(&mut self, line_addr: u64, write: bool) -> Lookup {
        self.spec_note_set(line_addr);
        self.access_line(line_addr, write)
    }

    /// [`Cache::fill_line`] inside a speculative window: identical behavior
    /// (it delegates), with the touched set journaled first.
    pub fn spec_fill_line(&mut self, line_addr: u64, write: bool, prefetch: bool) -> Option<Eviction> {
        self.spec_note_set(line_addr);
        self.fill_line(line_addr, write, prefetch)
    }

    /// [`Cache::consume_mark_line`] inside a speculative window: identical
    /// behavior (it delegates), with the touched set journaled first.
    pub fn spec_consume_mark_line(&mut self, line_addr: u64) -> bool {
        self.spec_note_set(line_addr);
        self.consume_mark_line(line_addr)
    }

    /// Closes the window and restores every journaled slot plus the scalar
    /// snapshot, leaving the cache bit-identical to its state at
    /// [`Cache::begin_spec`].
    ///
    /// # Panics
    ///
    /// Panics if no window is open.
    pub fn rollback_spec(&mut self) {
        let (tick, marked, stats) = self.spec.saved.take().expect("rollback without begin_spec");
        for i in (0..self.spec.entries.len()).rev() {
            let (idx, tag, last_use, dirty, prefetch) = self.spec.entries[i];
            self.tags[idx] = tag;
            self.last_use[idx] = last_use;
            self.dirty.assign(idx, dirty);
            self.prefetch.assign(idx, prefetch);
        }
        self.spec.entries.clear();
        self.tick = tick;
        self.marked = marked;
        self.stats = stats;
    }

    /// FNV-style digest of the complete simulated state (tags, recency,
    /// bitsets, scalars, stats) — the differential oracle asserts this is
    /// unchanged across a `begin_spec`/probe/`rollback_spec` cycle.
    pub fn spec_checksum(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(PRIME);
        };
        for &t in &self.tags {
            mix(&mut h, t);
        }
        for &u in &self.last_use {
            mix(&mut h, u);
        }
        for &w in &self.dirty.words {
            mix(&mut h, w);
        }
        for &w in &self.prefetch.words {
            mix(&mut h, w);
        }
        mix(&mut h, self.tick);
        mix(&mut h, self.marked as u64);
        for c in [
            self.stats.hits,
            self.stats.misses,
            self.stats.evictions,
            self.stats.prefetch_fills,
            self.stats.prefetch_used,
            self.stats.prefetch_evicted_unused,
        ] {
            mix(&mut h, c.get());
        }
        h
    }

    /// Number of currently resident lines (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }

    /// Number of resident lines whose prefetch bit is still set.
    pub fn marked_lines(&self) -> usize {
        let scanned = (0..self.tags.len())
            .filter(|&i| self.tags[i] != INVALID && self.prefetch.get(i))
            .count();
        debug_assert_eq!(scanned, self.marked, "marked-line counter drifted");
        scanned
    }
}

/// A plain `u64`-word bitset sized at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    fn new(bits: usize) -> Self {
        Bitset {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    #[inline]
    fn assign(&mut self, i: usize, v: bool) {
        let word = &mut self.words[i >> 6];
        let bit = 1u64 << (i & 63);
        *word = (*word & !bit) | if v { bit } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheParams {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        c.fill(0x100, false, false);
        assert!(c.access(0x100, false).hit);
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.fill(0x1000, false, false);
        assert!(c.access(0x103F, false).hit);
        assert!(c.access(0x1038, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = sets*line = 256B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.fill(a, false, false);
        c.fill(b, false, false);
        c.access(a, false); // refresh a: b is now LRU
        let ev = c.fill(d, false, false).expect("must evict");
        assert_eq!(ev.line_addr, c.line_of(b));
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn prefetch_bit_cleared_on_access() {
        let mut c = tiny();
        c.fill(0x40, false, true);
        assert!(c.probe_prefetched(0x40));
        let l = c.access(0x40, false);
        assert!(l.hit && l.prefetch_consumed);
        assert!(!c.probe_prefetched(0x40));
        // Second access does not re-consume.
        assert!(!c.access(0x40, false).prefetch_consumed);
        assert_eq!(c.stats().prefetch_used.get(), 1);
        assert_eq!(c.stats().prefetch_fills.get(), 1);
    }

    #[test]
    fn prefetch_eviction_reports_unused() {
        let mut c = tiny();
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.fill(a, false, true);
        c.fill(b, false, false);
        c.access(b, false);
        let ev = c.fill(d, false, false).expect("evicts a");
        assert!(ev.prefetch_unused);
        assert_eq!(c.stats().prefetch_evicted_unused.get(), 1);
        assert!((c.stats().prefetch_efficiency() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn dirty_eviction_flag() {
        let mut c = tiny();
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.fill(a, true, false);
        c.fill(b, false, false);
        c.access(b, false);
        let ev = c.fill(d, false, false).expect("evicts a");
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x40, false, true);
        let ev = c.invalidate(0x40).expect("line present");
        assert!(ev.prefetch_unused);
        assert!(!c.probe(0x40));
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn resident_and_marked_counts() {
        let mut c = tiny();
        c.fill(0x00, false, true);
        c.fill(0x40, false, false);
        assert_eq!(c.resident_lines(), 2);
        assert_eq!(c.marked_lines(), 1);
    }

    #[test]
    fn refill_resident_line_is_idempotent() {
        let mut c = tiny();
        c.fill(0x80, false, true);
        assert!(c.fill(0x80, false, true).is_none());
        assert_eq!(c.resident_lines(), 1);
        // Two fills counted, one line used later => efficiency 0.5.
        c.access(0x80, false);
        assert!((c.stats().prefetch_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_defaults_to_one_without_prefetching() {
        let c = tiny();
        assert_eq!(c.stats().prefetch_efficiency(), 1.0);
    }

    #[test]
    fn reused_way_starts_with_clean_metadata() {
        let mut c = tiny();
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        // Dirty + marked victim must not leak its bits to the newcomer.
        c.fill(a, true, true);
        c.fill(b, false, false);
        c.access(b, false);
        let ev = c.fill(d, false, false).expect("evicts a");
        assert!(ev.dirty && ev.prefetch_unused);
        assert!(!c.probe_prefetched(d));
        let ev2 = c.invalidate(d).expect("d resident");
        assert!(!ev2.dirty && !ev2.prefetch_unused);
    }

    #[test]
    fn line_addr_api_matches_byte_addr_api() {
        let mut by_addr = tiny();
        let mut by_line = tiny();
        let addrs = [0x0000u64, 0x0100, 0x0200, 0x0040, 0x0100, 0x1000];
        for (i, &addr) in addrs.iter().enumerate() {
            let write = i % 2 == 0;
            assert_eq!(
                by_addr.access(addr, write),
                by_line.access_line(by_line.line_of(addr), write)
            );
            assert_eq!(
                by_addr.fill(addr, write, i % 3 == 0),
                by_line.fill_line(by_line.line_of(addr), write, i % 3 == 0)
            );
        }
        assert_eq!(by_addr.resident_lines(), by_line.resident_lines());
        assert_eq!(by_addr.marked_lines(), by_line.marked_lines());
        assert_eq!(by_addr.stats().hits.get(), by_line.stats().hits.get());
    }

    #[test]
    fn spec_rollback_restores_state_bit_for_bit() {
        let mut c = tiny();
        c.fill(0x0000, true, false);
        c.fill(0x0100, false, true);
        c.access(0x0000, false);
        let before = c.clone();
        let sum = c.spec_checksum();

        c.begin_spec();
        // Hit, prefetch consumption, miss, and an evicting fill — every
        // mutation class the window can see.
        assert!(c.spec_access_line(c.line_of(0x0100), false).prefetch_consumed);
        assert!(!c.spec_access_line(c.line_of(0x0200), true).hit);
        assert!(c.spec_fill_line(c.line_of(0x0200), true, false).is_some());
        assert!(c.spec_fill_line(c.line_of(0x0040), false, true).is_none());
        assert_ne!(c.spec_checksum(), sum, "window must be observable");
        c.rollback_spec();

        assert_eq!(c, before);
        assert_eq!(c.spec_checksum(), sum);
        assert_eq!(c.marked_lines(), 1);
    }

    #[test]
    fn spec_window_matches_plain_ops_exactly() {
        let mut plain = tiny();
        let mut spec = tiny();
        let lines = [0u64, 4, 8, 1, 4, 12, 0, 8];
        spec.begin_spec();
        for (i, &l) in lines.iter().enumerate() {
            let w = i % 2 == 0;
            assert_eq!(plain.access_line(l, w), spec.spec_access_line(l, w));
            if !plain.probe_line(l) {
                assert_eq!(
                    plain.fill_line(l, w, i % 3 == 0),
                    spec.spec_fill_line(l, w, i % 3 == 0)
                );
            }
        }
        assert_eq!(plain, spec, "spec ops must behave identically");
    }

    #[test]
    fn repeated_spec_windows_reuse_stamps() {
        let mut c = tiny();
        c.fill(0x0000, false, false);
        let before = c.clone();
        for round in 0..3u64 {
            c.begin_spec();
            c.spec_access_line(round % 4, false);
            c.spec_fill_line(16 + round, false, false);
            c.rollback_spec();
            assert_eq!(c, before, "round {round} leaked state");
        }
    }

    /// Regression for the tick-advance fix: the internal clock must move
    /// exactly when a recency timestamp is recorded (hits and fills), and
    /// in particular a miss that performs no fill must leave it untouched.
    #[test]
    fn tick_advances_only_when_recency_is_recorded() {
        let mut c = tiny();
        assert_eq!(c.tick, 0);
        c.access(0x0000, false); // miss, no fill
        c.access(0x4000, false); // miss, no fill
        assert_eq!(c.tick, 0, "no-fill misses must not advance the clock");
        c.fill(0x0000, false, false);
        assert_eq!(c.tick, 1);
        c.access(0x0000, false); // hit
        assert_eq!(c.tick, 2);
        c.probe(0x0000); // probes never touch the clock
        c.consume_mark(0x0000);
        c.invalidate(0x0000);
        assert_eq!(c.tick, 2);
    }

    /// LRU decisions are identical whether or not no-fill misses bump the
    /// clock, because misses record no timestamp: only the relative order
    /// of *recorded* timestamps matters. This replays the same workload
    /// against a reference that models the old always-bump behavior and
    /// demands identical eviction choices.
    #[test]
    fn tick_fix_preserves_lru_order_against_always_bump_reference() {
        /// The pre-fix model: `Vec<Option<(line, last_use, ..)>>` with a
        /// tick bump on every access *and* every fill.
        struct AlwaysBump {
            slots: Vec<Option<(u64, u64)>>, // (line_addr, last_use)
            ways: usize,
            sets: usize,
            tick: u64,
        }
        impl AlwaysBump {
            fn set_base(&self, line: u64) -> usize {
                (line as usize % self.sets) * self.ways
            }
            fn access(&mut self, line: u64) -> bool {
                self.tick += 1;
                let base = self.set_base(line);
                for (l, u) in self.slots[base..base + self.ways].iter_mut().flatten() {
                    if *l == line {
                        *u = self.tick;
                        return true;
                    }
                }
                false
            }
            fn fill(&mut self, line: u64) -> Option<u64> {
                self.tick += 1;
                let base = self.set_base(line);
                for (l, u) in self.slots[base..base + self.ways].iter_mut().flatten() {
                    if *l == line {
                        *u = self.tick;
                        return None;
                    }
                }
                let mut victim = None;
                let mut victim_use = u64::MAX;
                for idx in base..base + self.ways {
                    match self.slots[idx] {
                        None => {
                            self.slots[idx] = Some((line, self.tick));
                            return None;
                        }
                        Some((_, u)) if u < victim_use => {
                            victim_use = u;
                            victim = Some(idx);
                        }
                        Some(_) => {}
                    }
                }
                let idx = victim.unwrap();
                let out = self.slots[idx].unwrap().0;
                self.slots[idx] = Some((line, self.tick));
                Some(out)
            }
        }

        let mut packed = tiny();
        let mut reference = AlwaysBump {
            slots: vec![None; 8],
            ways: 2,
            sets: 4,
            tick: 0,
        };
        // Deterministic address stream over 3 sets' worth of conflicting
        // lines, with plenty of no-fill misses interleaved.
        let mut state = 0x9e37_79b9u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (state >> 33) % 12;
            let addr = line * 64;
            let do_fill = state & 1 == 0;
            let hit = packed.access(addr, false).hit;
            assert_eq!(hit, reference.access(line), "presence diverged");
            if !hit && do_fill {
                let ev = packed.fill(addr, false, false);
                let ev_ref = reference.fill(line);
                assert_eq!(ev.map(|e| e.line_addr), ev_ref, "victim diverged");
            }
        }
    }
}

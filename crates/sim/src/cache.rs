//! Set-associative cache model with LRU replacement and per-line prefetch
//! metadata.
//!
//! The Minnow credit system (paper §5.3.1) augments each L2 line with one
//! *prefetch bit*: lines filled by the Minnow engine are marked, and when a
//! marked line is accessed or evicted the bit is cleared and a credit is
//! returned to the engine. [`Cache`] implements exactly that protocol and
//! reports everything the paper's Fig. 18 (MPKI) and Fig. 20 (prefetch
//! efficiency) need.

use crate::config::CacheParams;
use crate::stats::Counter;

/// One resident cache line.
#[derive(Debug, Clone, Copy)]
struct Line {
    /// Full line address (`addr >> line_shift`); doubles as the tag.
    line_addr: u64,
    /// LRU timestamp (bigger = more recently used).
    last_use: u64,
    /// Dirty (written) since fill.
    dirty: bool,
    /// Minnow prefetch bit (paper §5.3.1).
    prefetch: bool,
}

/// What happened to a victim line when a fill forced an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line address of the victim (`addr >> line_shift`).
    pub line_addr: u64,
    /// The victim was dirty and would be written back.
    pub dirty: bool,
    /// The victim still had its prefetch bit set — i.e. it was prefetched
    /// but never used. Its credit must be returned (paper §5.3.1).
    pub prefetch_unused: bool,
}

/// Result of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// The line was resident.
    pub hit: bool,
    /// The line was resident *and* had its prefetch bit set; the bit has been
    /// cleared and the corresponding credit must be returned.
    pub prefetch_consumed: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: Counter,
    /// Demand lookups that missed.
    pub misses: Counter,
    /// Lines evicted to make room for fills.
    pub evictions: Counter,
    /// Fills performed on behalf of a prefetcher (marked lines).
    pub prefetch_fills: Counter,
    /// Prefetched lines consumed by a demand access before eviction.
    pub prefetch_used: Counter,
    /// Prefetched lines evicted before any demand access.
    pub prefetch_evicted_unused: Counter,
}

impl CacheStats {
    /// Prefetch efficiency as the paper defines it (Fig. 20): prefetched
    /// lines used before eviction over total prefetch fills.
    pub fn prefetch_efficiency(&self) -> f64 {
        let fills = self.prefetch_fills.get();
        if fills == 0 {
            return 1.0;
        }
        self.prefetch_used.get() as f64 / fills as f64
    }

    /// Demand miss ratio (misses / lookups), or 0.0 with no traffic.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }
}

/// A single set-associative, write-allocate, LRU cache.
///
/// The cache is a *presence* model: it tracks which lines are resident, not
/// their data. Fills are explicit so that the surrounding
/// [hierarchy](crate::hierarchy) can decide inclusion/exclusion policy and
/// so prefetchers can insert marked lines.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: usize,
    line_shift: u32,
    /// `sets * ways` slots; `None` = invalid way.
    slots: Vec<Option<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheParams::sets`]) or the
    /// line size is not a power of two.
    pub fn new(params: CacheParams) -> Self {
        assert!(
            params.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = params.sets();
        Cache {
            params,
            sets,
            line_shift: params.line_bytes.trailing_zeros(),
            slots: vec![None; sets * params.ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (contents are kept, supporting warmup phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Maps a byte address to its line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = if self.sets.is_power_of_two() {
            (line_addr as usize) & (self.sets - 1)
        } else {
            (line_addr as usize) % self.sets
        };
        let start = set * self.params.ways;
        start..start + self.params.ways
    }

    /// Demand access. Updates LRU, clears the prefetch bit on a hit to a
    /// marked line, and records hit/miss stats. The caller performs the fill
    /// on a miss via [`Cache::fill`].
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        let line_addr = self.line_of(addr);
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line_addr);
        for line in self.slots[range].iter_mut().flatten() {
            if line.line_addr == line_addr {
                line.last_use = tick;
                line.dirty |= write;
                let prefetch_consumed = line.prefetch;
                if prefetch_consumed {
                    line.prefetch = false;
                    self.stats.prefetch_used.inc();
                }
                self.stats.hits.inc();
                return Lookup {
                    hit: true,
                    prefetch_consumed,
                };
            }
        }
        self.stats.misses.inc();
        Lookup {
            hit: false,
            prefetch_consumed: false,
        }
    }

    /// Non-mutating presence probe (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = self.line_of(addr);
        self.slots[self.set_range(line_addr)]
            .iter()
            .flatten()
            .any(|l| l.line_addr == line_addr)
    }

    /// Returns whether the line holding `addr` is resident with its prefetch
    /// bit still set (prefetched but not yet used).
    pub fn probe_prefetched(&self, addr: u64) -> bool {
        let line_addr = self.line_of(addr);
        self.slots[self.set_range(line_addr)]
            .iter()
            .flatten()
            .any(|l| l.line_addr == line_addr && l.prefetch)
    }

    /// Inserts the line holding `addr`. `prefetch` marks the line as a
    /// prefetch fill (paper §5.3.1). Returns the eviction, if any.
    ///
    /// Filling an already-resident line refreshes LRU; a demand fill
    /// (`prefetch == false`) over a marked line leaves the mark intact so the
    /// pending credit is still returned on first *demand access* — in
    /// practice the hierarchy always accesses before filling, so this path
    /// only matters for prefetch-over-prefetch, which is idempotent.
    pub fn fill(&mut self, addr: u64, write: bool, prefetch: bool) -> Option<Eviction> {
        let line_addr = self.line_of(addr);
        self.tick += 1;
        let tick = self.tick;
        if prefetch {
            self.stats.prefetch_fills.inc();
        }
        let range = self.set_range(line_addr);

        // Already resident: refresh.
        for line in self.slots[range.clone()].iter_mut().flatten() {
            if line.line_addr == line_addr {
                line.last_use = tick;
                line.dirty |= write;
                return None;
            }
        }

        // Free way?
        let new_line = Line {
            line_addr,
            last_use: tick,
            dirty: write,
            prefetch,
        };
        let mut victim_idx = None;
        let mut victim_use = u64::MAX;
        for idx in range {
            match &self.slots[idx] {
                None => {
                    self.slots[idx] = Some(new_line);
                    return None;
                }
                Some(line) => {
                    if line.last_use < victim_use {
                        victim_use = line.last_use;
                        victim_idx = Some(idx);
                    }
                }
            }
        }

        // Evict LRU.
        let idx = victim_idx.expect("non-empty set must have an LRU victim");
        let victim = self.slots[idx].take().expect("victim slot must be occupied");
        self.slots[idx] = Some(new_line);
        self.stats.evictions.inc();
        if victim.prefetch {
            self.stats.prefetch_evicted_unused.inc();
        }
        Some(Eviction {
            line_addr: victim.line_addr,
            dirty: victim.dirty,
            prefetch_unused: victim.prefetch,
        })
    }

    /// Clears the prefetch mark on `addr`'s line without a full access
    /// (used when an inner-level hit consumes the prefetched data). Returns
    /// whether a mark was cleared; counts as a used prefetch.
    pub fn consume_mark(&mut self, addr: u64) -> bool {
        let line_addr = self.line_of(addr);
        let range = self.set_range(line_addr);
        for line in self.slots[range].iter_mut().flatten() {
            if line.line_addr == line_addr && line.prefetch {
                line.prefetch = false;
                self.stats.prefetch_used.inc();
                return true;
            }
        }
        false
    }

    /// Invalidates the line holding `addr` (directory-initiated).
    ///
    /// Returns the invalidated line's metadata as an [`Eviction`] so callers
    /// can return credits for marked lines; `None` if the line was absent.
    pub fn invalidate(&mut self, addr: u64) -> Option<Eviction> {
        let line_addr = self.line_of(addr);
        let range = self.set_range(line_addr);
        for idx in range {
            if let Some(line) = self.slots[idx] {
                if line.line_addr == line_addr {
                    self.slots[idx] = None;
                    if line.prefetch {
                        self.stats.prefetch_evicted_unused.inc();
                    }
                    return Some(Eviction {
                        line_addr,
                        dirty: line.dirty,
                        prefetch_unused: line.prefetch,
                    });
                }
            }
        }
        None
    }

    /// Number of currently resident lines (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Number of resident lines whose prefetch bit is still set.
    pub fn marked_lines(&self) -> usize {
        self.slots.iter().flatten().filter(|l| l.prefetch).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheParams {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        c.fill(0x100, false, false);
        assert!(c.access(0x100, false).hit);
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.fill(0x1000, false, false);
        assert!(c.access(0x103F, false).hit);
        assert!(c.access(0x1038, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = sets*line = 256B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.fill(a, false, false);
        c.fill(b, false, false);
        c.access(a, false); // refresh a: b is now LRU
        let ev = c.fill(d, false, false).expect("must evict");
        assert_eq!(ev.line_addr, c.line_of(b));
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn prefetch_bit_cleared_on_access() {
        let mut c = tiny();
        c.fill(0x40, false, true);
        assert!(c.probe_prefetched(0x40));
        let l = c.access(0x40, false);
        assert!(l.hit && l.prefetch_consumed);
        assert!(!c.probe_prefetched(0x40));
        // Second access does not re-consume.
        assert!(!c.access(0x40, false).prefetch_consumed);
        assert_eq!(c.stats().prefetch_used.get(), 1);
        assert_eq!(c.stats().prefetch_fills.get(), 1);
    }

    #[test]
    fn prefetch_eviction_reports_unused() {
        let mut c = tiny();
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.fill(a, false, true);
        c.fill(b, false, false);
        c.access(b, false);
        let ev = c.fill(d, false, false).expect("evicts a");
        assert!(ev.prefetch_unused);
        assert_eq!(c.stats().prefetch_evicted_unused.get(), 1);
        assert!((c.stats().prefetch_efficiency() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn dirty_eviction_flag() {
        let mut c = tiny();
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.fill(a, true, false);
        c.fill(b, false, false);
        c.access(b, false);
        let ev = c.fill(d, false, false).expect("evicts a");
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x40, false, true);
        let ev = c.invalidate(0x40).expect("line present");
        assert!(ev.prefetch_unused);
        assert!(!c.probe(0x40));
        assert!(c.invalidate(0x40).is_none());
    }

    #[test]
    fn resident_and_marked_counts() {
        let mut c = tiny();
        c.fill(0x00, false, true);
        c.fill(0x40, false, false);
        assert_eq!(c.resident_lines(), 2);
        assert_eq!(c.marked_lines(), 1);
    }

    #[test]
    fn refill_resident_line_is_idempotent() {
        let mut c = tiny();
        c.fill(0x80, false, true);
        assert!(c.fill(0x80, false, true).is_none());
        assert_eq!(c.resident_lines(), 1);
        // Two fills counted, one line used later => efficiency 0.5.
        c.access(0x80, false);
        assert!((c.stats().prefetch_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_defaults_to_one_without_prefetching() {
        let c = tiny();
        assert_eq!(c.stats().prefetch_efficiency(), 1.0);
    }
}

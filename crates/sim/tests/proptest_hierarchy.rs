//! Property tests over the memory hierarchy's invariants.

use proptest::prelude::*;

use minnow_sim::hierarchy::{AccessKind, CacheLevel, MemoryHierarchy};
use minnow_sim::SimConfig;

fn any_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Load),
        Just(AccessKind::Store),
        Just(AccessKind::Atomic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Latency is always at least the L1 hit latency, and repeating the
    /// same access immediately always hits L1.
    #[test]
    fn access_latency_bounds(ops in prop::collection::vec((0usize..4, 0u64..(1 << 18), any_kind()), 1..300)) {
        let cfg = SimConfig::small(4);
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut now = 0u64;
        for (core, addr, kind) in ops {
            let r = mem.access(core, addr, kind, now);
            prop_assert!(r.latency >= cfg.l1d.latency);
            now += r.latency;
            let again = mem.access(core, addr, AccessKind::Load, now);
            prop_assert_eq!(again.level, CacheLevel::L1, "immediate re-access must hit L1");
            now += again.latency;
        }
        let t = mem.total_stats();
        prop_assert!(t.l2_misses <= t.l1_misses);
        prop_assert!(t.l3_misses <= t.l2_misses);
    }

    /// Credit conservation across arbitrary interleavings of prefetch
    /// fills and demand accesses: every filled credit is eventually
    /// drainable (consumed or still marked).
    #[test]
    fn prefetch_credits_conserved(ops in prop::collection::vec((0u64..256, any::<bool>()), 1..400)) {
        let cfg = SimConfig::small(1);
        let mut mem = MemoryHierarchy::new(&cfg);
        let mut filled = 0u64;
        let mut drained = 0u64;
        let mut now = 0u64;
        for (slot, demand) in ops {
            let addr = 0x9000_0000 + slot * 64;
            if demand {
                let r = mem.access(0, addr, AccessKind::Load, now);
                now += r.latency;
            } else {
                let r = mem.prefetch_fill(0, addr, now);
                if r.filled {
                    filled += 1;
                }
                now += 10;
            }
            drained += mem.drain_returned_credits(0);
        }
        let still_marked = mem.l2_cache(0).marked_lines() as u64;
        prop_assert_eq!(filled, drained + still_marked,
            "every credit is either returned or still marked");
    }

    /// Writes gain exclusive ownership: after core A writes, core B's copy
    /// is gone (its next access leaves the private caches).
    #[test]
    fn write_invalidates_all_sharers(addr in (0u64..(1 << 14)).prop_map(|a| a * 64),
                                     writer in 0usize..4) {
        let cfg = SimConfig::small(4);
        let mut mem = MemoryHierarchy::new(&cfg);
        for core in 0..4 {
            mem.access(core, addr, AccessKind::Load, 0);
        }
        mem.access(writer, addr, AccessKind::Store, 1000);
        for core in 0..4 {
            let r = mem.access(core, addr, AccessKind::Load, 2000);
            if core == writer {
                prop_assert_eq!(r.level, CacheLevel::L1);
            } else {
                prop_assert!(r.level >= CacheLevel::L3, "sharer {} kept a stale copy", core);
            }
        }
    }
}

//! Search strategies: which configurations run at which rungs.
//!
//! A strategy is a pure, deterministic function of `(space, seed,
//! completed evaluations)` — it owns no mutable state and consults no
//! clock or thread order. The explorer asks it for *waves*: wave `w`
//! is a set of `(configuration, rung)` evaluations that may only be
//! planned once every evaluation of waves `0..w` is on record. Because
//! the planning is recomputable, a resumed search replays the same
//! waves and the journal acts as a pure evaluation cache.
//!
//! * [`Strategy::Grid`] — the oracle: everything at the final rung.
//! * [`Strategy::Random`] — a seeded without-replacement sample of the
//!   candidate grid at the final rung.
//! * [`Strategy::Halving`] — successive halving up the rung ladder:
//!   everything runs at the cheapest rung; within each *area class*
//!   (configurations pricing identical silicon) only the top
//!   `ceil(n/eta)` by speedup are promoted to the next, more expensive
//!   rung. Pruning per area class rather than globally keeps every
//!   frontier-relevant cost point represented, which is what lets a
//!   halving search recover the grid's Pareto set at a fraction of the
//!   simulated work.

use crate::space::{ConfigPoint, Space};
use minnow_bench::json::number;

/// A search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate every configuration at the final rung.
    Grid,
    /// Evaluate a seeded sample of `samples` candidates (plus their
    /// baselines) at the final rung.
    Random {
        /// Number of candidates to sample (clamped to the grid size).
        samples: usize,
    },
    /// Successive halving with reduction factor `eta` per rung.
    Halving {
        /// Fraction of each area class surviving a rung: `ceil(n/eta)`.
        eta: usize,
    },
}

/// One requested evaluation: an index into [`Space::configs`] plus a
/// rung index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalKey {
    /// Configuration index in enumeration order.
    pub config: usize,
    /// Rung index into the space's scale ladder.
    pub rung: usize,
}

impl Strategy {
    /// Builds a strategy from CLI-shaped inputs.
    ///
    /// # Errors
    ///
    /// Rejects unknown kinds, `samples == 0`, and `eta < 2`.
    pub fn from_flags(kind: &str, samples: usize, eta: usize) -> Result<Strategy, String> {
        match kind {
            "grid" => Ok(Strategy::Grid),
            "random" => {
                if samples == 0 {
                    return Err("--samples must be at least 1".into());
                }
                Ok(Strategy::Random { samples })
            }
            "halving" => {
                if eta < 2 {
                    return Err("--eta must be at least 2".into());
                }
                Ok(Strategy::Halving { eta })
            }
            other => Err(format!(
                "unknown strategy `{other}` (expected grid, random, or halving)"
            )),
        }
    }

    /// The label journals and artifacts carry, e.g. `halving2`.
    pub fn label(&self) -> String {
        match self {
            Strategy::Grid => "grid".into(),
            Strategy::Random { samples } => format!("random{samples}"),
            Strategy::Halving { eta } => format!("halving{eta}"),
        }
    }

    /// Plans wave `wave` of the search, or `None` when the search is
    /// complete. `makespan` must answer for every evaluation of every
    /// earlier wave (the explorer guarantees this by running waves to
    /// completion in order); this call panics if that contract is
    /// broken.
    pub fn wave(
        &self,
        wave: usize,
        space: &Space,
        configs: &[ConfigPoint],
        seed: u64,
        makespan: &dyn Fn(&str, usize) -> Option<u64>,
    ) -> Option<Vec<EvalKey>> {
        let last_rung = space.rungs.len() - 1;
        match *self {
            Strategy::Grid => (wave == 0).then(|| {
                (0..configs.len())
                    .map(|config| EvalKey { config, rung: last_rung })
                    .collect()
            }),
            Strategy::Random { samples } => (wave == 0).then(|| {
                let candidates: Vec<usize> = (0..configs.len())
                    .filter(|&i| !configs[i].is_baseline())
                    .collect();
                let chosen = sample_without_replacement(&candidates, samples, seed);
                with_baselines(configs, chosen, last_rung)
            }),
            Strategy::Halving { eta } => {
                if wave > last_rung {
                    return None;
                }
                let mut survivors: Vec<usize> = (0..configs.len())
                    .filter(|&i| !configs[i].is_baseline())
                    .collect();
                for rung in 0..wave {
                    survivors = prune_per_area_class(eta, configs, &survivors, rung, makespan);
                }
                Some(with_baselines(configs, survivors, wave))
            }
        }
    }
}

/// Appends every baseline the chosen candidates normalize against and
/// returns the wave in enumeration order (baselines enumerate first, so
/// a plain sort suffices). Enumeration order is what makes the budget's
/// "prefix of pending evaluations" deterministic.
fn with_baselines(configs: &[ConfigPoint], chosen: Vec<usize>, rung: usize) -> Vec<EvalKey> {
    let mut indices = chosen;
    for i in 0..configs.len() {
        if !configs[i].is_baseline() {
            continue;
        }
        let needed = indices
            .iter()
            .any(|&c| configs[c].baseline_id() == configs[i].id);
        if needed {
            indices.push(i);
        }
    }
    indices.sort_unstable();
    indices.dedup();
    indices
        .into_iter()
        .map(|config| EvalKey { config, rung })
        .collect()
}

/// Seeded Fisher–Yates prefix: the first `samples` elements of a
/// deterministic shuffle of `pool`.
fn sample_without_replacement(pool: &[usize], samples: usize, seed: u64) -> Vec<usize> {
    let mut items = pool.to_vec();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let take = samples.min(items.len());
    for i in 0..take {
        let r = splitmix64(&mut state) as usize;
        let j = i + r % (items.len() - i);
        items.swap(i, j);
    }
    items.truncate(take);
    items
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Keeps the top `ceil(n/eta)` of each area class by speedup at `rung`.
/// The class key is the area at the frontier's own six-decimal
/// precision, so "same cost" here means "same cost in the artifact".
/// Ties in speedup break toward the earlier enumeration index, keeping
/// the cut deterministic.
fn prune_per_area_class(
    eta: usize,
    configs: &[ConfigPoint],
    survivors: &[usize],
    rung: usize,
    makespan: &dyn Fn(&str, usize) -> Option<u64>,
) -> Vec<usize> {
    let speedup_of = |idx: usize| -> f64 {
        let c = &configs[idx];
        let base = makespan(&c.baseline_id(), rung)
            .unwrap_or_else(|| panic!("baseline {} missing at rung {rung}", c.baseline_id()));
        let own = makespan(&c.id, rung)
            .unwrap_or_else(|| panic!("candidate {} missing at rung {rung}", c.id));
        base as f64 / own.max(1) as f64
    };
    // Classes keyed by serialized area, in first-appearance order so the
    // output order never depends on float formatting quirks.
    let mut classes: Vec<(String, Vec<usize>)> = Vec::new();
    for &idx in survivors {
        let key = number(configs[idx].area_mm2());
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(idx),
            None => classes.push((key, vec![idx])),
        }
    }
    let mut kept = Vec::new();
    for (_, mut members) in classes {
        let keep = members.len().div_ceil(eta);
        members.sort_by(|&a, &b| {
            speedup_of(b)
                .partial_cmp(&speedup_of(a))
                .expect("speedups are finite")
                .then(a.cmp(&b))
        });
        members.truncate(keep);
        kept.extend(members);
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn no_results(_: &str, _: usize) -> Option<u64> {
        None
    }

    #[test]
    fn labels_and_flag_parsing() {
        assert_eq!(Strategy::from_flags("grid", 8, 2).unwrap().label(), "grid");
        assert_eq!(
            Strategy::from_flags("random", 8, 2).unwrap().label(),
            "random8"
        );
        assert_eq!(
            Strategy::from_flags("halving", 8, 3).unwrap().label(),
            "halving3"
        );
        assert!(Strategy::from_flags("random", 0, 2).is_err());
        assert!(Strategy::from_flags("halving", 8, 1).is_err());
        assert!(Strategy::from_flags("anneal", 8, 2).is_err());
    }

    #[test]
    fn grid_is_one_wave_of_everything_at_the_final_rung() {
        let space = Space::smoke();
        let configs = space.configs();
        let wave = Strategy::Grid
            .wave(0, &space, &configs, 42, &no_results)
            .unwrap();
        assert_eq!(wave.len(), configs.len());
        assert!(wave.iter().all(|e| e.rung == space.rungs.len() - 1));
        assert!(Strategy::Grid.wave(1, &space, &configs, 42, &no_results).is_none());
    }

    #[test]
    fn random_samples_are_seed_deterministic_and_carry_baselines() {
        let space = Space::golden_fig16();
        let configs = space.configs();
        let s = Strategy::Random { samples: 3 };
        let a = s.wave(0, &space, &configs, 42, &no_results).unwrap();
        let b = s.wave(0, &space, &configs, 42, &no_results).unwrap();
        assert_eq!(a, b, "same seed, same sample");
        let c = s.wave(0, &space, &configs, 43, &no_results).unwrap();
        assert_ne!(a, c, "different seed should move the sample");
        // 3 candidates + the single BFS/t4 baseline, in enumeration order.
        assert_eq!(a.len(), 4);
        assert!(configs[a[0].config].is_baseline());
        assert!(a.windows(2).all(|w| w[0].config < w[1].config));
        // Oversampling clamps to the whole grid.
        let all = Strategy::Random { samples: 999 }
            .wave(0, &space, &configs, 42, &no_results)
            .unwrap();
        assert_eq!(all.len(), configs.len());
    }

    #[test]
    fn halving_prunes_within_area_classes_and_keeps_winners() {
        let space = Space::golden_fig16();
        let configs = space.configs();
        let s = Strategy::Halving { eta: 2 };
        // Wave 0: everything at rung 0.
        let w0 = s.wave(0, &space, &configs, 42, &no_results).unwrap();
        assert_eq!(w0.len(), configs.len());
        assert!(w0.iter().all(|e| e.rung == 0));

        // Fabricate rung-0 results: makespan improves with credits, so
        // the per-class winner is the highest-credit config of each L2
        // size. Baselines get a fixed slow makespan.
        let mut fake: HashMap<(String, usize), u64> = HashMap::new();
        for (i, c) in configs.iter().enumerate() {
            let m = if c.is_baseline() { 10_000 } else { 5_000 - 10 * i as u64 };
            fake.insert((c.id.clone(), 0), m);
        }
        let lookup = |id: &str, rung: usize| fake.get(&(id.to_string(), rung)).copied();
        let w1 = s.wave(1, &space, &configs, 42, &lookup).unwrap();
        // 8 candidates in 2 area classes (l2-8k, l2-16k) of 4 each ->
        // 2 survivors per class, plus the baseline.
        assert_eq!(w1.len(), 5);
        assert!(w1.iter().all(|e| e.rung == 1));
        let survivors: Vec<&str> = w1
            .iter()
            .filter(|e| !configs[e.config].is_baseline())
            .map(|e| configs[e.config].id.as_str())
            .collect();
        assert_eq!(survivors.iter().filter(|s| s.contains("/l2-8k/")).count(), 2);
        assert_eq!(survivors.iter().filter(|s| s.contains("/l2-16k/")).count(), 2);
        // Highest index = lowest makespan = per-class winner survives.
        assert!(survivors.contains(&"BFS/t4/c128/l2-8k/lq64/r16"));
        assert!(survivors.contains(&"BFS/t4/c128/l2-16k/lq64/r16"));
        // The ladder ends after the last rung.
        assert!(s.wave(2, &space, &configs, 42, &lookup).is_none());
    }
}

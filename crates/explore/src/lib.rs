//! Checkpointed design-space exploration over the Minnow simulator.
//!
//! The Minnow paper fixes one engine design and evaluates it; this
//! crate asks the question the paper's §5.4 area model makes
//! answerable: *which* engine configuration buys the most speedup per
//! mm²? A search is declared as a [`space::Space`] (axes: workload,
//! thread count, prefetch credits, L2 geometry, engine queue sizing,
//! input-scale rungs), driven by a [`strategy::Strategy`] (full grid,
//! seeded random sampling, or successive halving up the rung ladder),
//! and every simulated evaluation is journaled to an append-only
//! checkpoint ([`journal::Journal`]) before the search advances.
//!
//! # Resume model
//!
//! Strategies are pure functions of `(space, seed, recorded results)`;
//! the journal is an evaluation cache keyed `(configuration, rung)`.
//! Re-running a killed search replays the same waves, serves finished
//! evaluations from the journal, and simulates only what is missing —
//! so an interrupted-and-resumed search produces a final frontier
//! artifact **byte-identical** to an uninterrupted one (the volatile
//! host wall time never leaves the journal). The same mechanism gives
//! deterministic pausing: [`ExploreConfig::max_fresh_evals`] bounds how
//! many *new* simulations one invocation may run, taking a prefix of
//! the pending work in enumeration order.
//!
//! # Objective
//!
//! [`frontier::build_frontier`] scores every final-rung configuration
//! by speedup over its software baseline and by §5.4 engine area at
//! 14nm, marks per-(workload, threads) Pareto-optimal rows, and emits
//! the versioned `minnow-explore-frontier/v1` JSONL artifact plus a
//! human-readable table.

pub mod frontier;
pub mod journal;
pub mod space;
pub mod strategy;

// The JSON reader moved into `minnow-bench` so the serving layer can
// parse wire requests; the old path keeps working.
pub use minnow_bench::json_read;

use std::path::{Path, PathBuf};

use minnow_bench::eval::{EvalRequest, Evaluator, LocalEvaluator};

pub use frontier::{build_frontier, FrontierDoc, FrontierRow, FRONTIER_SCHEMA};
pub use journal::{EvalRecord, ExploreError, Journal, JournalHeader, JOURNAL_SCHEMA};
pub use space::{ConfigPoint, Rung, Space};
pub use strategy::{EvalKey, Strategy};

/// One exploration invocation's configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The declared space.
    pub space: Space,
    /// Search strategy.
    pub strategy: Strategy,
    /// Sweep seed: drives graph generation and random sampling.
    pub seed: u64,
    /// Sweep-pool worker threads (simulations in flight at once).
    pub pool_threads: usize,
    /// Bound-weave threads per simulation point.
    pub point_threads: usize,
    /// Skip the sharded weave's adaptive serial fallback (see
    /// `minnow_bench::sweep::SweepConfig::pin_point_threads`).
    pub pin_point_threads: bool,
    /// Explicit front-shard count within each point's `point_threads`
    /// budget (see `minnow_bench::sweep::SweepConfig::front_shards`).
    pub front_shards: Option<usize>,
    /// Speculative shard overlap toggle (see
    /// `minnow_bench::sweep::SweepConfig::speculate`); outcome-neutral.
    pub speculate: Option<bool>,
    /// Budget of *fresh* simulations this invocation may run; `None`
    /// is unbounded. Cached journal hits are always free. The budget
    /// selects a prefix of pending evaluations in enumeration order,
    /// so pausing is as deterministic as completing.
    pub max_fresh_evals: Option<usize>,
    /// Journal (checkpoint) path.
    pub journal_path: PathBuf,
    /// Narrate per-wave progress to stderr.
    pub verbose: bool,
}

/// What an exploration invocation ended with.
#[derive(Debug)]
pub enum ExploreOutcome {
    /// Every wave ran; the frontier is final.
    Complete {
        /// The frontier document.
        frontier: FrontierDoc,
        /// Fresh simulations this invocation ran.
        fresh: usize,
        /// Evaluations served from the journal.
        resumed: usize,
    },
    /// The fresh-evaluation budget ran out mid-search; re-invoking with
    /// the same journal continues exactly here.
    Paused {
        /// Fresh simulations this invocation ran before pausing.
        fresh: usize,
        /// Evaluations served from the journal.
        resumed: usize,
        /// The wave the search paused inside.
        wave: usize,
        /// Evaluations of that wave still unsimulated.
        remaining_in_wave: usize,
    },
}

/// Runs (or resumes) an exploration.
///
/// # Errors
///
/// Fails on invalid spaces, journal identity mismatches, interior
/// journal corruption, and filesystem errors. A truncated final
/// journal line — the footprint of a killed process — is not an error;
/// the lost evaluation simply re-runs.
pub fn explore(cfg: &ExploreConfig) -> Result<ExploreOutcome, ExploreError> {
    let mut local = LocalEvaluator {
        pool_threads: cfg.pool_threads.max(1),
        point_threads: cfg.point_threads.max(1),
        pin_point_threads: cfg.pin_point_threads,
        front_shards: cfg.front_shards,
        speculate: cfg.speculate,
        verbose: cfg.verbose,
        tag: "explore".into(),
    };
    explore_with(cfg, &mut local)
}

/// [`explore`] with an explicit [`Evaluator`]: the daemon serves
/// searches through its memoizing store and remote workers by passing
/// its own implementation here. The search logic — waves, journal
/// replay, budgets, frontier — is identical, so the frontier artifact
/// is byte-identical for any conforming evaluator.
///
/// # Errors
///
/// Everything [`explore`] fails on, plus evaluator transport errors.
pub fn explore_with(
    cfg: &ExploreConfig,
    evaluator: &mut dyn Evaluator,
) -> Result<ExploreOutcome, ExploreError> {
    cfg.space.validate().map_err(ExploreError::Config)?;
    let configs = cfg.space.configs();
    let mut journal = Journal::open(
        &cfg.journal_path,
        JournalHeader {
            space: cfg.space.name.clone(),
            seed: cfg.seed,
            strategy: cfg.strategy.label(),
            rungs: cfg.space.rungs.clone(),
        },
    )?;
    let resumed = journal.resumed();
    let mut fresh = 0usize;

    let mut wave_idx = 0;
    loop {
        let wave = {
            let lookup = |id: &str, rung: usize| journal.get(id, rung).map(|r| r.makespan);
            match cfg
                .strategy
                .wave(wave_idx, &cfg.space, &configs, cfg.seed, &lookup)
            {
                Some(wave) => wave,
                None => break,
            }
        };
        let pending: Vec<EvalKey> = wave
            .iter()
            .copied()
            .filter(|e| journal.get(&configs[e.config].id, e.rung).is_none())
            .collect();
        if cfg.verbose && !wave.is_empty() {
            eprintln!(
                "[explore] wave {wave_idx}: {} evaluations ({} cached, {} to simulate)",
                wave.len(),
                wave.len() - pending.len(),
                pending.len()
            );
        }
        let allowed = cfg
            .max_fresh_evals
            .map_or(pending.len(), |b| b.saturating_sub(fresh).min(pending.len()));
        // Checkpoint in chunks so a kill forfeits at most one chunk of
        // simulation, not the whole wave.
        let chunk_size = (cfg.pool_threads * 2).max(4);
        for chunk in pending[..allowed].chunks(chunk_size) {
            let batch = simulate(cfg, &configs, chunk, evaluator)?;
            fresh += batch.records.len();
            let base_seq = journal.next_seq();
            journal.append_batch(
                batch
                    .records
                    .into_iter()
                    .enumerate()
                    .map(|(i, mut rec)| {
                        rec.seq = base_seq + i as u64;
                        rec
                    })
                    .collect(),
            )?;
        }
        if allowed < pending.len() {
            return Ok(ExploreOutcome::Paused {
                fresh,
                resumed,
                wave: wave_idx,
                remaining_in_wave: pending.len() - allowed,
            });
        }
        wave_idx += 1;
    }

    let frontier = build_frontier(&cfg.space, &cfg.strategy, cfg.seed, &journal)?;
    Ok(ExploreOutcome::Complete {
        frontier,
        fresh,
        resumed,
    })
}

struct Batch {
    records: Vec<EvalRecord>,
}

/// Simulates one chunk of evaluations through the evaluator and turns
/// the responses into journal records (sequence numbers assigned by
/// the caller). Request ids encode the rung (`<config>@r<rung>`) so
/// one chunk may mix rungs without collision.
fn simulate(
    cfg: &ExploreConfig,
    configs: &[ConfigPoint],
    chunk: &[EvalKey],
    evaluator: &mut dyn Evaluator,
) -> Result<Batch, ExploreError> {
    let requests: Vec<EvalRequest> = chunk
        .iter()
        .map(|e| {
            let point = &configs[e.config];
            EvalRequest {
                id: format!("{}@r{}", point.id, e.rung),
                run: point.bench_run(&cfg.space.rungs[e.rung], cfg.seed),
            }
        })
        .collect();
    let seeds: Vec<u64> = requests.iter().map(|r| r.run.seed).collect();
    let responses = evaluator
        .evaluate(requests)
        .map_err(|e| ExploreError::Config(format!("evaluator: {e}")))?;
    if responses.len() != chunk.len() {
        return Err(ExploreError::Config(format!(
            "evaluator answered {} of {} requests",
            responses.len(),
            chunk.len()
        )));
    }
    let records = chunk
        .iter()
        .zip(&seeds)
        .zip(&responses)
        .map(|((e, seed), resp)| EvalRecord {
            seq: 0, // assigned at append time
            id: configs[e.config].id.clone(),
            rung: e.rung,
            scale: cfg.space.rungs[e.rung].scale_value(),
            seed: *seed,
            makespan: resp.report.makespan,
            tasks: resp.report.tasks,
            instructions: resp.report.instructions,
            l2_misses: resp.report.l2_misses,
            mem_accesses: resp.report.mem_accesses,
            timed_out: resp.report.timed_out,
            wall_us: resp.wall_us,
        })
        .collect();
    Ok(Batch { records })
}

/// Writes `<space>.frontier.jsonl` and `<space>.frontier.txt` under
/// `dir`, returning their paths.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or writes.
pub fn write_frontier_artifacts(
    dir: &Path,
    doc: &FrontierDoc,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let jsonl = dir.join(format!("{}.frontier.jsonl", doc.space));
    let table = dir.join(format!("{}.frontier.txt", doc.space));
    std::fs::write(&jsonl, doc.to_jsonl())?;
    std::fs::write(&table, doc.table())?;
    Ok((jsonl, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_journal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "minnow-explore-{}-{name}.journal.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn grid_smoke_completes_and_resume_is_free_and_byte_identical() {
        let path = tmp_journal("grid-smoke");
        let _ = std::fs::remove_file(&path);
        let cfg = ExploreConfig {
            space: Space::smoke(),
            strategy: Strategy::Grid,
            seed: 42,
            pool_threads: 2,
            point_threads: 1,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
            max_fresh_evals: None,
            journal_path: path.clone(),
            verbose: false,
        };
        let ExploreOutcome::Complete { frontier, fresh, resumed } = explore(&cfg).unwrap() else {
            panic!("unbudgeted grid must complete");
        };
        assert_eq!(resumed, 0);
        assert_eq!(fresh, frontier.evaluated, "grid evaluates final rung only");
        assert_eq!(frontier.evaluated, Space::smoke().configs().len());
        // The baseline anchors the frontier at (area 0, speedup 1).
        let base = frontier.rows.iter().find(|r| r.baseline).unwrap();
        assert!(base.pareto && base.area_mm2 == 0.0 && base.speedup == 1.0);

        // Resume: everything is served from the journal, and the
        // artifact bytes do not move.
        let ExploreOutcome::Complete { frontier: again, fresh, resumed } =
            explore(&cfg).unwrap()
        else {
            panic!("resume must complete");
        };
        assert_eq!(fresh, 0, "resume re-simulated nothing");
        assert_eq!(resumed, frontier.evals);
        assert_eq!(again.to_jsonl(), frontier.to_jsonl());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn input_rung_spaces_explore_external_graphs() {
        let dir = std::env::temp_dir().join(format!("minnow-explore-input-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("ring.el");
        // A 64-node ring, both directions, so BFS has work on every node.
        let mut text = String::new();
        for u in 0..64u32 {
            let v = (u + 1) % 64;
            text.push_str(&format!("{u} {v}\n{v} {u}\n"));
        }
        std::fs::write(&graph, text).unwrap();
        let mut space = Space::smoke();
        space.name = "input-smoke".into();
        space.rungs = vec![Rung::Input(graph.to_string_lossy().into_owned())];
        let path = tmp_journal("input-rung");
        let _ = std::fs::remove_file(&path);
        let cfg = ExploreConfig {
            space,
            strategy: Strategy::Grid,
            seed: 42,
            pool_threads: 2,
            point_threads: 1,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
            max_fresh_evals: None,
            journal_path: path.clone(),
            verbose: false,
        };
        let ExploreOutcome::Complete { frontier, fresh, .. } = explore(&cfg).unwrap() else {
            panic!("input-rung grid must complete");
        };
        assert_eq!(fresh, frontier.evaluated);
        assert!(frontier.rows.iter().all(|r| r.scale == 0.0));
        assert!(frontier.rows.iter().all(|r| r.makespan > 0));
        // Resume is free and byte-identical, same as generated inputs.
        let ExploreOutcome::Complete { frontier: again, fresh, .. } = explore(&cfg).unwrap()
        else {
            panic!("resume must complete");
        };
        assert_eq!(fresh, 0);
        assert_eq!(again.to_jsonl(), frontier.to_jsonl());
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_pauses_deterministically_and_resumes_to_the_same_frontier() {
        let base = tmp_journal("budget-a");
        let _ = std::fs::remove_file(&base);
        let cfg = ExploreConfig {
            space: Space::smoke(),
            strategy: Strategy::Grid,
            seed: 42,
            pool_threads: 2,
            point_threads: 1,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
            max_fresh_evals: Some(1),
            journal_path: base.clone(),
            verbose: false,
        };
        // Drive the search one fresh evaluation at a time.
        let mut pauses = 0;
        let budgeted = loop {
            match explore(&cfg).unwrap() {
                ExploreOutcome::Complete { frontier, fresh, .. } => {
                    assert!(fresh <= 1);
                    break frontier;
                }
                ExploreOutcome::Paused { fresh, remaining_in_wave, .. } => {
                    assert_eq!(fresh, 1);
                    assert!(remaining_in_wave > 0);
                    pauses += 1;
                    assert!(pauses < 100, "budget loop did not converge");
                }
            }
        };
        assert!(pauses >= 2, "a budget of 1 must pause repeatedly");

        // An uninterrupted run of the same search: byte-identical.
        let other = tmp_journal("budget-b");
        let _ = std::fs::remove_file(&other);
        let unbudgeted_cfg = ExploreConfig {
            max_fresh_evals: None,
            journal_path: other.clone(),
            ..cfg
        };
        let ExploreOutcome::Complete { frontier, .. } = explore(&unbudgeted_cfg).unwrap() else {
            panic!("must complete");
        };
        assert_eq!(budgeted.to_jsonl(), frontier.to_jsonl());
        std::fs::remove_file(&base).unwrap();
        std::fs::remove_file(&other).unwrap();
    }
}

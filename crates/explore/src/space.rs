//! Parameter-space declaration.
//!
//! A [`Space`] names the axes a search may move along — workload,
//! engine thread count, worklist-directed-prefetch credit ceiling, L2
//! geometry, engine local-queue depth and spill/refill threshold — plus
//! the ascending ladder of input scales ("rungs") successive halving
//! promotes survivors across. Enumerating a space yields one software
//! baseline per (workload, threads) pair followed by the cartesian
//! candidate grid, all in a deterministic order that the journal, the
//! strategies, and the frontier artifact share.

use minnow_algos::WorkloadKind;
use minnow_bench::json::{escape, number};
use minnow_bench::runner::{BenchRun, InputSpec, SchedSpec};
use minnow_bench::sweep::derive_seed;
use minnow_core::area::{self, AreaEstimate, Process};
use minnow_sim::config::EngineParams;

/// One rung of the promotion ladder: either a generated-input scale
/// factor or an external graph file (`@path` in space files) every
/// configuration is measured on.
#[derive(Debug, Clone, PartialEq)]
pub enum Rung {
    /// Generated Table 1 analogues at this scale factor.
    Scale(f64),
    /// An external input file — any `minnow_graph::io::GraphSource`
    /// format, including on-disk CSR images.
    Input(String),
}

impl Rung {
    /// The scale recorded in journals and artifacts: the factor for
    /// scale rungs, `0.0` for input rungs (the graph defines its own
    /// size; the record's `id`/`rung` identify it).
    pub fn scale_value(&self) -> f64 {
        match self {
            Rung::Scale(s) => *s,
            Rung::Input(_) => 0.0,
        }
    }

    /// JSON value for header/artifact serialization: scale rungs keep
    /// their frozen six-decimal number form; input rungs are strings.
    pub fn json_value(&self) -> String {
        match self {
            Rung::Scale(s) => number(*s),
            Rung::Input(p) => format!("\"{}\"", escape(p)),
        }
    }

    /// Parses a space-file token: `@path` is an input rung, anything
    /// else must be a scale factor.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed token.
    pub fn parse_token(tok: &str) -> Result<Rung, String> {
        if let Some(path) = tok.strip_prefix('@') {
            if path.is_empty() {
                return Err("input rung `@` needs a path".into());
            }
            Ok(Rung::Input(path.to_string()))
        } else {
            tok.parse()
                .map(Rung::Scale)
                .map_err(|e| format!("rung `{tok}`: {e}"))
        }
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Scale(s) => write!(f, "{s}"),
            Rung::Input(p) => write!(f, "@{p}"),
        }
    }
}

/// A declared design space.
#[derive(Debug, Clone, PartialEq)]
pub struct Space {
    /// Space name (journal headers and artifact names carry it).
    pub name: String,
    /// Workload axis.
    pub workloads: Vec<WorkloadKind>,
    /// Simulated core / engine-thread-count axis.
    pub threads: Vec<usize>,
    /// Prefetch-credit axis; `None` is Minnow without prefetching.
    pub credits: Vec<Option<u32>>,
    /// Per-core L2 capacity axis, in KB.
    pub l2_kb: Vec<usize>,
    /// L2 associativity (fixed per space; the paper's is 8).
    pub l2_ways: usize,
    /// Engine local-task-queue depth axis (entries).
    pub local_queue: Vec<usize>,
    /// Engine refill/spill threshold axis (entries; must stay below
    /// every `local_queue` value).
    pub refill: Vec<usize>,
    /// Ascending input rungs; the last rung is the full-fidelity
    /// input every final candidate is measured at. Scale rungs must
    /// ascend; `@path` input rungs may appear anywhere in the ladder.
    pub rungs: Vec<Rung>,
}

/// Candidate-specific axis values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateParams {
    /// Prefetch credits (`None` = offload only).
    pub credits: Option<u32>,
    /// L2 capacity in KB.
    pub l2_kb: usize,
    /// Engine local-queue entries.
    pub local_queue: usize,
    /// Engine refill threshold entries.
    pub refill: usize,
}

/// What a configuration is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The software scheduler this workload/thread pair is normalized
    /// against (area zero; speedup one by definition).
    Baseline,
    /// A Minnow hardware configuration under evaluation.
    Candidate(CandidateParams),
}

/// One enumerable configuration of the space.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigPoint {
    /// Stable identifier, e.g. `BFS/t4/c32/l2-16k/lq64/r16`.
    pub id: String,
    /// Workload.
    pub workload: WorkloadKind,
    /// Simulated cores (= engines for candidates).
    pub threads: usize,
    /// Baseline or candidate axes.
    pub role: Role,
    /// L2 associativity inherited from the space.
    pub l2_ways: usize,
}

impl ConfigPoint {
    /// Whether this is the software baseline.
    pub fn is_baseline(&self) -> bool {
        matches!(self.role, Role::Baseline)
    }

    /// The id of the baseline this configuration is normalized against.
    pub fn baseline_id(&self) -> String {
        format!("{}/t{}/baseline", self.workload.name(), self.threads)
    }

    /// Builds the simulator configuration for this point at `rung`.
    /// The input seed derives from `(sweep_seed, workload)` exactly as
    /// the sweep runner's does, so every configuration of one workload
    /// runs the same graph; input rungs load the same cached file.
    pub fn bench_run(&self, rung: &Rung, sweep_seed: u64) -> BenchRun {
        let mut run = match self.role {
            Role::Baseline => BenchRun::software_default(self.workload, self.threads),
            Role::Candidate(p) => {
                let mut run = BenchRun::new(
                    self.workload,
                    self.threads,
                    SchedSpec::Minnow {
                        wdp_credits: p.credits,
                    },
                );
                run.l2 = Some((p.l2_kb * 1024, self.l2_ways));
                let mut engine = EngineParams::paper();
                engine.local_queue = p.local_queue;
                engine.refill_threshold = p.refill;
                run.engine = Some(engine);
                run
            }
        };
        match rung {
            Rung::Scale(s) => run.scale = *s,
            Rung::Input(path) => {
                run.scale = 0.0;
                run.input = Some(InputSpec::new(path));
            }
        }
        run.seed = derive_seed(sweep_seed, self.workload.name());
        run
    }

    /// The §5.4 area of this configuration's engines (`None` for the
    /// baseline, which has no Minnow hardware).
    pub fn area(&self, process: Process) -> Option<AreaEstimate> {
        match self.role {
            Role::Baseline => None,
            Role::Candidate(p) => {
                let mut engine = EngineParams::paper();
                engine.local_queue = p.local_queue;
                engine.refill_threshold = p.refill;
                let l2_lines = p.l2_kb * 1024 / 64;
                Some(area::machine_estimate(&engine, l2_lines, self.threads, 1, process))
            }
        }
    }

    /// Total engine area in mm² at 14nm; `0.0` for the baseline. The
    /// frontier's cost axis, and successive halving's pruning classes.
    pub fn area_mm2(&self) -> f64 {
        self.area(Process::Nm14).map_or(0.0, |a| a.total_mm2())
    }
}

impl Space {
    /// Names [`Space::named`] resolves.
    pub const NAMES: [&'static str; 3] = ["smoke", "golden-fig16", "credits-bfs"];

    /// A built-in space by name; `None` for unknown names.
    pub fn named(name: &str) -> Option<Space> {
        match name {
            "smoke" => Some(Space::smoke()),
            "golden-fig16" => Some(Space::golden_fig16()),
            "credits-bfs" => Some(Space::credits_bfs()),
            _ => None,
        }
    }

    /// A tiny space for CI smoke and tests: three BFS candidates, two
    /// rungs.
    pub fn smoke() -> Space {
        Space {
            name: "smoke".into(),
            workloads: vec![WorkloadKind::Bfs],
            threads: vec![2],
            credits: vec![None, Some(16), Some(64)],
            l2_kb: vec![16],
            l2_ways: 8,
            local_queue: vec![64],
            refill: vec![16],
            rungs: vec![Rung::Scale(0.02), Rung::Scale(0.05)],
        }
    }

    /// The golden Fig. 16-style space the halving-vs-grid acceptance
    /// test pins: one workload, a credit ladder crossed with two L2
    /// capacities, three rungs.
    pub fn golden_fig16() -> Space {
        Space {
            name: "golden-fig16".into(),
            workloads: vec![WorkloadKind::Bfs],
            threads: vec![4],
            credits: vec![None, Some(4), Some(32), Some(128)],
            l2_kb: vec![8, 16],
            l2_ways: 8,
            local_queue: vec![64],
            refill: vec![16],
            rungs: vec![Rung::Scale(0.01), Rung::Scale(0.08)],
        }
    }

    /// A broader credit/sizing space over BFS for real exploration runs
    /// (the EXPERIMENTS.md walkthrough).
    pub fn credits_bfs() -> Space {
        Space {
            name: "credits-bfs".into(),
            workloads: vec![WorkloadKind::Bfs],
            threads: vec![4, 8],
            credits: vec![None, Some(8), Some(32), Some(128)],
            l2_kb: vec![8, 16, 32],
            l2_ways: 8,
            local_queue: vec![16, 64],
            refill: vec![8],
            rungs: vec![Rung::Scale(0.02), Rung::Scale(0.06), Rung::Scale(0.15)],
        }
    }

    /// Validates axis sanity: every axis non-empty, rungs ascending and
    /// positive, refill thresholds below every local-queue depth, L2
    /// geometry divisible.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || self.name.contains(['/', ' ']) {
            return Err(format!("space name `{}` must be non-empty without '/' or spaces", self.name));
        }
        for (axis, empty) in [
            ("workloads", self.workloads.is_empty()),
            ("threads", self.threads.is_empty()),
            ("credits", self.credits.is_empty()),
            ("l2_kb", self.l2_kb.is_empty()),
            ("local_queue", self.local_queue.is_empty()),
            ("refill", self.refill.is_empty()),
            ("rungs", self.rungs.is_empty()),
        ] {
            if empty {
                return Err(format!("axis `{axis}` is empty"));
            }
        }
        let scales: Vec<f64> = self
            .rungs
            .iter()
            .filter_map(|r| match r {
                Rung::Scale(s) => Some(*s),
                Rung::Input(_) => None,
            })
            .collect();
        if !scales.windows(2).all(|w| w[0] < w[1])
            || scales.first().is_some_and(|&s| s <= 0.0)
        {
            return Err("rungs must be positive and strictly ascending".into());
        }
        if self.rungs.iter().any(|r| matches!(r, Rung::Input(p) if p.is_empty())) {
            return Err("input rungs need a non-empty path".into());
        }
        for &kb in &self.l2_kb {
            if kb == 0 || !(kb * 1024).is_multiple_of(self.l2_ways * 64) {
                return Err(format!(
                    "l2_kb {kb} is not a multiple of ways*line ({}x64B)",
                    self.l2_ways
                ));
            }
        }
        let min_queue = *self.local_queue.iter().min().expect("non-empty");
        for &r in &self.refill {
            if r == 0 || r >= min_queue {
                return Err(format!(
                    "refill threshold {r} must be in 1..{min_queue} (smallest local queue)"
                ));
            }
        }
        if self.threads.iter().any(|&t| t == 0 || t > 64) {
            return Err("threads must be in 1..=64".into());
        }
        Ok(())
    }

    /// Every configuration of the space in enumeration order: baselines
    /// first (one per workload × threads), then the candidate grid with
    /// the last axis varying fastest.
    pub fn configs(&self) -> Vec<ConfigPoint> {
        let mut out = Vec::new();
        for &kind in &self.workloads {
            for &threads in &self.threads {
                out.push(ConfigPoint {
                    id: format!("{}/t{threads}/baseline", kind.name()),
                    workload: kind,
                    threads,
                    role: Role::Baseline,
                    l2_ways: self.l2_ways,
                });
            }
        }
        for &kind in &self.workloads {
            for &threads in &self.threads {
                for &credits in &self.credits {
                    for &l2_kb in &self.l2_kb {
                        for &local_queue in &self.local_queue {
                            for &refill in &self.refill {
                                let c = match credits {
                                    None => "no".to_string(),
                                    Some(c) => c.to_string(),
                                };
                                out.push(ConfigPoint {
                                    id: format!(
                                        "{}/t{threads}/c{c}/l2-{l2_kb}k/lq{local_queue}/r{refill}",
                                        kind.name()
                                    ),
                                    workload: kind,
                                    threads,
                                    role: Role::Candidate(CandidateParams {
                                        credits,
                                        l2_kb,
                                        local_queue,
                                        refill,
                                    }),
                                    l2_ways: self.l2_ways,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Parses a space file: `key = value[,value...]` lines, `#`
    /// comments. Keys: `name`, `workloads` (sssp|bfs|g500|cc|pr|tc|bc),
    /// `threads`, `credits` (`none` or an integer), `l2_kb`, `l2_ways`,
    /// `local_queue`, `refill`, `rungs` (scale factors and/or `@path`
    /// external inputs). Missing keys fall back to the
    /// smoke space's single-value axes; `name`, `workloads`, and
    /// `rungs` are required.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered description of the first malformed entry
    /// or failed validation.
    pub fn parse(text: &str) -> Result<Space, String> {
        let mut space = Space::smoke();
        space.name = String::new();
        let mut saw_workloads = false;
        let mut saw_rungs = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |e: String| format!("line {}: {e}", lineno + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at("expected `key = value`".into()))?;
            let values: Vec<&str> = value.split(',').map(str::trim).collect();
            let ints = |flag: &str| -> Result<Vec<usize>, String> {
                values
                    .iter()
                    .map(|v| v.parse().map_err(|e| at(format!("{flag}: `{v}`: {e}"))))
                    .collect()
            };
            match key.trim() {
                "name" => space.name = value.trim().to_string(),
                "workloads" => {
                    space.workloads = values
                        .iter()
                        .map(|v| parse_workload(v).ok_or_else(|| at(format!("unknown workload `{v}`"))))
                        .collect::<Result<_, _>>()?;
                    saw_workloads = true;
                }
                "threads" => space.threads = ints("threads")?,
                "credits" => {
                    space.credits = values
                        .iter()
                        .map(|v| {
                            if *v == "none" {
                                Ok(None)
                            } else {
                                v.parse().map(Some).map_err(|e| at(format!("credits: `{v}`: {e}")))
                            }
                        })
                        .collect::<Result<_, _>>()?;
                }
                "l2_kb" => space.l2_kb = ints("l2_kb")?,
                "l2_ways" => {
                    space.l2_ways = *ints("l2_ways")?
                        .first()
                        .ok_or_else(|| at("l2_ways needs a value".into()))?;
                }
                "local_queue" => space.local_queue = ints("local_queue")?,
                "refill" => space.refill = ints("refill")?,
                "rungs" => {
                    space.rungs = values
                        .iter()
                        .map(|v| Rung::parse_token(v).map_err(|e| at(format!("rungs: {e}"))))
                        .collect::<Result<_, _>>()?;
                    saw_rungs = true;
                }
                other => return Err(at(format!("unknown key `{other}`"))),
            }
        }
        if space.name.is_empty() {
            return Err("space file must set `name`".into());
        }
        if !saw_workloads {
            return Err("space file must set `workloads`".into());
        }
        if !saw_rungs {
            return Err("space file must set `rungs`".into());
        }
        space.validate()?;
        Ok(space)
    }
}

fn parse_workload(name: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn named_spaces_validate_and_enumerate_unique_ids() {
        for name in Space::NAMES {
            let space = Space::named(name).unwrap();
            space.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let configs = space.configs();
            let ids: HashSet<&str> = configs.iter().map(|c| c.id.as_str()).collect();
            assert_eq!(ids.len(), configs.len(), "{name}: duplicate ids");
            let baselines = configs.iter().filter(|c| c.is_baseline()).count();
            assert_eq!(baselines, space.workloads.len() * space.threads.len());
            // Every candidate's baseline is in the enumeration.
            for c in &configs {
                assert!(ids.contains(c.baseline_id().as_str()), "{} lacks baseline", c.id);
            }
        }
        assert!(Space::named("nope").is_none());
    }

    #[test]
    fn bench_runs_share_graphs_and_carry_overrides() {
        let space = Space::golden_fig16();
        let configs = space.configs();
        let rung = Rung::Scale(0.05);
        let seeds: HashSet<u64> = configs.iter().map(|c| c.bench_run(&rung, 7).seed).collect();
        assert_eq!(seeds.len(), 1, "one workload = one shared graph seed");
        let candidate = configs.iter().find(|c| !c.is_baseline()).unwrap();
        let run = candidate.bench_run(&rung, 7);
        assert!(run.l2.is_some() && run.engine.is_some());
        assert_eq!(run.scale, 0.05);
        assert_eq!(run.input, None);
        let baseline = configs.iter().find(|c| c.is_baseline()).unwrap();
        let brun = baseline.bench_run(&rung, 7);
        assert!(brun.l2.is_none() && brun.engine.is_none());
        assert_eq!(brun.seed, run.seed);
        let irun = candidate.bench_run(&Rung::Input("g.mcsr".into()), 7);
        assert_eq!(irun.scale, 0.0);
        assert_eq!(irun.input, Some(InputSpec::new("g.mcsr")));
        assert_eq!(irun.seed, run.seed);
    }

    #[test]
    fn rung_tokens_parse_render_and_serialize() {
        assert_eq!(Rung::parse_token("0.05"), Ok(Rung::Scale(0.05)));
        assert_eq!(
            Rung::parse_token("@graphs/road.mcsr"),
            Ok(Rung::Input("graphs/road.mcsr".into()))
        );
        assert!(Rung::parse_token("@").is_err());
        assert!(Rung::parse_token("fast").is_err());
        assert_eq!(Rung::Scale(0.05).to_string(), "0.05");
        assert_eq!(Rung::Input("a/b.el".into()).to_string(), "@a/b.el");
        assert_eq!(Rung::Scale(0.05).json_value(), "0.050000");
        assert_eq!(Rung::Input("a\"b".into()).json_value(), "\"a\\\"b\"");
        assert_eq!(Rung::Scale(0.05).scale_value(), 0.05);
        assert_eq!(Rung::Input("x".into()).scale_value(), 0.0);
    }

    #[test]
    fn input_rungs_validate_and_parse_in_space_files() {
        let mut space = Space::smoke();
        space.rungs = vec![Rung::Scale(0.02), Rung::Input("big.mcsr".into())];
        space.validate().unwrap();
        space.rungs = vec![Rung::Input(String::new())];
        assert!(space.validate().is_err());
        let text = "\
name = real
workloads = bfs
rungs = 0.02, @graphs/road.mcsr
";
        let parsed = Space::parse(text).unwrap();
        assert_eq!(
            parsed.rungs,
            vec![Rung::Scale(0.02), Rung::Input("graphs/road.mcsr".into())]
        );
        assert!(Space::parse("name = x\nworkloads = bfs\nrungs = @").is_err());
    }

    #[test]
    fn area_is_zero_for_baseline_and_grows_with_l2() {
        let space = Space::golden_fig16();
        let configs = space.configs();
        let baseline = configs.iter().find(|c| c.is_baseline()).unwrap();
        assert_eq!(baseline.area_mm2(), 0.0);
        let small = configs.iter().find(|c| c.id.contains("/l2-8k/")).unwrap();
        let large = configs.iter().find(|c| c.id.contains("/l2-16k/")).unwrap();
        assert!(small.area_mm2() > 0.0);
        assert!(large.area_mm2() > small.area_mm2());
    }

    #[test]
    fn parse_round_trips_a_space_file() {
        let text = "\
# a custom space
name = my-space
workloads = bfs, cc
threads = 2,4
credits = none, 8, 32
l2_kb = 8,16
l2_ways = 8
local_queue = 32
refill = 8
rungs = 0.01, 0.05
";
        let space = Space::parse(text).unwrap();
        assert_eq!(space.name, "my-space");
        assert_eq!(space.workloads, vec![WorkloadKind::Bfs, WorkloadKind::Cc]);
        assert_eq!(space.credits, vec![None, Some(8), Some(32)]);
        assert_eq!(space.configs().len(), 2 * 2 + 2 * 2 * 3 * 2);
        for bad in [
            "workloads = bfs\nrungs = 0.1",                       // no name
            "name = x\nrungs = 0.1",                              // no workloads
            "name = x\nworkloads = bfs",                          // no rungs
            "name = x\nworkloads = bfs\nrungs = 0.1, 0.05",       // descending
            "name = x\nworkloads = warp\nrungs = 0.1",            // unknown workload
            "name = x\nworkloads = bfs\nrungs = 0.1\nrefill = 99", // refill >= queue
            "name = x\nworkloads = bfs\nrungs = 0.1\nwat = 1",    // unknown key
        ] {
            assert!(Space::parse(bad).is_err(), "{bad:?} parsed");
        }
    }
}

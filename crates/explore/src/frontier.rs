//! Objective layer and Pareto frontier artifact.
//!
//! The explorer's objective combines two axes: *speedup* — a
//! configuration's final-rung makespan normalized against the software
//! baseline for the same workload and thread count — and *area* — the
//! §5.4 engine silicon estimate at 14nm. A configuration is
//! Pareto-optimal when no other configuration of the same
//! (workload, threads) group offers at least its speedup for at most
//! its area (with one strict); speedups of different workloads are not
//! comparable, so dominance never crosses groups. The software
//! baseline sits at (area 0, speedup 1) and is therefore always on the
//! frontier — the artifact's anchor row.
//!
//! The artifact is JSON lines: a header stamped
//! [`FRONTIER_SCHEMA`] followed by one row per configuration evaluated
//! at the final rung, sorted by area then speedup then id. Every field
//! is deterministic (the volatile `wall_us` never leaves the journal),
//! which is what makes "resumed run ⇒ byte-identical frontier" a
//! testable contract rather than an aspiration.

use std::fmt::Write as _;

use minnow_bench::json::JsonObject;

use crate::journal::{ExploreError, Journal};
use crate::space::{Rung, Space};
use crate::strategy::Strategy;

/// Schema identifier stamped into the frontier header line.
pub const FRONTIER_SCHEMA: &str = "minnow-explore-frontier/v1";

/// One evaluated configuration in the frontier document.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// Configuration id.
    pub id: String,
    /// Workload name.
    pub workload: String,
    /// Simulated cores.
    pub threads: usize,
    /// Whether this is the software baseline.
    pub baseline: bool,
    /// Prefetch credits (`None` for baselines and no-prefetch configs).
    pub credits: Option<u32>,
    /// L2 capacity in KB (`None` for baselines).
    pub l2_kb: Option<usize>,
    /// Engine local-queue depth (`None` for baselines).
    pub local_queue: Option<usize>,
    /// Engine refill threshold (`None` for baselines).
    pub refill: Option<usize>,
    /// The rung this row was measured at (always the final rung).
    pub rung: usize,
    /// The rung's input scale.
    pub scale: f64,
    /// Simulated makespan in cycles.
    pub makespan: u64,
    /// Tasks executed at this rung.
    pub tasks: u64,
    /// Baseline makespan / this makespan; 1.0 for the baseline itself.
    pub speedup: f64,
    /// Engine area in mm² at 14nm; 0.0 for the baseline.
    pub area_mm2: f64,
    /// Whether this row is Pareto-optimal within its workload/threads
    /// group.
    pub pareto: bool,
}

/// The complete frontier document.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierDoc {
    /// Space name.
    pub space: String,
    /// Strategy label.
    pub strategy: String,
    /// Sweep seed.
    pub seed: u64,
    /// The space's rungs (scale factors and/or external inputs).
    pub rungs: Vec<Rung>,
    /// Configurations in the declared space.
    pub configs: usize,
    /// Configurations measured at the final rung (= rows).
    pub evaluated: usize,
    /// Total journaled evaluations across all rungs.
    pub evals: usize,
    /// Total simulated tasks across all journaled evaluations — the
    /// cost currency the halving-vs-grid acceptance bound is stated in.
    pub sim_tasks: u64,
    /// Rows sorted by (area, -speedup, id).
    pub rows: Vec<FrontierRow>,
}

/// Builds the frontier document from a finished search's journal.
///
/// # Errors
///
/// Fails if a candidate reached the final rung without its baseline —
/// a broken strategy or a hand-edited journal.
pub fn build_frontier(
    space: &Space,
    strategy: &Strategy,
    seed: u64,
    journal: &Journal,
) -> Result<FrontierDoc, ExploreError> {
    let configs = space.configs();
    let last_rung = space.rungs.len() - 1;
    let mut rows = Vec::new();
    for point in &configs {
        let Some(rec) = journal.get(&point.id, last_rung) else {
            continue;
        };
        let speedup = if point.is_baseline() {
            1.0
        } else {
            let base = journal.get(&point.baseline_id(), last_rung).ok_or_else(|| {
                ExploreError::Journal(format!(
                    "candidate {} has a final-rung record but its baseline {} does not",
                    point.id,
                    point.baseline_id()
                ))
            })?;
            base.makespan as f64 / rec.makespan.max(1) as f64
        };
        let params = match point.role {
            crate::space::Role::Baseline => None,
            crate::space::Role::Candidate(p) => Some(p),
        };
        rows.push(FrontierRow {
            id: point.id.clone(),
            workload: point.workload.name().to_string(),
            threads: point.threads,
            baseline: point.is_baseline(),
            credits: params.and_then(|p| p.credits),
            l2_kb: params.map(|p| p.l2_kb),
            local_queue: params.map(|p| p.local_queue),
            refill: params.map(|p| p.refill),
            rung: last_rung,
            scale: rec.scale,
            makespan: rec.makespan,
            tasks: rec.tasks,
            speedup,
            area_mm2: point.area_mm2(),
            pareto: false,
        });
    }
    mark_pareto(&mut rows);
    rows.sort_by(|a, b| {
        a.area_mm2
            .partial_cmp(&b.area_mm2)
            .expect("areas are finite")
            .then(b.speedup.partial_cmp(&a.speedup).expect("speedups are finite"))
            .then(a.id.cmp(&b.id))
    });
    Ok(FrontierDoc {
        space: space.name.clone(),
        strategy: strategy.label(),
        seed,
        rungs: space.rungs.clone(),
        configs: configs.len(),
        evaluated: rows.len(),
        evals: journal.records().count(),
        sim_tasks: journal.records().map(|r| r.tasks).sum(),
        rows,
    })
}

/// Marks Pareto-optimal rows: within each (workload, threads) group, a
/// row survives unless some other row has `area <=` and `speedup >=`
/// with at least one strict inequality.
fn mark_pareto(rows: &mut [FrontierRow]) {
    for i in 0..rows.len() {
        let dominated = rows.iter().enumerate().any(|(j, other)| {
            j != i
                && other.workload == rows[i].workload
                && other.threads == rows[i].threads
                && other.area_mm2 <= rows[i].area_mm2
                && other.speedup >= rows[i].speedup
                && (other.area_mm2 < rows[i].area_mm2 || other.speedup > rows[i].speedup)
        });
        rows[i].pareto = !dominated;
    }
}

impl FrontierDoc {
    /// The ids of Pareto-optimal rows, in artifact order.
    pub fn pareto_ids(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.pareto)
            .map(|r| r.id.as_str())
            .collect()
    }

    /// Serializes the document as JSON lines: header, then rows.
    pub fn to_jsonl(&self) -> String {
        let mut rungs = String::from("[");
        for (i, r) in self.rungs.iter().enumerate() {
            if i > 0 {
                rungs.push(',');
            }
            rungs.push_str(&r.json_value());
        }
        rungs.push(']');
        let mut out = JsonObject::new()
            .str("schema", FRONTIER_SCHEMA)
            .str("space", &self.space)
            .str("strategy", &self.strategy)
            .u64("seed", self.seed)
            .raw("rungs", &rungs)
            .u64("configs", self.configs as u64)
            .u64("evaluated", self.evaluated as u64)
            .u64("evals", self.evals as u64)
            .u64("sim_tasks", self.sim_tasks)
            .finish();
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &JsonObject::new()
                    .str("id", &row.id)
                    .str("workload", &row.workload)
                    .u64("threads", row.threads as u64)
                    .bool("baseline", row.baseline)
                    .opt_u64("credits", row.credits.map(u64::from))
                    .opt_u64("l2_kb", row.l2_kb.map(|v| v as u64))
                    .opt_u64("local_queue", row.local_queue.map(|v| v as u64))
                    .opt_u64("refill", row.refill.map(|v| v as u64))
                    .u64("rung", row.rung as u64)
                    .f64("scale", row.scale)
                    .u64("makespan", row.makespan)
                    .u64("tasks", row.tasks)
                    .f64("speedup", row.speedup)
                    .f64("area_mm2", row.area_mm2)
                    .bool("pareto", row.pareto)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Renders the human-readable frontier table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "space {}  strategy {}  seed {}",
            self.space, self.strategy, self.seed
        );
        let rungs: Vec<String> = self.rungs.iter().map(|r| format!("{r}")).collect();
        let _ = writeln!(
            out,
            "rungs {}  configs {}  evaluated {}  evals {}  sim tasks {}",
            rungs.join(" -> "),
            self.configs,
            self.evaluated,
            self.evals,
            self.sim_tasks
        );
        let _ = writeln!(out);
        let id_width = self
            .rows
            .iter()
            .map(|r| r.id.len())
            .max()
            .unwrap_or(2)
            .max(2);
        let _ = writeln!(out, "  {:<10} {:>9} {:>8}  {:<id_width$}", "area mm2", "speedup", "pareto", "id");
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  {:<10} {:>9} {:>8}  {:<id_width$}",
                format!("{:.4}", row.area_mm2),
                format!("{:.3}", row.speedup),
                if row.pareto { "*" } else { "" },
                row.id
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: &str, area: f64, speedup: f64) -> FrontierRow {
        FrontierRow {
            id: id.into(),
            workload: "BFS".into(),
            threads: 4,
            baseline: area == 0.0,
            credits: None,
            l2_kb: None,
            local_queue: None,
            refill: None,
            rung: 1,
            scale: 0.08,
            makespan: 1000,
            tasks: 100,
            speedup,
            area_mm2: area,
            pareto: false,
        }
    }

    #[test]
    fn pareto_marks_non_dominated_rows_per_group() {
        let mut rows = vec![
            row("baseline", 0.0, 1.0),
            row("cheap-fast", 0.1, 2.0),
            row("cheap-slow", 0.1, 1.5),   // dominated by cheap-fast
            row("pricey-faster", 0.2, 2.5),
            row("pricey-slower", 0.2, 1.8), // dominated twice over
        ];
        // A second group whose dominated-looking row must survive:
        // dominance never crosses (workload, threads) groups.
        let mut other = row("other-group", 0.2, 1.8);
        other.workload = "CC".into();
        rows.push(other);
        mark_pareto(&mut rows);
        let pareto: Vec<&str> = rows.iter().filter(|r| r.pareto).map(|r| r.id.as_str()).collect();
        assert_eq!(
            pareto,
            ["baseline", "cheap-fast", "pricey-faster", "other-group"]
        );
    }

    #[test]
    fn jsonl_round_trips_through_the_reader() {
        let mut rows = vec![row("baseline", 0.0, 1.0), row("cand", 0.2, 2.0)];
        mark_pareto(&mut rows);
        let doc = FrontierDoc {
            space: "smoke".into(),
            strategy: "grid".into(),
            seed: 42,
            rungs: vec![Rung::Scale(0.02), Rung::Scale(0.05)],
            configs: 4,
            evaluated: 2,
            evals: 2,
            sim_tasks: 200,
            rows,
        };
        let text = doc.to_jsonl();
        let mut lines = text.lines();
        let header = crate::json_read::Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.str_field("schema").unwrap(), FRONTIER_SCHEMA);
        assert_eq!(header.u64_field("sim_tasks").unwrap(), 200);
        let first = crate::json_read::Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(first.str_field("id").unwrap(), "baseline");
        assert!(first.bool_field("pareto").unwrap());
        assert_eq!(lines.count(), 1);
        // The table renders a line per row plus the three header lines.
        assert_eq!(doc.table().lines().count(), 3 + 1 + 2);
    }
}

//! Append-only evaluation journal: the explorer's checkpoint.
//!
//! Every simulated evaluation — one configuration at one rung — becomes
//! one JSON line, appended and fsync'd per batch. A killed search
//! resumes by replaying its strategy against the journal: evaluations
//! already on disk are served from the cache instead of re-simulated,
//! so the resumed process continues exactly where the dead one
//! stopped, and (simulation being deterministic) the final frontier is
//! byte-identical to an uninterrupted run.
//!
//! The first line is a header binding the journal to a `(space, seed,
//! strategy, rungs)` tuple; resuming with different parameters is
//! refused rather than silently mixing incompatible results. A
//! truncated final line — the footprint of a process killed mid-write —
//! is tolerated and ignored; corruption anywhere else is an error.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use minnow_bench::json::JsonObject;

use crate::json_read::Json;
use crate::space::Rung;

/// Schema identifier stamped into the journal's header line.
pub const JOURNAL_SCHEMA: &str = "minnow-explore-journal/v1";

/// The identity a journal is bound to.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Space name.
    pub space: String,
    /// Sweep seed.
    pub seed: u64,
    /// Strategy label (`grid`, `random8`, `halving2`, ...).
    pub strategy: String,
    /// The space's rungs: scale factors serialize as numbers, external
    /// inputs as path strings.
    pub rungs: Vec<Rung>,
}

impl JournalHeader {
    fn to_json(&self) -> String {
        let mut rungs = String::from("[");
        for (i, r) in self.rungs.iter().enumerate() {
            if i > 0 {
                rungs.push(',');
            }
            let _ = write!(rungs, "{}", r.json_value());
        }
        rungs.push(']');
        JsonObject::new()
            .str("schema", JOURNAL_SCHEMA)
            .str("space", &self.space)
            .u64("seed", self.seed)
            .str("strategy", &self.strategy)
            .raw("rungs", &rungs)
            .finish()
    }

    fn from_json(doc: &Json) -> Result<JournalHeader, String> {
        let schema = doc.str_field("schema")?;
        if schema != JOURNAL_SCHEMA {
            return Err(format!("journal schema `{schema}` != `{JOURNAL_SCHEMA}`"));
        }
        let rungs = doc
            .get("rungs")
            .and_then(Json::as_array)
            .ok_or("missing `rungs` array")?
            .iter()
            .map(|v| {
                if let Some(s) = v.as_f64() {
                    Ok(Rung::Scale(s))
                } else if let Some(p) = v.as_str() {
                    Ok(Rung::Input(p.to_string()))
                } else {
                    Err("rung is neither a scale number nor an input path")
                }
            })
            .collect::<Result<Vec<Rung>, _>>()?;
        Ok(JournalHeader {
            space: doc.str_field("space")?.to_string(),
            seed: doc.u64_field("seed")?,
            strategy: doc.str_field("strategy")?.to_string(),
            rungs,
        })
    }

    /// Whether two headers describe the same search identity. Rungs are
    /// compared at the journal's serialization precision (six decimals
    /// for scales, exact paths for inputs).
    fn compatible(&self, other: &JournalHeader) -> bool {
        self.space == other.space
            && self.seed == other.seed
            && self.strategy == other.strategy
            && self.rungs.len() == other.rungs.len()
            && self
                .rungs
                .iter()
                .zip(&other.rungs)
                .all(|(a, b)| a.json_value() == b.json_value())
    }
}

/// One journaled evaluation: a configuration simulated at a rung.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Append sequence number (0-based; informational).
    pub seq: u64,
    /// Configuration id.
    pub id: String,
    /// Rung index into the space's ladder.
    pub rung: usize,
    /// The rung's scale factor (`0.0` for input rungs; the header's
    /// `rungs` array names the file).
    pub scale: f64,
    /// Derived input seed the point ran with.
    pub seed: u64,
    /// Simulated makespan in cycles.
    pub makespan: u64,
    /// Tasks executed — the search's cost currency.
    pub tasks: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Memory accesses.
    pub mem_accesses: u64,
    /// Whether the simulation hit its task limit.
    pub timed_out: bool,
    /// Host wall time in microseconds (volatile: never feeds the
    /// frontier, so resumed journals may differ here and nowhere else).
    pub wall_us: u64,
}

impl EvalRecord {
    fn to_json(&self) -> String {
        JsonObject::new()
            .u64("seq", self.seq)
            .str("id", &self.id)
            .u64("rung", self.rung as u64)
            .f64("scale", self.scale)
            .u64("seed", self.seed)
            .u64("makespan", self.makespan)
            .u64("tasks", self.tasks)
            .u64("instructions", self.instructions)
            .u64("l2_misses", self.l2_misses)
            .u64("mem_accesses", self.mem_accesses)
            .bool("timed_out", self.timed_out)
            .u64("wall_us", self.wall_us)
            .finish()
    }

    fn from_json(doc: &Json) -> Result<EvalRecord, String> {
        Ok(EvalRecord {
            seq: doc.u64_field("seq")?,
            id: doc.str_field("id")?.to_string(),
            rung: doc.u64_field("rung")? as usize,
            scale: doc.f64_field("scale")?,
            seed: doc.u64_field("seed")?,
            makespan: doc.u64_field("makespan")?,
            tasks: doc.u64_field("tasks")?,
            instructions: doc.u64_field("instructions")?,
            l2_misses: doc.u64_field("l2_misses")?,
            mem_accesses: doc.u64_field("mem_accesses")?,
            timed_out: doc.bool_field("timed_out")?,
            wall_us: doc.u64_field("wall_us")?,
        })
    }
}

/// The open journal: an eval cache backed by the append-only file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    header: JournalHeader,
    cache: BTreeMap<(String, usize), EvalRecord>,
    next_seq: u64,
    /// Evaluations served from disk on open (resume observability).
    resumed: usize,
}

/// Explorer errors.
#[derive(Debug)]
pub enum ExploreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible journal.
    Journal(String),
    /// Invalid space or configuration.
    Config(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Io(e) => write!(f, "i/o: {e}"),
            ExploreError::Journal(e) => write!(f, "journal: {e}"),
            ExploreError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<std::io::Error> for ExploreError {
    fn from(e: std::io::Error) -> Self {
        ExploreError::Io(e)
    }
}

impl Journal {
    /// Opens (resuming) or creates the journal at `path` for the given
    /// search identity.
    ///
    /// # Errors
    ///
    /// Fails on i/o errors, on a journal whose header does not match
    /// `header`, or on corruption anywhere but a truncated final line.
    pub fn open(path: &Path, header: JournalHeader) -> Result<Journal, ExploreError> {
        let mut journal = Journal {
            path: path.to_path_buf(),
            header,
            cache: BTreeMap::new(),
            next_seq: 0,
            resumed: 0,
        };
        match std::fs::read_to_string(path) {
            Ok(text) => journal.load(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                let mut file = File::create(path)?;
                file.write_all(journal.header.to_json().as_bytes())?;
                file.write_all(b"\n")?;
                file.sync_data()?;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(journal)
    }

    fn load(&mut self, text: &str) -> Result<(), ExploreError> {
        let mut lines = text.split_inclusive('\n');
        let header_line = lines
            .next()
            .ok_or_else(|| ExploreError::Journal("empty journal file".into()))?;
        if !header_line.ends_with('\n') {
            // A journal that died while writing its own header: treat as
            // absent content rather than refusing to resume.
            return Err(ExploreError::Journal(
                "journal header line is truncated; delete the file to start over".into(),
            ));
        }
        let doc = Json::parse(header_line.trim_end())
            .map_err(|e| ExploreError::Journal(format!("header: {e}")))?;
        let found = JournalHeader::from_json(&doc).map_err(ExploreError::Journal)?;
        if !found.compatible(&self.header) {
            return Err(ExploreError::Journal(format!(
                "journal belongs to a different search \
                 (space {} seed {} strategy {} vs space {} seed {} strategy {}); \
                 use a fresh journal path or delete it",
                found.space,
                found.seed,
                found.strategy,
                self.header.space,
                self.header.seed,
                self.header.strategy,
            )));
        }
        for (idx, raw) in lines.enumerate() {
            let complete = raw.ends_with('\n');
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            let parsed = Json::parse(line).and_then(|doc| EvalRecord::from_json(&doc));
            match parsed {
                Ok(rec) => {
                    self.next_seq = self.next_seq.max(rec.seq + 1);
                    self.cache.insert((rec.id.clone(), rec.rung), rec);
                }
                Err(e) if !complete => {
                    // The kill signature: a partial final line. The
                    // evaluation it would have recorded simply re-runs.
                    let _ = e;
                    break;
                }
                Err(e) => {
                    return Err(ExploreError::Journal(format!(
                        "corrupt record on journal line {}: {e}",
                        idx + 2
                    )));
                }
            }
        }
        self.resumed = self.cache.len();
        Ok(())
    }

    /// The journal's identity header.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Evaluations recovered from disk when the journal was opened.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// A cached evaluation, if this (configuration, rung) has run.
    pub fn get(&self, id: &str, rung: usize) -> Option<&EvalRecord> {
        self.cache.get(&(id.to_string(), rung))
    }

    /// The next append sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every cached evaluation, in `(id, rung)` key order.
    pub fn records(&self) -> impl Iterator<Item = &EvalRecord> {
        self.cache.values()
    }

    /// Appends a batch of fresh evaluations: one line each, then a
    /// single flush + fsync, making the whole batch durable at once.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the batch may be partially
    /// visible on disk but the in-memory cache is not updated.
    pub fn append_batch(&mut self, records: Vec<EvalRecord>) -> Result<(), ExploreError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut payload = String::new();
        for rec in &records {
            payload.push_str(&rec.to_json());
            payload.push('\n');
        }
        let mut file = OpenOptions::new().append(true).open(&self.path)?;
        file.write_all(payload.as_bytes())?;
        file.flush()?;
        file.sync_data()?;
        for rec in records {
            self.next_seq = self.next_seq.max(rec.seq + 1);
            self.cache.insert((rec.id.clone(), rec.rung), rec);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            space: "smoke".into(),
            seed: 42,
            strategy: "grid".into(),
            rungs: vec![Rung::Scale(0.02), Rung::Scale(0.05)],
        }
    }

    fn record(seq: u64, id: &str, rung: usize) -> EvalRecord {
        EvalRecord {
            seq,
            id: id.into(),
            rung,
            scale: 0.02,
            seed: 7,
            makespan: 1000 + seq,
            tasks: 10 * (seq + 1),
            instructions: 50,
            l2_misses: 3,
            mem_accesses: 20,
            timed_out: false,
            wall_us: 12345,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("minnow-journal-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, header()).unwrap();
        assert_eq!(j.resumed(), 0);
        j.append_batch(vec![record(0, "a", 0), record(1, "b", 0)]).unwrap();
        j.append_batch(vec![record(2, "a", 1)]).unwrap();

        let j2 = Journal::open(&path, header()).unwrap();
        assert_eq!(j2.resumed(), 3);
        assert_eq!(j2.next_seq(), 3);
        assert_eq!(j2.get("a", 0).unwrap().makespan, 1000);
        assert_eq!(j2.get("a", 1).unwrap().makespan, 1002);
        assert!(j2.get("b", 1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_tolerated_but_interior_corruption_is_not() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, header()).unwrap();
        j.append_batch(vec![record(0, "a", 0)]).unwrap();
        // Simulate a kill mid-write: a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":1,\"id\":\"b\",\"ru").unwrap();
        drop(f);
        let j2 = Journal::open(&path, header()).unwrap();
        assert_eq!(j2.resumed(), 1, "partial line ignored");

        // Interior corruption (a complete but malformed line) is fatal.
        let text = std::fs::read_to_string(&path).unwrap();
        let fixed = text.replace("{\"seq\":1,\"id\":\"b\",\"ru", "garbage\n");
        std::fs::write(&path, fixed).unwrap();
        assert!(matches!(
            Journal::open(&path, header()),
            Err(ExploreError::Journal(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn input_rung_headers_round_trip() {
        let path = tmp("input-rungs");
        let _ = std::fs::remove_file(&path);
        let with_input = JournalHeader {
            rungs: vec![Rung::Scale(0.02), Rung::Input("graphs/road.mcsr".into())],
            ..header()
        };
        let mut j = Journal::open(&path, with_input.clone()).unwrap();
        j.append_batch(vec![record(0, "a", 1)]).unwrap();
        let j2 = Journal::open(&path, with_input.clone()).unwrap();
        assert_eq!(j2.header(), &with_input);
        assert_eq!(j2.resumed(), 1);
        assert!(matches!(
            Journal::open(&path, header()),
            Err(ExploreError::Journal(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_identity_is_refused() {
        let path = tmp("identity");
        let _ = std::fs::remove_file(&path);
        let _ = Journal::open(&path, header()).unwrap();
        for other in [
            JournalHeader { seed: 43, ..header() },
            JournalHeader { space: "other".into(), ..header() },
            JournalHeader { strategy: "halving2".into(), ..header() },
            JournalHeader { rungs: vec![Rung::Scale(0.02)], ..header() },
            JournalHeader {
                rungs: vec![Rung::Scale(0.02), Rung::Input("g.mcsr".into())],
                ..header()
            },
        ] {
            assert!(matches!(
                Journal::open(&path, other),
                Err(ExploreError::Journal(_))
            ));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

//! Append-only evaluation journal: the explorer's checkpoint.
//!
//! Every simulated evaluation — one configuration at one rung — becomes
//! one JSON line, appended and fsync'd per batch. A killed search
//! resumes by replaying its strategy against the journal: evaluations
//! already on disk are served from the cache instead of re-simulated,
//! so the resumed process continues exactly where the dead one
//! stopped, and (simulation being deterministic) the final frontier is
//! byte-identical to an uninterrupted run.
//!
//! The first line is a header binding the journal to a `(space, seed,
//! strategy, rungs)` tuple; resuming with different parameters is
//! refused rather than silently mixing incompatible results. A
//! truncated final line — the footprint of a process killed mid-write —
//! is tolerated and **repaired** (the torn bytes are truncated away, so
//! a later append cannot fuse with them into an unparsable interior
//! line); corruption anywhere else is an error.
//!
//! # Open cost
//!
//! Journals are append-only, so a process-wide snapshot index keyed by
//! canonical path remembers each journal's parsed state up to its last
//! durable byte. Re-opening a snapshotted journal verifies the header
//! bytes, seeks to the durable offset, and parses only the tail — open
//! cost is O(new records), not O(file), which is what lets a resident
//! daemon re-open per-search journals thousands of times without
//! re-reading megabytes each time ([`Journal::bytes_scanned`] observes
//! this). The index assumes the single-writer discipline the journal
//! already requires; a file that shrank or changed its header falls
//! back to a full re-read.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use minnow_bench::json::JsonObject;

use crate::json_read::Json;
use crate::space::Rung;

/// Schema identifier stamped into the journal's header line.
pub const JOURNAL_SCHEMA: &str = "minnow-explore-journal/v1";

/// The identity a journal is bound to.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Space name.
    pub space: String,
    /// Sweep seed.
    pub seed: u64,
    /// Strategy label (`grid`, `random8`, `halving2`, ...).
    pub strategy: String,
    /// The space's rungs: scale factors serialize as numbers, external
    /// inputs as path strings.
    pub rungs: Vec<Rung>,
}

impl JournalHeader {
    fn to_json(&self) -> String {
        let mut rungs = String::from("[");
        for (i, r) in self.rungs.iter().enumerate() {
            if i > 0 {
                rungs.push(',');
            }
            let _ = write!(rungs, "{}", r.json_value());
        }
        rungs.push(']');
        JsonObject::new()
            .str("schema", JOURNAL_SCHEMA)
            .str("space", &self.space)
            .u64("seed", self.seed)
            .str("strategy", &self.strategy)
            .raw("rungs", &rungs)
            .finish()
    }

    fn from_json(doc: &Json) -> Result<JournalHeader, String> {
        let schema = doc.str_field("schema")?;
        if schema != JOURNAL_SCHEMA {
            return Err(format!("journal schema `{schema}` != `{JOURNAL_SCHEMA}`"));
        }
        let rungs = doc
            .get("rungs")
            .and_then(Json::as_array)
            .ok_or("missing `rungs` array")?
            .iter()
            .map(|v| {
                if let Some(s) = v.as_f64() {
                    Ok(Rung::Scale(s))
                } else if let Some(p) = v.as_str() {
                    Ok(Rung::Input(p.to_string()))
                } else {
                    Err("rung is neither a scale number nor an input path")
                }
            })
            .collect::<Result<Vec<Rung>, _>>()?;
        Ok(JournalHeader {
            space: doc.str_field("space")?.to_string(),
            seed: doc.u64_field("seed")?,
            strategy: doc.str_field("strategy")?.to_string(),
            rungs,
        })
    }

    /// Whether two headers describe the same search identity. Rungs are
    /// compared at the journal's serialization precision (six decimals
    /// for scales, exact paths for inputs).
    fn compatible(&self, other: &JournalHeader) -> bool {
        self.space == other.space
            && self.seed == other.seed
            && self.strategy == other.strategy
            && self.rungs.len() == other.rungs.len()
            && self
                .rungs
                .iter()
                .zip(&other.rungs)
                .all(|(a, b)| a.json_value() == b.json_value())
    }
}

fn identity_error(found: &JournalHeader, expected: &JournalHeader) -> ExploreError {
    ExploreError::Journal(format!(
        "journal belongs to a different search \
         (space {} seed {} strategy {} vs space {} seed {} strategy {}); \
         use a fresh journal path or delete it",
        found.space,
        found.seed,
        found.strategy,
        expected.space,
        expected.seed,
        expected.strategy,
    ))
}

/// One journaled evaluation: a configuration simulated at a rung.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Append sequence number (0-based; informational).
    pub seq: u64,
    /// Configuration id.
    pub id: String,
    /// Rung index into the space's ladder.
    pub rung: usize,
    /// The rung's scale factor (`0.0` for input rungs; the header's
    /// `rungs` array names the file).
    pub scale: f64,
    /// Derived input seed the point ran with.
    pub seed: u64,
    /// Simulated makespan in cycles.
    pub makespan: u64,
    /// Tasks executed — the search's cost currency.
    pub tasks: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Memory accesses.
    pub mem_accesses: u64,
    /// Whether the simulation hit its task limit.
    pub timed_out: bool,
    /// Host wall time in microseconds (volatile: never feeds the
    /// frontier, so resumed journals may differ here and nowhere else).
    pub wall_us: u64,
}

impl EvalRecord {
    /// Serializes the record as one journal line (no trailing newline).
    /// Public because the `minnow-serve` worker protocol streams these
    /// same objects over its wire.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("seq", self.seq)
            .str("id", &self.id)
            .u64("rung", self.rung as u64)
            .f64("scale", self.scale)
            .u64("seed", self.seed)
            .u64("makespan", self.makespan)
            .u64("tasks", self.tasks)
            .u64("instructions", self.instructions)
            .u64("l2_misses", self.l2_misses)
            .u64("mem_accesses", self.mem_accesses)
            .bool("timed_out", self.timed_out)
            .u64("wall_us", self.wall_us)
            .finish()
    }

    /// Parses a record serialized by [`EvalRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<EvalRecord, String> {
        Ok(EvalRecord {
            seq: doc.u64_field("seq")?,
            id: doc.str_field("id")?.to_string(),
            rung: doc.u64_field("rung")? as usize,
            scale: doc.f64_field("scale")?,
            seed: doc.u64_field("seed")?,
            makespan: doc.u64_field("makespan")?,
            tasks: doc.u64_field("tasks")?,
            instructions: doc.u64_field("instructions")?,
            l2_misses: doc.u64_field("l2_misses")?,
            mem_accesses: doc.u64_field("mem_accesses")?,
            timed_out: doc.bool_field("timed_out")?,
            wall_us: doc.u64_field("wall_us")?,
        })
    }
}

/// Parsed journal state up to the last durable byte, kept per canonical
/// path so re-opens only parse the tail.
#[derive(Debug, Clone)]
struct Snapshot {
    /// The header line, including its newline (byte-compared on reopen
    /// to detect a replaced file).
    header_line: String,
    /// The parsed header.
    header: JournalHeader,
    /// File length covered by this snapshot: every byte below it has
    /// been parsed into `cache`.
    valid_len: u64,
    /// Record/blank lines consumed (for stable error line numbers).
    lines: usize,
    /// Highest seq + 1.
    next_seq: u64,
    /// Every parsed record.
    cache: BTreeMap<(String, usize), EvalRecord>,
}

fn snapshots() -> &'static Mutex<HashMap<PathBuf, Snapshot>> {
    static INDEX: OnceLock<Mutex<HashMap<PathBuf, Snapshot>>> = OnceLock::new();
    INDEX.get_or_init(|| Mutex::new(HashMap::new()))
}

fn canonical(path: &Path) -> PathBuf {
    std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf())
}

/// Pending filesystem repair discovered while parsing the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repair {
    /// The file ends on a line boundary; nothing to do.
    None,
    /// Torn unparsable tail: truncate the file to the durable length so
    /// the next append starts on a line boundary.
    Truncate,
    /// The final line is a complete record missing only its newline:
    /// keep it and append the newline.
    AppendNewline,
}

/// The open journal: an eval cache backed by the append-only file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    key: PathBuf,
    header: JournalHeader,
    cache: BTreeMap<(String, usize), EvalRecord>,
    next_seq: u64,
    /// Evaluations served from disk on open (resume observability).
    resumed: usize,
    /// Journal bytes read and parsed by this open.
    bytes_scanned: u64,
}

/// Explorer errors.
#[derive(Debug)]
pub enum ExploreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible journal.
    Journal(String),
    /// Invalid space or configuration.
    Config(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Io(e) => write!(f, "i/o: {e}"),
            ExploreError::Journal(e) => write!(f, "journal: {e}"),
            ExploreError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<std::io::Error> for ExploreError {
    fn from(e: std::io::Error) -> Self {
        ExploreError::Io(e)
    }
}

impl Journal {
    /// Opens (resuming) or creates the journal at `path` for the given
    /// search identity. Re-opening a journal this process has already
    /// parsed costs O(tail): only bytes past the last durable offset
    /// are read (see the module docs and [`Journal::bytes_scanned`]).
    ///
    /// # Errors
    ///
    /// Fails on i/o errors, on a journal whose header does not match
    /// `header`, or on corruption anywhere but a truncated final line.
    pub fn open(path: &Path, header: JournalHeader) -> Result<Journal, ExploreError> {
        let file_len = match std::fs::metadata(path) {
            Ok(meta) => Some(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let Some(file_len) = file_len else {
            return Journal::create(path, header);
        };
        let key = canonical(path);
        let snap = {
            let index = snapshots().lock().unwrap_or_else(|e| e.into_inner());
            index.get(&key).cloned()
        };
        if let Some(snap) = snap {
            if file_len >= snap.valid_len {
                if let Some(journal) = Journal::open_tail(path, &key, &header, &snap)? {
                    return Ok(journal);
                }
            }
        }
        Journal::open_full(path, &key, header)
    }

    fn create(path: &Path, header: JournalHeader) -> Result<Journal, ExploreError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let header_line = format!("{}\n", header.to_json());
        let mut file = File::create(path)?;
        file.write_all(header_line.as_bytes())?;
        file.sync_data()?;
        let key = canonical(path);
        let journal = Journal {
            path: path.to_path_buf(),
            key: key.clone(),
            header: header.clone(),
            cache: BTreeMap::new(),
            next_seq: 0,
            resumed: 0,
            bytes_scanned: 0,
        };
        let mut index = snapshots().lock().unwrap_or_else(|e| e.into_inner());
        index.insert(
            key,
            Snapshot {
                valid_len: header_line.len() as u64,
                header_line,
                header,
                lines: 0,
                next_seq: 0,
                cache: BTreeMap::new(),
            },
        );
        Ok(journal)
    }

    /// The snapshot fast path: verify the header bytes, parse only the
    /// tail past the durable offset. `Ok(None)` means the file on disk
    /// no longer matches the snapshot — fall back to a full read.
    fn open_tail(
        path: &Path,
        key: &Path,
        expected: &JournalHeader,
        snap: &Snapshot,
    ) -> Result<Option<Journal>, ExploreError> {
        let mut file = File::open(path)?;
        let mut head = vec![0u8; snap.header_line.len()];
        if file.read_exact(&mut head).is_err() || head != snap.header_line.as_bytes() {
            return Ok(None);
        }
        if !snap.header.compatible(expected) {
            return Err(identity_error(&snap.header, expected));
        }
        file.seek(SeekFrom::Start(snap.valid_len))?;
        let mut tail = String::new();
        file.read_to_string(&mut tail)?;
        drop(file);
        let mut journal = Journal {
            path: path.to_path_buf(),
            key: key.to_path_buf(),
            header: expected.clone(),
            cache: snap.cache.clone(),
            next_seq: snap.next_seq,
            resumed: 0,
            bytes_scanned: (snap.header_line.len() + tail.len()) as u64,
        };
        let (valid_len, lines, repair) = journal.ingest(&tail, snap.valid_len, snap.lines)?;
        let valid_len = apply_repair(path, valid_len, repair)?;
        journal.resumed = journal.cache.len();
        let mut index = snapshots().lock().unwrap_or_else(|e| e.into_inner());
        index.insert(
            key.to_path_buf(),
            Snapshot {
                header_line: snap.header_line.clone(),
                header: snap.header.clone(),
                valid_len,
                lines,
                next_seq: journal.next_seq,
                cache: journal.cache.clone(),
            },
        );
        Ok(Some(journal))
    }

    /// The cold path: read and parse the whole file.
    fn open_full(path: &Path, key: &Path, header: JournalHeader) -> Result<Journal, ExploreError> {
        let text = std::fs::read_to_string(path)?;
        let header_line = text
            .split_inclusive('\n')
            .next()
            .ok_or_else(|| ExploreError::Journal("empty journal file".into()))?;
        if !header_line.ends_with('\n') {
            // A journal that died while writing its own header: treat as
            // absent content rather than refusing to resume.
            return Err(ExploreError::Journal(
                "journal header line is truncated; delete the file to start over".into(),
            ));
        }
        let doc = Json::parse(header_line.trim_end())
            .map_err(|e| ExploreError::Journal(format!("header: {e}")))?;
        let found = JournalHeader::from_json(&doc).map_err(ExploreError::Journal)?;
        if !found.compatible(&header) {
            return Err(identity_error(&found, &header));
        }
        let mut journal = Journal {
            path: path.to_path_buf(),
            key: key.to_path_buf(),
            header,
            cache: BTreeMap::new(),
            next_seq: 0,
            resumed: 0,
            bytes_scanned: text.len() as u64,
        };
        let body = &text[header_line.len()..];
        let (valid_len, lines, repair) = journal.ingest(body, header_line.len() as u64, 0)?;
        let valid_len = apply_repair(path, valid_len, repair)?;
        journal.resumed = journal.cache.len();
        let mut index = snapshots().lock().unwrap_or_else(|e| e.into_inner());
        index.insert(
            key.to_path_buf(),
            Snapshot {
                header_line: header_line.to_string(),
                header: found,
                valid_len,
                lines,
                next_seq: journal.next_seq,
                cache: journal.cache.clone(),
            },
        );
        Ok(journal)
    }

    /// Parses record lines from `text` — which starts at absolute byte
    /// offset `base`, after `prior_lines` earlier content lines — into
    /// the cache. Returns the durable length (every byte below it is a
    /// complete, parsed line), the new content-line count, and the
    /// filesystem repair the tail needs.
    fn ingest(
        &mut self,
        text: &str,
        base: u64,
        prior_lines: usize,
    ) -> Result<(u64, usize, Repair), ExploreError> {
        let mut valid_len = base;
        let mut lines = prior_lines;
        for raw in text.split_inclusive('\n') {
            let complete = raw.ends_with('\n');
            let line = raw.trim_end();
            if line.is_empty() {
                if complete {
                    valid_len += raw.len() as u64;
                    lines += 1;
                }
                // Torn whitespace stays past `valid_len`; harmless, and
                // a later append still starts a parseable line.
                continue;
            }
            match Json::parse(line).and_then(|doc| EvalRecord::from_json(&doc)) {
                Ok(rec) => {
                    self.next_seq = self.next_seq.max(rec.seq + 1);
                    self.cache.insert((rec.id.clone(), rec.rung), rec);
                    lines += 1;
                    valid_len += raw.len() as u64;
                    if !complete {
                        // A complete record that lost only its newline:
                        // keep it, restore the line boundary.
                        return Ok((valid_len, lines, Repair::AppendNewline));
                    }
                }
                Err(e) if !complete => {
                    // The kill signature: a partial final line. The
                    // evaluation it would have recorded simply re-runs —
                    // and the torn bytes are truncated away so the next
                    // append cannot fuse with them into interior
                    // corruption.
                    let _ = e;
                    return Ok((valid_len, lines, Repair::Truncate));
                }
                Err(e) => {
                    return Err(ExploreError::Journal(format!(
                        "corrupt record on journal line {}: {e}",
                        lines + 2
                    )));
                }
            }
        }
        Ok((valid_len, lines, Repair::None))
    }

    /// The journal's identity header.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Evaluations recovered from disk when the journal was opened.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Journal bytes this open read and parsed: the whole file on a
    /// cold open, only the header line plus the unseen tail when a
    /// process-wide snapshot covered the prefix.
    pub fn bytes_scanned(&self) -> u64 {
        self.bytes_scanned
    }

    /// A cached evaluation, if this (configuration, rung) has run.
    pub fn get(&self, id: &str, rung: usize) -> Option<&EvalRecord> {
        self.cache.get(&(id.to_string(), rung))
    }

    /// The next append sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every cached evaluation, in `(id, rung)` key order.
    pub fn records(&self) -> impl Iterator<Item = &EvalRecord> {
        self.cache.values()
    }

    /// Appends a batch of fresh evaluations: one line each, then a
    /// single flush + fsync, making the whole batch durable at once.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the batch may be partially
    /// visible on disk but the in-memory cache is not updated.
    pub fn append_batch(&mut self, records: Vec<EvalRecord>) -> Result<(), ExploreError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut payload = String::new();
        for rec in &records {
            payload.push_str(&rec.to_json());
            payload.push('\n');
        }
        let mut file = OpenOptions::new().append(true).open(&self.path)?;
        file.write_all(payload.as_bytes())?;
        file.flush()?;
        file.sync_data()?;
        {
            let mut index = snapshots().lock().unwrap_or_else(|e| e.into_inner());
            if let Some(snap) = index.get_mut(&self.key) {
                snap.valid_len += payload.len() as u64;
                snap.lines += records.len();
                for rec in &records {
                    snap.next_seq = snap.next_seq.max(rec.seq + 1);
                    snap.cache.insert((rec.id.clone(), rec.rung), rec.clone());
                }
            }
        }
        for rec in records {
            self.next_seq = self.next_seq.max(rec.seq + 1);
            self.cache.insert((rec.id.clone(), rec.rung), rec);
        }
        Ok(())
    }
}

fn apply_repair(path: &Path, valid_len: u64, repair: Repair) -> Result<u64, ExploreError> {
    match repair {
        Repair::None => Ok(valid_len),
        Repair::Truncate => {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len)?;
            file.sync_data()?;
            Ok(valid_len)
        }
        Repair::AppendNewline => {
            let mut file = OpenOptions::new().append(true).open(path)?;
            file.write_all(b"\n")?;
            file.sync_data()?;
            Ok(valid_len + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            space: "smoke".into(),
            seed: 42,
            strategy: "grid".into(),
            rungs: vec![Rung::Scale(0.02), Rung::Scale(0.05)],
        }
    }

    fn record(seq: u64, id: &str, rung: usize) -> EvalRecord {
        EvalRecord {
            seq,
            id: id.into(),
            rung,
            scale: 0.02,
            seed: 7,
            makespan: 1000 + seq,
            tasks: 10 * (seq + 1),
            instructions: 50,
            l2_misses: 3,
            mem_accesses: 20,
            timed_out: false,
            wall_us: 12345,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("minnow-journal-{}-{name}.jsonl", std::process::id()))
    }

    /// Drops the process-wide snapshot, forcing the next open down the
    /// cold full-read path — the moral equivalent of a fresh process.
    fn forget(path: &Path) {
        let key = canonical(path);
        snapshots()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, header()).unwrap();
        assert_eq!(j.resumed(), 0);
        j.append_batch(vec![record(0, "a", 0), record(1, "b", 0)]).unwrap();
        j.append_batch(vec![record(2, "a", 1)]).unwrap();

        for cold in [false, true] {
            if cold {
                forget(&path);
            }
            let j2 = Journal::open(&path, header()).unwrap();
            assert_eq!(j2.resumed(), 3);
            assert_eq!(j2.next_seq(), 3);
            assert_eq!(j2.get("a", 0).unwrap().makespan, 1000);
            assert_eq!(j2.get("a", 1).unwrap().makespan, 1002);
            assert!(j2.get("b", 1).is_none());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_tolerated_but_interior_corruption_is_not() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, header()).unwrap();
        j.append_batch(vec![record(0, "a", 0)]).unwrap();
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-write: a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":1,\"id\":\"b\",\"ru").unwrap();
        drop(f);
        let text_with_torn = std::fs::read_to_string(&path).unwrap();
        let j2 = Journal::open(&path, header()).unwrap();
        assert_eq!(j2.resumed(), 1, "partial line ignored");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "the torn bytes are truncated away on open"
        );

        // Interior corruption (a complete but malformed line) is fatal,
        // from both the snapshot tail path and a cold full read.
        let poisoned = text_with_torn.replace("{\"seq\":1,\"id\":\"b\",\"ru", "garbage\n");
        std::fs::write(&path, poisoned).unwrap();
        assert!(matches!(
            Journal::open(&path, header()),
            Err(ExploreError::Journal(_))
        ));
        forget(&path);
        assert!(matches!(
            Journal::open(&path, header()),
            Err(ExploreError::Journal(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_repair_keeps_later_appends_parseable_across_cold_opens() {
        let path = tmp("torn-then-append");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, header()).unwrap();
        j.append_batch(vec![record(0, "a", 0)]).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":1,\"id\":\"b\",\"ma").unwrap();
        drop(f);
        // Before the repair existed, this open tolerated the torn tail
        // but the following append landed *after* it, fusing both into
        // one complete-but-malformed line — fatal interior corruption
        // for every later (fresh-process) open. Now the open truncates.
        let mut j2 = Journal::open(&path, header()).unwrap();
        j2.append_batch(vec![record(1, "b", 0)]).unwrap();
        forget(&path);
        let j3 = Journal::open(&path, header()).unwrap();
        assert_eq!(j3.resumed(), 2);
        assert_eq!(j3.get("b", 0).unwrap().makespan, 1001);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_cost_is_o_tail_on_a_10k_record_journal() {
        let path = tmp("10k-tail");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path, header()).unwrap();
        let mut seq = 0u64;
        for batch in 0..20 {
            let records: Vec<EvalRecord> = (0..500)
                .map(|i| {
                    let rec = record(seq, &format!("cfg-{batch}-{i}"), 0);
                    seq += 1;
                    rec
                })
                .collect();
            j.append_batch(records).unwrap();
        }
        let file_len = std::fs::metadata(&path).unwrap().len();
        assert!(file_len > 1_000_000, "10k records should exceed 1MB");

        // Another writer (a dead daemon's worker, say) appended two
        // records this process has not seen.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        for rec in [record(10_000, "late-a", 1), record(10_001, "late-b", 1)] {
            f.write_all(rec.to_json().as_bytes()).unwrap();
            f.write_all(b"\n").unwrap();
        }
        drop(f);

        let j2 = Journal::open(&path, header()).unwrap();
        assert_eq!(j2.resumed(), 10_002);
        assert_eq!(j2.next_seq(), 10_002);
        assert_eq!(j2.get("late-b", 1).unwrap().makespan, 1000 + 10_001);
        assert!(
            j2.bytes_scanned() < 2_000,
            "snapshot reopen must scan only the tail, scanned {} of {file_len}",
            j2.bytes_scanned()
        );

        // The cold path really is O(file) — the fast path's win is real.
        forget(&path);
        let j3 = Journal::open(&path, header()).unwrap();
        assert_eq!(j3.bytes_scanned(), std::fs::metadata(&path).unwrap().len());
        assert_eq!(j3.resumed(), 10_002);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn input_rung_headers_round_trip() {
        let path = tmp("input-rungs");
        let _ = std::fs::remove_file(&path);
        let with_input = JournalHeader {
            rungs: vec![Rung::Scale(0.02), Rung::Input("graphs/road.mcsr".into())],
            ..header()
        };
        let mut j = Journal::open(&path, with_input.clone()).unwrap();
        j.append_batch(vec![record(0, "a", 1)]).unwrap();
        let j2 = Journal::open(&path, with_input.clone()).unwrap();
        assert_eq!(j2.header(), &with_input);
        assert_eq!(j2.resumed(), 1);
        assert!(matches!(
            Journal::open(&path, header()),
            Err(ExploreError::Journal(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_identity_is_refused() {
        let path = tmp("identity");
        let _ = std::fs::remove_file(&path);
        let _ = Journal::open(&path, header()).unwrap();
        for other in [
            JournalHeader { seed: 43, ..header() },
            JournalHeader { space: "other".into(), ..header() },
            JournalHeader { strategy: "halving2".into(), ..header() },
            JournalHeader { rungs: vec![Rung::Scale(0.02)], ..header() },
            JournalHeader {
                rungs: vec![Rung::Scale(0.02), Rung::Input("g.mcsr".into())],
            ..header()
            },
        ] {
            // Both the snapshot fast path and the cold path refuse.
            assert!(matches!(
                Journal::open(&path, other.clone()),
                Err(ExploreError::Journal(_))
            ));
            forget(&path);
            assert!(matches!(
                Journal::open(&path, other),
                Err(ExploreError::Journal(_))
            ));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

//! The resident evaluation daemon.
//!
//! [`Daemon::start`] binds a Unix domain socket (and optionally a TCP
//! HTTP listener), spawns `local_executors` simulation threads, and
//! serves `minnow-serve-proto/v1` requests until a `shutdown` op (or
//! [`Daemon::trigger_shutdown`]). Request handling is thread-per-
//! connection; the expensive part — simulation — is decoupled behind
//! the bounded [`JobQueue`], where local executors and connected
//! remote workers compete for jobs.
//!
//! Everything the daemon serves flows through [`store_key`] +
//! [`Store`] first, so repeated evaluations of the same point are
//! answered in microseconds with **zero** simulator invocations — the
//! `sim_invocations` counter in `/stats` is the proof. Sweep and
//! explore requests are assembled from the same frozen serializers the
//! direct binaries use (`point_record_json`, the journal, the frontier
//! builder), which is what makes a served artifact byte-identical to a
//! directly produced one.

use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use minnow_bench::eval::{
    breakdown_record_json, point_record_json, EvalRequest, EvalResponse, Evaluator,
    LocalEvaluator,
};
use minnow_bench::json::JsonObject;
use minnow_bench::json_read::Json;
use minnow_bench::runner::BenchRun;
use minnow_bench::sweep::{Sweep, SweepParams};
use minnow_explore::{
    explore_with, write_frontier_artifacts, ExploreConfig, ExploreOutcome, Space, Strategy,
};

use crate::net::{read_line_capped, write_line, LineRead, ServeAddr, Stream};
use crate::proto::{
    error_line, job_line, parse_result, worker_hello, MAX_REQUEST_BYTES, OPS, PROTO_SCHEMA,
};
use crate::queue::{EvalOutcome, JobQueue, QueueJob, SubmitError};
use crate::stats::ServeStats;
use crate::store::{store_key, Store, StoredEval};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Optional TCP address (`host:port`) for the HTTP/1.1 front end;
    /// port 0 binds an ephemeral port (see [`Daemon::http_addr`]).
    pub http: Option<String>,
    /// Persist the store to this JSONL file (`None`: memory-only).
    pub store_path: Option<PathBuf>,
    /// Store size cap in bytes.
    pub store_cap_bytes: u64,
    /// Open-job cap for admission control.
    pub queue_cap: usize,
    /// Local simulation threads. Zero is legal: the daemon then serves
    /// only from the store and remote workers.
    pub local_executors: usize,
    /// Bound-weave threads per simulation point (outcome-neutral).
    pub point_threads: usize,
    /// Artifact and journal directory for sweep/explore ops.
    pub out_dir: PathBuf,
    /// Narrate requests and per-point results to stderr.
    pub verbose: bool,
}

impl ServeConfig {
    /// Defaults: no HTTP, memory-only store capped at 64 MiB, queue cap
    /// 64, one executor per host core.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            http: None,
            store_path: None,
            store_cap_bytes: 64 << 20,
            queue_cap: 64,
            local_executors: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            point_threads: 1,
            out_dir: PathBuf::from("target/minnow-serve"),
            verbose: false,
        }
    }
}

/// The journal file name the daemon's explore op uses under `out_dir`
/// — the same naming scheme as the `minnow-explore` binary, so a
/// daemon-run search and a direct one resume each other's checkpoints.
pub fn journal_filename(space: &str, strategy: &Strategy, seed: u64) -> String {
    format!("{space}.{}.s{seed}.journal.jsonl", strategy.label())
}

pub(crate) struct Inner {
    pub(crate) cfg: ServeConfig,
    pub(crate) store: Store,
    pub(crate) queue: JobQueue,
    pub(crate) stats: Arc<ServeStats>,
    pub(crate) shutdown: AtomicBool,
    /// Gauge: connected remote workers.
    pub(crate) workers: AtomicU64,
    /// The HTTP listener's bound address, once known.
    pub(crate) http_addr: Mutex<Option<std::net::SocketAddr>>,
}

/// One handled request: the response line plus transport hints.
pub(crate) struct OpOutcome {
    /// The JSON response line (no newline).
    pub(crate) line: String,
    /// The HTTP status this response maps to (NDJSON ignores it).
    pub(crate) status: u16,
    /// Retry-after hint in milliseconds (admission rejections).
    pub(crate) retry_after_ms: Option<u64>,
    /// The request asked the daemon to shut down.
    pub(crate) shutdown: bool,
}

impl OpOutcome {
    fn ok(line: String) -> OpOutcome {
        OpOutcome {
            line,
            status: 200,
            retry_after_ms: None,
            shutdown: false,
        }
    }

    fn err(op: &str, error: &str) -> OpOutcome {
        OpOutcome {
            line: error_line(op, error),
            status: 400,
            retry_after_ms: None,
            shutdown: false,
        }
    }
}

fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

enum EvalFailure {
    /// Admission control turned the request away; carries open jobs.
    Busy(usize),
    Error(String),
}

impl Inner {
    /// Evaluates one run: store first, then the queue.
    fn evaluate_one(
        &self,
        namespace: &str,
        id: &str,
        run: BenchRun,
        block: bool,
    ) -> Result<EvalResponse, EvalFailure> {
        let t0 = Instant::now();
        let key = store_key(namespace, &run).map_err(EvalFailure::Error)?;
        if let Some(hit) = self.store.get(&key) {
            return Ok(EvalResponse {
                id: id.to_string(),
                report: hit.report,
                wall_us: elapsed_us(t0),
                cached: true,
            });
        }
        let rx = self
            .queue
            .submit(
                EvalRequest {
                    id: id.to_string(),
                    run,
                },
                key,
                block,
            )
            .map_err(|e| match e {
                SubmitError::Full(open) => EvalFailure::Busy(open),
                SubmitError::Shutdown => EvalFailure::Error("daemon shutting down".into()),
            })?;
        let stored = rx
            .recv()
            .map_err(|_| EvalFailure::Error("daemon shutting down".into()))?
            .map_err(EvalFailure::Error)?;
        Ok(EvalResponse {
            id: id.to_string(),
            report: stored.report,
            wall_us: elapsed_us(t0),
            cached: false,
        })
    }

    /// Dispatches one parsed request line.
    pub(crate) fn handle_doc(self: &Arc<Inner>, doc: &Json) -> OpOutcome {
        ServeStats::bump(&self.stats.requests);
        let op = match doc.str_field("op") {
            Ok(op) => op.to_string(),
            Err(e) => return OpOutcome::err("?", &e),
        };
        if self.cfg.verbose {
            eprintln!("[serve] op {op}");
        }
        match op.as_str() {
            "ping" => OpOutcome::ok(
                JsonObject::new()
                    .bool("ok", true)
                    .str("op", "ping")
                    .str("proto", PROTO_SCHEMA)
                    .finish(),
            ),
            "eval" => self.op_eval(doc),
            "sweep" => match self.op_sweep(doc) {
                Ok(line) => OpOutcome::ok(line),
                Err(e) => OpOutcome::err("sweep", &e),
            },
            "explore" => match self.op_explore(doc) {
                Ok(line) => OpOutcome::ok(line),
                Err(e) => OpOutcome::err("explore", &e),
            },
            "stats" => OpOutcome::ok(self.op_stats()),
            "shutdown" => OpOutcome {
                line: JsonObject::new()
                    .bool("ok", true)
                    .str("op", "shutdown")
                    .finish(),
                status: 200,
                retry_after_ms: None,
                shutdown: true,
            },
            other => OpOutcome::err(
                other,
                &format!("unknown op `{other}` (one of {})", OPS.join(", ")),
            ),
        }
    }

    fn op_eval(self: &Arc<Inner>, doc: &Json) -> OpOutcome {
        let namespace = doc
            .get("space")
            .and_then(Json::as_str)
            .unwrap_or("adhoc")
            .to_string();
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("eval")
            .to_string();
        let run = match doc.get("run") {
            Some(run_doc) => match minnow_bench::eval::run_from_json(run_doc) {
                Ok(run) => run,
                Err(e) => return OpOutcome::err("eval", &format!("run: {e}")),
            },
            None => return OpOutcome::err("eval", "missing `run` object"),
        };
        match self.evaluate_one(&namespace, &id, run, false) {
            Ok(resp) => OpOutcome::ok(
                JsonObject::new()
                    .bool("ok", true)
                    .str("op", "eval")
                    .str("id", &resp.id)
                    .bool("cached", resp.cached)
                    .u64("wall_us", resp.wall_us)
                    .raw("report", &resp.report.to_json())
                    .finish(),
            ),
            Err(EvalFailure::Busy(open)) => {
                let retry_ms = (open as u64 * 250).clamp(250, 5000);
                OpOutcome {
                    line: JsonObject::new()
                        .bool("ok", false)
                        .str("op", "eval")
                        .str("error", "queue full")
                        .u64("open_jobs", open as u64)
                        .u64("retry_after_ms", retry_ms)
                        .finish(),
                    status: 429,
                    retry_after_ms: Some(retry_ms),
                    shutdown: false,
                }
            }
            Err(EvalFailure::Error(e)) => OpOutcome::err("eval", &e),
        }
    }

    fn op_sweep(self: &Arc<Inner>, doc: &Json) -> Result<String, String> {
        let name = doc.str_field("sweep")?.to_string();
        let mut params = SweepParams::from_env();
        if let Some(v) = doc.get("scale") {
            params.scale = v.as_f64().ok_or("non-numeric `scale`")?;
        }
        if let Some(v) = doc.get("seed") {
            params.seed = v.as_u64().ok_or("non-integer `seed`")?;
        }
        if let Some(v) = doc.get("headline_threads") {
            params.headline_threads = v.as_u64().ok_or("non-integer `headline_threads`")? as usize;
        }
        if let Some(v) = doc.get("max_threads") {
            params.max_threads = v.as_u64().ok_or("non-integer `max_threads`")? as usize;
        }
        let sweep = Sweep::named(&name, &params).ok_or_else(|| {
            format!("unknown sweep `{name}` (one of {})", Sweep::NAMES.join(", "))
        })?;
        let mut points = sweep.points;
        if let Some(v) = doc.get("filter") {
            let filter = v.as_str().ok_or("non-string `filter`")?;
            points.retain(|p| p.id.contains(filter));
        }
        let t0 = Instant::now();
        let mut evaluator = DaemonEvaluator {
            inner: self,
            namespace: format!("sweep/{name}"),
        };
        let requests = points
            .iter()
            .map(|p| EvalRequest {
                id: p.id.clone(),
                run: p.run.clone(),
            })
            .collect();
        let responses = evaluator.evaluate(requests)?;
        let mut jsonl = String::new();
        let mut breakdown = String::new();
        for (point, resp) in points.iter().zip(&responses) {
            jsonl.push_str(&point_record_json(&name, &point.id, &point.run, &resp.report));
            jsonl.push('\n');
            breakdown.push_str(&breakdown_record_json(&name, &point.id, &resp.report));
            breakdown.push('\n');
        }
        let cached = responses.iter().filter(|r| r.cached).count();
        Ok(JsonObject::new()
            .bool("ok", true)
            .str("op", "sweep")
            .str("sweep", &name)
            .u64("points", points.len() as u64)
            .u64("cached", cached as u64)
            .u64("fresh", (points.len() - cached) as u64)
            .u64("wall_us", elapsed_us(t0))
            .str("jsonl", &jsonl)
            .str("breakdown", &breakdown)
            .finish())
    }

    fn op_explore(self: &Arc<Inner>, doc: &Json) -> Result<String, String> {
        let name = doc.str_field("space")?.to_string();
        let space = Space::named(&name).ok_or_else(|| {
            format!("unknown space `{name}` (one of {})", Space::NAMES.join(", "))
        })?;
        let kind = doc
            .get("strategy")
            .and_then(Json::as_str)
            .unwrap_or("halving")
            .to_string();
        let samples = doc
            .get("samples")
            .and_then(Json::as_u64)
            .unwrap_or(8) as usize;
        let eta = doc.get("eta").and_then(Json::as_u64).unwrap_or(2) as usize;
        let strategy = Strategy::from_flags(&kind, samples, eta)?;
        let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(42);
        let max_fresh = doc
            .get("max_fresh")
            .and_then(Json::as_u64)
            .map(|n| n as usize);
        let journal_path = self
            .cfg
            .out_dir
            .join(journal_filename(&space.name, &strategy, seed));
        let pool = (self.cfg.local_executors + self.workers.load(Ordering::Relaxed) as usize)
            .max(1);
        let cfg = ExploreConfig {
            space,
            strategy,
            seed,
            pool_threads: pool,
            point_threads: self.cfg.point_threads,
            pin_point_threads: false,
            front_shards: None,
            speculate: None,
            max_fresh_evals: max_fresh,
            journal_path,
            verbose: self.cfg.verbose,
        };
        let mut evaluator = DaemonEvaluator {
            inner: self,
            namespace: format!("space/{}", cfg.space.name),
        };
        match explore_with(&cfg, &mut evaluator).map_err(|e| e.to_string())? {
            ExploreOutcome::Complete {
                frontier,
                fresh,
                resumed,
            } => {
                write_frontier_artifacts(&self.cfg.out_dir, &frontier)
                    .map_err(|e| format!("writing frontier: {e}"))?;
                Ok(JsonObject::new()
                    .bool("ok", true)
                    .str("op", "explore")
                    .str("space", &cfg.space.name)
                    .str("status", "complete")
                    .u64("fresh", fresh as u64)
                    .u64("resumed", resumed as u64)
                    .u64("evaluated", frontier.evaluated as u64)
                    .str("frontier_jsonl", &frontier.to_jsonl())
                    .str("table", &frontier.table())
                    .finish())
            }
            ExploreOutcome::Paused {
                fresh,
                resumed,
                wave,
                remaining_in_wave,
            } => Ok(JsonObject::new()
                .bool("ok", true)
                .str("op", "explore")
                .str("space", &cfg.space.name)
                .str("status", "paused")
                .u64("fresh", fresh as u64)
                .u64("resumed", resumed as u64)
                .u64("wave", wave as u64)
                .u64("remaining_in_wave", remaining_in_wave as u64)
                .finish()),
        }
    }

    fn op_stats(&self) -> String {
        let store = JsonObject::new()
            .u64("entries", self.store.len() as u64)
            .u64("bytes", self.store.bytes())
            .u64("cap_bytes", self.store.cap_bytes())
            .bool("persistent", self.store.path().is_some())
            .finish();
        let queue = JsonObject::new()
            .u64("pending", self.queue.pending() as u64)
            .u64("open", self.queue.open_jobs() as u64)
            .u64("cap", self.cfg.queue_cap as u64)
            .finish();
        JsonObject::new()
            .bool("ok", true)
            .str("op", "stats")
            .str("proto", PROTO_SCHEMA)
            .raw("serve_stats", &self.stats.to_json())
            .raw("store", &store)
            .raw("queue", &queue)
            .u64("workers", self.workers.load(Ordering::Relaxed))
            .u64("local_executors", self.cfg.local_executors as u64)
            .finish()
    }

    /// Idempotent shutdown: fail queued work, then poke both listeners
    /// loose with self-connections.
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.shutdown();
        let _ = std::os::unix::net::UnixStream::connect(&self.cfg.socket);
        if let Some(addr) = *self.http_addr.lock().unwrap() {
            let _ = std::net::TcpStream::connect(addr);
        }
    }
}

/// The daemon's own [`Evaluator`]: store lookup, then a blocking submit
/// to the shared queue. Sweep and explore ops run the stock artifact
/// logic through this, which is how served artifacts stay
/// byte-identical to direct ones.
struct DaemonEvaluator<'a> {
    inner: &'a Arc<Inner>,
    namespace: String,
}

impl Evaluator for DaemonEvaluator<'_> {
    fn evaluate(&mut self, batch: Vec<EvalRequest>) -> Result<Vec<EvalResponse>, String> {
        let mut out: Vec<Option<EvalResponse>> = (0..batch.len()).map(|_| None).collect();
        let mut waiting = Vec::new();
        for (i, req) in batch.into_iter().enumerate() {
            let t0 = Instant::now();
            let key = store_key(&self.namespace, &req.run)?;
            if let Some(hit) = self.inner.store.get(&key) {
                out[i] = Some(EvalResponse {
                    id: req.id,
                    report: hit.report,
                    wall_us: elapsed_us(t0),
                    cached: true,
                });
                continue;
            }
            let id = req.id.clone();
            let rx = self
                .inner
                .queue
                .submit(req, key, true)
                .map_err(|_| "daemon shutting down".to_string())?;
            waiting.push((i, id, t0, rx));
        }
        for (i, id, t0, rx) in waiting {
            let stored = rx
                .recv()
                .map_err(|_| "daemon shutting down".to_string())??;
            out[i] = Some(EvalResponse {
                id,
                report: stored.report,
                wall_us: elapsed_us(t0),
                cached: false,
            });
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every request answered"))
            .collect())
    }
}

/// A local executor: pull, simulate, memoize, acknowledge.
fn executor_loop(inner: &Arc<Inner>) {
    while let Some(job) = inner.queue.next() {
        ServeStats::bump(&inner.stats.sim_invocations);
        let outcome = run_local(inner, &job);
        if let Ok(stored) = &outcome {
            inner.store.insert(&job.key, stored);
        }
        inner.queue.complete(job.seq, &outcome);
    }
}

fn run_local(inner: &Arc<Inner>, job: &QueueJob) -> EvalOutcome {
    let t0 = Instant::now();
    let mut local = LocalEvaluator {
        point_threads: inner.cfg.point_threads.max(1),
        verbose: inner.cfg.verbose,
        tag: "serve".into(),
        ..LocalEvaluator::serial()
    };
    let request = job.request.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        local.evaluate(vec![request])
    }));
    match result {
        Ok(Ok(mut responses)) if responses.len() == 1 => {
            let resp = responses.pop().expect("length checked");
            Ok(StoredEval {
                report: resp.report,
                sim_wall_us: elapsed_us(t0),
            })
        }
        Ok(Ok(_)) => Err("evaluator answered the wrong batch size".into()),
        Ok(Err(e)) => Err(e),
        Err(_) => Err("simulation panicked".into()),
    }
}

/// Feeds jobs to one connected worker until it drops or the daemon
/// shuts down. An unacknowledged job is re-issued through the queue.
fn worker_feeder(
    inner: &Arc<Inner>,
    reader: &mut std::io::BufReader<Stream>,
    writer: &mut Stream,
    hello: &Json,
) {
    let proto = hello.get("proto").and_then(Json::as_str).unwrap_or("?");
    if proto != PROTO_SCHEMA {
        let _ = write_line(
            writer,
            &error_line(
                "worker-hello",
                &format!("worker speaks `{proto}`, daemon speaks `{PROTO_SCHEMA}`"),
            ),
        );
        return;
    }
    let name = hello
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("worker")
        .to_string();
    let ack = JsonObject::new()
        .bool("ok", true)
        .str("op", "worker-hello")
        .str("proto", PROTO_SCHEMA)
        .finish();
    if write_line(writer, &ack).is_err() {
        return;
    }
    inner.workers.fetch_add(1, Ordering::Relaxed);
    if inner.cfg.verbose {
        eprintln!("[serve] worker `{name}` connected");
    }
    while let Some(job) = inner.queue.next() {
        if write_line(writer, &job_line(job.seq, &job.request.id, &job.request.run)).is_err() {
            inner.queue.requeue(job);
            break;
        }
        match read_line_capped(reader, MAX_REQUEST_BYTES) {
            Ok(LineRead::Line(line)) => {
                let parsed = Json::parse(&line)
                    .map_err(|e| e.to_string())
                    .and_then(|doc| {
                        // A worker that cannot run the job reports an
                        // error object instead of a result record.
                        if let Some(err) = doc.get("error").and_then(Json::as_str) {
                            return Err(format!("worker `{name}`: {err}"));
                        }
                        parse_result(&doc).map_err(|e| format!("worker `{name}`: {e}"))
                    });
                match parsed {
                    Ok(msg) if msg.seq == job.seq => {
                        let stored = StoredEval {
                            report: msg.report,
                            sim_wall_us: msg.wall_us,
                        };
                        inner.store.insert(&job.key, &stored);
                        ServeStats::bump(&inner.stats.worker_results);
                        inner.queue.complete(job.seq, &Ok(stored));
                    }
                    Ok(_) => {
                        // Acknowledgement for the wrong job: the stream
                        // is desynchronized. Re-issue and drop the
                        // worker.
                        inner.queue.requeue(job);
                        break;
                    }
                    Err(e) => {
                        // The worker answered but could not evaluate:
                        // fail this evaluation rather than retrying a
                        // deterministic failure forever.
                        inner.queue.complete(job.seq, &Err(e));
                    }
                }
            }
            _ => {
                // EOF, oversize, or transport error mid-evaluation: the
                // job was never acknowledged — re-issue it.
                inner.queue.requeue(job);
                break;
            }
        }
    }
    inner.workers.fetch_sub(1, Ordering::Relaxed);
    if inner.cfg.verbose {
        eprintln!("[serve] worker `{name}` disconnected");
    }
}

/// Serves one NDJSON connection (client or worker).
fn serve_conn(inner: Arc<Inner>, stream: Stream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = std::io::BufReader::new(stream);
    loop {
        match read_line_capped(&mut reader, MAX_REQUEST_BYTES) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let doc = match Json::parse(&line) {
                    Ok(doc) => doc,
                    Err(e) => {
                        let reply = error_line("?", &format!("parse: {e}"));
                        if write_line(&mut writer, &reply).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                if doc.get("op").and_then(Json::as_str) == Some("worker-hello") {
                    worker_feeder(&inner, &mut reader, &mut writer, &doc);
                    return;
                }
                let outcome = inner.handle_doc(&doc);
                let write_ok = write_line(&mut writer, &outcome.line).is_ok();
                if outcome.shutdown {
                    inner.begin_shutdown();
                    return;
                }
                if !write_ok {
                    return;
                }
            }
            Ok(LineRead::Oversized) => {
                // The rest of the line is still in flight; the stream
                // cannot be re-synchronized. Reply and hang up.
                let reply = error_line(
                    "?",
                    &format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                );
                let _ = write_line(&mut writer, &reply);
                return;
            }
            Ok(LineRead::Eof) | Err(_) => return,
        }
    }
}

/// A running daemon: the in-process handle tests and binaries hold.
pub struct Daemon {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listeners, spawns the executors, and starts serving.
    ///
    /// # Errors
    ///
    /// Returns a message when a listener cannot bind, another daemon
    /// already serves the socket, or the store file is unreadable.
    pub fn start(cfg: ServeConfig) -> Result<Daemon, String> {
        std::fs::create_dir_all(&cfg.out_dir)
            .map_err(|e| format!("out dir {}: {e}", cfg.out_dir.display()))?;
        if cfg.socket.exists() {
            if std::os::unix::net::UnixStream::connect(&cfg.socket).is_ok() {
                return Err(format!(
                    "a daemon is already serving {}",
                    cfg.socket.display()
                ));
            }
            std::fs::remove_file(&cfg.socket)
                .map_err(|e| format!("stale socket {}: {e}", cfg.socket.display()))?;
        }
        if let Some(parent) = cfg.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("socket dir {}: {e}", parent.display()))?;
            }
        }
        let stats = Arc::new(ServeStats::new());
        let store = Store::open(
            cfg.store_path.clone(),
            cfg.store_cap_bytes,
            Arc::clone(&stats),
        )?;
        let queue = JobQueue::new(cfg.queue_cap, Arc::clone(&stats));
        let listener = UnixListener::bind(&cfg.socket)
            .map_err(|e| format!("bind {}: {e}", cfg.socket.display()))?;
        let inner = Arc::new(Inner {
            cfg,
            store,
            queue,
            stats,
            shutdown: AtomicBool::new(false),
            workers: AtomicU64::new(0),
            http_addr: Mutex::new(None),
        });

        let mut threads = Vec::new();
        for i in 0..inner.cfg.local_executors {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || executor_loop(&inner))
                    .map_err(|e| format!("spawning executor: {e}"))?,
            );
        }
        if let Some(http) = inner.cfg.http.clone() {
            let listener = std::net::TcpListener::bind(http.as_str())
                .map_err(|e| format!("bind http {http}: {e}"))?;
            *inner.http_addr.lock().unwrap() = listener.local_addr().ok();
            let inner2 = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-http".into())
                    .spawn(move || crate::http::accept_loop(inner2, listener))
                    .map_err(|e| format!("spawning http listener: {e}"))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || {
                        for conn in listener.incoming() {
                            if inner.shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(sock) = conn else { continue };
                            let inner = Arc::clone(&inner);
                            // Connection threads are detached: they end
                            // when their peer hangs up.
                            let _ = std::thread::Builder::new()
                                .name("serve-conn".into())
                                .spawn(move || serve_conn(inner, Stream::Unix(sock)));
                        }
                    })
                    .map_err(|e| format!("spawning accept loop: {e}"))?,
            );
        }
        Ok(Daemon { inner, threads })
    }

    /// The daemon's counter block.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.inner.stats)
    }

    /// The Unix socket the daemon serves.
    pub fn socket(&self) -> &std::path::Path {
        &self.inner.cfg.socket
    }

    /// The HTTP listener's bound address, when one was configured
    /// (resolves port 0 to the real ephemeral port).
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        *self.inner.http_addr.lock().unwrap()
    }

    /// Initiates shutdown as if a `shutdown` op had arrived.
    pub fn trigger_shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Waits for shutdown to finish, prints the counter summary to
    /// stderr, and removes the socket file.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.inner.cfg.socket);
        eprintln!("{}", self.inner.stats.summary());
    }
}

/// Sends a worker handshake greeting on `addr` — shared by
/// [`crate::worker`] and kept here so the daemon and worker halves of
/// the protocol live next to each other in review.
pub(crate) fn connect_worker(addr: &ServeAddr, name: &str) -> Result<Stream, String> {
    let stream = addr
        .connect()
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone {addr}: {e}"))?;
    write_line(&mut writer, &worker_hello(name)).map_err(|e| format!("hello {addr}: {e}"))?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_filenames_match_the_explore_binary() {
        let halving = Strategy::from_flags("halving", 8, 2).unwrap();
        assert_eq!(
            journal_filename("smoke", &halving, 42),
            format!("smoke.{}.s42.journal.jsonl", halving.label())
        );
        let grid = Strategy::from_flags("grid", 8, 2).unwrap();
        assert_eq!(
            journal_filename("credits-bfs", &grid, 7),
            "credits-bfs.grid.s7.journal.jsonl"
        );
    }
}

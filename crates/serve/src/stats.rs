//! Daemon-wide counters: the `serve_stats` block every `/stats`
//! response and the shutdown summary report.
//!
//! Everything here is a monotonic `AtomicU64` except `inflight`, which
//! is a gauge (submitted-but-unanswered evaluations). Counters are
//! bumped with relaxed ordering — they are observability, not
//! synchronization — and read as a consistent-enough snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

use minnow_bench::json::JsonObject;

/// The daemon's counter block. One instance is shared (via `Arc`) by
/// the store, the queue, the executors, and the listeners.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Evaluations answered straight from the content-addressed store.
    pub hits: AtomicU64,
    /// Store lookups that missed and went to the queue.
    pub misses: AtomicU64,
    /// Entries evicted from the store by the size cap.
    pub evictions: AtomicU64,
    /// Gauge: evaluations submitted to the queue and not yet answered.
    pub inflight: AtomicU64,
    /// Duplicate concurrent requests that attached to an in-flight
    /// evaluation instead of enqueuing a second simulation.
    pub coalesced: AtomicU64,
    /// Requests turned away by admission control (queue full).
    pub rejected: AtomicU64,
    /// Simulator invocations by this process's local executors.
    pub sim_invocations: AtomicU64,
    /// Results streamed back by remote workers.
    pub worker_results: AtomicU64,
    /// Jobs re-issued after a worker connection died mid-evaluation.
    pub requeues: AtomicU64,
    /// Protocol requests handled (all ops, all transports).
    pub requests: AtomicU64,
}

impl ServeStats {
    /// A zeroed counter block.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Bumps a counter by one (relaxed).
    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (relaxed, saturating at zero in
    /// practice because every decrement pairs with an increment).
    pub fn drop_gauge(c: &AtomicU64) {
        c.fetch_sub(1, Ordering::Relaxed);
    }

    /// Serializes the counter block as the canonical `serve_stats`
    /// JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("hits", Self::get(&self.hits))
            .u64("misses", Self::get(&self.misses))
            .u64("evictions", Self::get(&self.evictions))
            .u64("inflight", Self::get(&self.inflight))
            .u64("coalesced", Self::get(&self.coalesced))
            .u64("rejected", Self::get(&self.rejected))
            .u64("sim_invocations", Self::get(&self.sim_invocations))
            .u64("worker_results", Self::get(&self.worker_results))
            .u64("requeues", Self::get(&self.requeues))
            .u64("requests", Self::get(&self.requests))
            .finish()
    }

    /// The one-line human summary printed at daemon shutdown.
    pub fn summary(&self) -> String {
        format!(
            "serve_stats: {} requests, {} hits / {} misses, {} coalesced, \
             {} sims local + {} via workers ({} requeued), {} evicted, {} rejected",
            Self::get(&self.requests),
            Self::get(&self.hits),
            Self::get(&self.misses),
            Self::get(&self.coalesced),
            Self::get(&self.sim_invocations),
            Self::get(&self.worker_results),
            Self::get(&self.requeues),
            Self::get(&self.evictions),
            Self::get(&self.rejected),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_bench::json_read::Json;

    #[test]
    fn stats_serialize_every_counter() {
        let s = ServeStats::new();
        ServeStats::bump(&s.hits);
        ServeStats::bump(&s.hits);
        ServeStats::bump(&s.inflight);
        ServeStats::drop_gauge(&s.inflight);
        let doc = Json::parse(&s.to_json()).unwrap();
        assert_eq!(doc.u64_field("hits").unwrap(), 2);
        assert_eq!(doc.u64_field("inflight").unwrap(), 0);
        for field in [
            "misses",
            "evictions",
            "coalesced",
            "rejected",
            "sim_invocations",
            "worker_results",
            "requeues",
            "requests",
        ] {
            assert_eq!(doc.u64_field(field).unwrap(), 0, "{field}");
        }
        assert!(s.summary().contains("2 hits"));
    }
}

//! Transport plumbing: a stream that is either a Unix domain socket or
//! a TCP connection, address parsing, and capped line I/O.
//!
//! The daemon, its workers, and its clients all speak newline-delimited
//! JSON; every line read anywhere in the crate goes through
//! [`read_line_capped`] so an oversized (or hostile) payload is
//! detected *before* it is buffered whole.

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Stream {
    /// Unix domain socket.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// An independent handle to the same connection (for split
    /// read/write halves).
    ///
    /// # Errors
    ///
    /// Propagates the OS `dup` failure.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Shuts down both directions, unblocking any reader.
    pub fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A daemon address: a socket path (anything containing `/`) or a TCP
/// `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP `host:port`.
    Tcp(String),
}

impl ServeAddr {
    /// Parses an address: text containing a `/` is a socket path,
    /// anything else a TCP `host:port`.
    pub fn parse(text: &str) -> ServeAddr {
        if text.contains('/') {
            ServeAddr::Unix(PathBuf::from(text))
        } else {
            ServeAddr::Tcp(text.to_string())
        }
    }

    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// Propagates the OS connect failure.
    pub fn connect(&self) -> std::io::Result<Stream> {
        Ok(match self {
            ServeAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            ServeAddr::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        })
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "{a}"),
        }
    }
}

/// Outcome of a capped line read.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line (newline stripped).
    Line(String),
    /// Clean end of stream (or a torn trailing fragment).
    Eof,
    /// The line exceeded the cap; the stream is desynchronized and must
    /// be dropped after an error reply.
    Oversized,
}

/// Reads one `\n`-terminated line, refusing to buffer more than `cap`
/// bytes.
///
/// # Errors
///
/// Propagates transport errors; non-UTF-8 lines surface as
/// `InvalidData`.
pub fn read_line_capped<R: BufRead>(reader: &mut R, cap: u64) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    let n = reader.by_ref().take(cap).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if !buf.ends_with(b"\n") {
        return if n as u64 == cap {
            Ok(LineRead::Oversized)
        } else {
            // The peer vanished mid-line; nothing complete to hand up.
            Ok(LineRead::Eof)
        };
    }
    buf.pop();
    if buf.ends_with(b"\r") {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(LineRead::Line)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes `line` plus a newline and flushes.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_line<W: Write>(writer: &mut W, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn addresses_parse_by_shape() {
        assert_eq!(
            ServeAddr::parse("/tmp/minnow.sock"),
            ServeAddr::Unix(PathBuf::from("/tmp/minnow.sock"))
        );
        assert_eq!(
            ServeAddr::parse("127.0.0.1:7070"),
            ServeAddr::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            ServeAddr::parse("./serve.sock"),
            ServeAddr::Unix(PathBuf::from("./serve.sock"))
        );
    }

    #[test]
    fn capped_reads_distinguish_lines_eof_and_oversize() {
        let mut r = BufReader::new(&b"hello\nworld"[..]);
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), LineRead::Line("hello".into()));
        // Torn trailing fragment under the cap: EOF, not a line.
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), LineRead::Eof);
        let mut r = BufReader::new(&b"abcdefghij\n"[..]);
        assert_eq!(read_line_capped(&mut r, 4).unwrap(), LineRead::Oversized);
        let mut r = BufReader::new(&b"crlf\r\nrest\n"[..]);
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), LineRead::Line("crlf".into()));
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), LineRead::Line("rest".into()));
        let mut r = BufReader::new(&b""[..]);
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), LineRead::Eof);
    }

    #[test]
    fn exact_cap_length_line_still_parses() {
        // A line of exactly `cap` bytes *including* the newline fits.
        let mut r = BufReader::new(&b"abc\n"[..]);
        assert_eq!(read_line_capped(&mut r, 4).unwrap(), LineRead::Line("abc".into()));
    }
}

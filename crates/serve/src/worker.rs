//! The pull-mode remote worker.
//!
//! `minnow-serve --worker <addr>` connects *out* to a daemon, announces
//! itself with a `worker-hello`, and then inverts the conversation:
//! the daemon streams job lines down, the worker simulates each and
//! streams a journal-schema result line back. Workers hold no state the
//! daemon depends on — a worker that dies mid-evaluation simply never
//! acknowledges its job, and the daemon re-issues it to whoever pulls
//! next. Determinism makes the re-run indistinguishable, which is the
//! whole fault-tolerance story.
//!
//! [`WorkerConfig::die_after`] is deliberate fault injection for tests
//! and demos: the worker drops the connection (without acknowledging)
//! when it receives its N+1th job, simulating a mid-evaluation crash.

use std::io::BufReader;
use std::time::Instant;

use minnow_bench::eval::{EvalRequest, Evaluator, LocalEvaluator};
use minnow_bench::json_read::Json;

use crate::daemon::connect_worker;
use crate::net::{read_line_capped, write_line, LineRead, ServeAddr};
use crate::proto::{error_line, parse_job, result_line, MAX_RESPONSE_BYTES};

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The daemon to pull from (socket path or `host:port`).
    pub addr: ServeAddr,
    /// Name announced in the handshake (log cosmetics only).
    pub name: String,
    /// Bound-weave threads per simulation (outcome-neutral).
    pub point_threads: usize,
    /// Fault injection: drop the connection, without acknowledging,
    /// upon receiving the job after this many completed evaluations.
    pub die_after: Option<usize>,
    /// Narrate jobs to stderr.
    pub verbose: bool,
}

impl WorkerConfig {
    /// A quiet single-threaded worker.
    pub fn new(addr: ServeAddr) -> WorkerConfig {
        WorkerConfig {
            addr,
            name: format!("worker-{}", std::process::id()),
            point_threads: 1,
            die_after: None,
            verbose: false,
        }
    }
}

fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Runs the worker loop until the daemon hangs up (clean shutdown,
/// returning the number of evaluations served) or a fault occurs.
///
/// # Errors
///
/// Returns a message for transport failures, protocol violations, and
/// the injected [`WorkerConfig::die_after`] fault.
pub fn run_worker(cfg: &WorkerConfig) -> Result<usize, String> {
    let stream = connect_worker(&cfg.addr, &cfg.name)?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone {}: {e}", cfg.addr))?;
    let mut reader = BufReader::new(stream);

    // The daemon acknowledges the handshake before sending jobs.
    let ack = match read_line_capped(&mut reader, MAX_RESPONSE_BYTES) {
        Ok(LineRead::Line(l)) => l,
        _ => return Err(format!("{}: no handshake acknowledgement", cfg.addr)),
    };
    let ack = Json::parse(&ack).map_err(|e| format!("handshake parse: {e}"))?;
    if ack.get("ok").and_then(Json::as_bool) != Some(true) {
        let why = ack.get("error").and_then(Json::as_str).unwrap_or("refused");
        return Err(format!("{}: handshake rejected: {why}", cfg.addr));
    }

    let mut done = 0usize;
    loop {
        let line = match read_line_capped(&mut reader, MAX_RESPONSE_BYTES) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof) => return Ok(done), // daemon shut down
            Ok(LineRead::Oversized) => return Err("oversized job line".into()),
            Err(e) => return Err(format!("read: {e}")),
        };
        let doc = Json::parse(&line).map_err(|e| format!("job parse: {e}"))?;
        let job = parse_job(&doc)?;
        if cfg.die_after == Some(done) {
            // Injected crash: vanish mid-evaluation. The daemon never
            // sees an acknowledgement and re-issues the job.
            return Err(format!(
                "{}: injected fault — dropped connection holding job `{}` after {done} evaluations",
                cfg.name, job.id
            ));
        }
        if cfg.verbose {
            eprintln!("[{}] job {} ({})", cfg.name, job.id, job.seq);
        }
        let t0 = Instant::now();
        let mut local = LocalEvaluator {
            point_threads: cfg.point_threads.max(1),
            verbose: cfg.verbose,
            tag: cfg.name.clone(),
            ..LocalEvaluator::serial()
        };
        let request = EvalRequest {
            id: job.id.clone(),
            run: job.run.clone(),
        };
        let reply = match local.evaluate(vec![request]) {
            Ok(responses) if responses.len() == 1 => result_line(
                job.seq,
                &job.id,
                &job.run,
                &responses[0].report,
                elapsed_us(t0),
            ),
            Ok(_) => error_line("job", "evaluator answered the wrong batch size"),
            Err(e) => error_line("job", &e),
        };
        write_line(&mut writer, &reply).map_err(|e| format!("write: {e}"))?;
        done += 1;
    }
}

//! A deliberately minimal HTTP/1.1 front end (no external deps).
//!
//! One request per connection (`Connection: close`), JSON in and JSON
//! out, sharing the op dispatcher with the NDJSON socket:
//!
//! * `POST /eval`, `POST /sweep`, `POST /explore`, `POST /shutdown` —
//!   the request body is the op object (the `op` field is implied by
//!   the path),
//! * `GET /stats`, `GET /ping` — no body.
//!
//! Status mapping: 200 on success, 400 malformed, 404 unknown path,
//! 405 wrong method, 413 oversized body, 429 queue-full (with a
//! `Retry-After` header).

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use minnow_bench::json_read::Json;

use crate::daemon::Inner;
use crate::net::{read_line_capped, LineRead};
use crate::proto::{error_line, MAX_REQUEST_BYTES};

/// Largest request head (request line + headers) the server buffers.
const MAX_HEAD_LINE: u64 = 8 << 10;

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, status: u16, retry_after_ms: Option<u64>, body: &str) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    if let Some(ms) = retry_after_ms {
        head.push_str(&format!("Retry-After: {}\r\n", ms.div_ceil(1000).max(1)));
    }
    head.push_str("Connection: close\r\n\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Serves HTTP connections until shutdown.
pub(crate) fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    for conn in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let inner = Arc::clone(&inner);
        let _ = std::thread::Builder::new()
            .name("serve-http-conn".into())
            .spawn(move || handle_conn(inner, stream));
    }
}

fn handle_conn(inner: Arc<Inner>, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    let request_line = match read_line_capped(&mut reader, MAX_HEAD_LINE) {
        Ok(LineRead::Line(l)) => l,
        Ok(LineRead::Oversized) => {
            respond(&mut writer, 400, None, &error_line("?", "request line too long"));
            return;
        }
        _ => return,
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        respond(&mut writer, 400, None, &error_line("?", "malformed request line"));
        return;
    };
    let (method, path) = (method.to_string(), path.to_string());

    let mut content_length: u64 = 0;
    loop {
        match read_line_capped(&mut reader, MAX_HEAD_LINE) {
            Ok(LineRead::Line(l)) if l.is_empty() => break,
            Ok(LineRead::Line(l)) => {
                if let Some((name, value)) = l.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(u64::MAX);
                    }
                }
            }
            Ok(LineRead::Oversized) => {
                respond(&mut writer, 400, None, &error_line("?", "header too long"));
                return;
            }
            _ => return,
        }
    }

    let op = match (method.as_str(), path.as_str()) {
        ("POST", "/eval") => "eval",
        ("POST", "/sweep") => "sweep",
        ("POST", "/explore") => "explore",
        ("POST", "/shutdown") => "shutdown",
        ("GET", "/stats") => "stats",
        ("GET", "/ping") => "ping",
        ("GET", "/eval" | "/sweep" | "/explore" | "/shutdown")
        | ("POST", "/stats" | "/ping") => {
            respond(&mut writer, 405, None, &error_line("?", "method not allowed"));
            return;
        }
        _ => {
            respond(
                &mut writer,
                404,
                None,
                &error_line("?", &format!("no such endpoint `{method} {path}`")),
            );
            return;
        }
    };

    if content_length > MAX_REQUEST_BYTES {
        respond(
            &mut writer,
            413,
            None,
            &error_line(op, &format!("body exceeds {MAX_REQUEST_BYTES} bytes")),
        );
        return;
    }
    let mut body = vec![0u8; content_length as usize];
    if reader.read_exact(&mut body).is_err() {
        return;
    }
    let body = match String::from_utf8(body) {
        Ok(b) => b,
        Err(_) => {
            respond(&mut writer, 400, None, &error_line(op, "body is not UTF-8"));
            return;
        }
    };

    // The op is implied by the path; the body (when present) supplies
    // the arguments. `{"op":...}` in the body is overridden.
    let text = if body.trim().is_empty() { "{}" } else { &body };
    let mut doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            respond(&mut writer, 400, None, &error_line(op, &format!("parse: {e}")));
            return;
        }
    };
    match &mut doc {
        Json::Object(fields) => {
            fields.insert("op".into(), Json::String(op.into()));
        }
        _ => {
            respond(&mut writer, 400, None, &error_line(op, "body must be a JSON object"));
            return;
        }
    }

    let outcome = inner.handle_doc(&doc);
    respond(&mut writer, outcome.status, outcome.retry_after_ms, &outcome.line);
    if outcome.shutdown {
        inner.begin_shutdown();
    }
}

//! Client-side request/response helpers: one connection, one line out,
//! one line back. Used by `minnow-client`, the protocol tests, and any
//! script that prefers the socket over HTTP.

use std::io::BufReader;
use std::time::{Duration, Instant};

use minnow_bench::json_read::Json;

use crate::net::{read_line_capped, write_line, LineRead, ServeAddr, Stream};
use crate::proto::MAX_RESPONSE_BYTES;

/// A persistent client connection (several requests, one stream).
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns a message naming the address on connect failure.
    pub fn connect(addr: &ServeAddr) -> Result<Client, String> {
        let stream = addr
            .connect()
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("clone {addr}: {e}"))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the one-line response.
    ///
    /// # Errors
    ///
    /// Returns a message for transport failures, an oversized response,
    /// or an unparsable response line.
    pub fn request(&mut self, line: &str) -> Result<Json, String> {
        write_line(&mut self.writer, line).map_err(|e| format!("write: {e}"))?;
        match read_line_capped(&mut self.reader, MAX_RESPONSE_BYTES) {
            Ok(LineRead::Line(l)) => {
                Json::parse(&l).map_err(|e| format!("response parse: {e}"))
            }
            Ok(LineRead::Eof) => Err("daemon closed the connection without answering".into()),
            Ok(LineRead::Oversized) => {
                Err(format!("response exceeds {MAX_RESPONSE_BYTES} bytes"))
            }
            Err(e) => Err(format!("read: {e}")),
        }
    }
}

/// One-shot request on a fresh connection.
///
/// # Errors
///
/// See [`Client::request`].
pub fn request(addr: &ServeAddr, line: &str) -> Result<Json, String> {
    Client::connect(addr)?.request(line)
}

/// One-shot request that also checks the daemon's `ok` flag, surfacing
/// its `error` text on refusal.
///
/// # Errors
///
/// Transport failures, plus any daemon-side `{"ok":false}` response.
pub fn request_ok(addr: &ServeAddr, line: &str) -> Result<Json, String> {
    let doc = request(addr, line)?;
    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(doc)
    } else {
        let why = doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("daemon refused the request");
        Err(why.to_string())
    }
}

/// Polls `ping` until the daemon answers or the timeout elapses —
/// startup synchronization for scripts and CI.
///
/// # Errors
///
/// Returns the last connect/ping failure when time runs out.
pub fn wait_ready(addr: &ServeAddr, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let last = match request_ok(addr, "{\"op\":\"ping\"}") {
            Ok(_) => return Ok(()),
            Err(e) => e,
        };
        if Instant::now() >= deadline {
            return Err(format!("daemon at {addr} not ready: {last}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_ready_times_out_against_nothing() {
        let addr = ServeAddr::Unix(std::env::temp_dir().join(format!(
            "minnow-serve-nothing-{}.sock",
            std::process::id()
        )));
        let err = wait_ready(&addr, Duration::from_millis(60)).unwrap_err();
        assert!(err.contains("not ready"), "{err}");
    }
}

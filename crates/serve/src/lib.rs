//! `minnow-serve` — a resident evaluation daemon for the Minnow
//! simulator.
//!
//! Sweeps and design-space searches spend most of their wall-clock
//! re-simulating points another invocation already ran, and pay a full
//! process start (graph generation, input ingestion) per invocation.
//! This crate keeps one process resident instead: the daemon holds the
//! hot input graphs in memory (the process-wide caches in
//! `minnow_algos::suite` do the heavy lifting), answers evaluation,
//! sweep, and exploration requests over newline-delimited JSON on a
//! Unix domain socket — plus a minimal hand-rolled HTTP/1.1 listener —
//! and memoizes every result in a content-addressed [`store`] keyed by
//! *(space identity, point fingerprint, seed, scale, input digest)*.
//! A repeated evaluation is answered from the store in microseconds
//! with **zero** simulator invocations.
//!
//! Execution hides behind `minnow_bench::eval::Evaluator`: the daemon's
//! own implementation first consults the store, then pushes misses
//! through a bounded work [`queue`] with admission control (requests
//! are rejected with a retry-after hint when the queue is full) where
//! local executor threads and remote [`worker`] processes compete for
//! jobs. Workers speak the journal schema — each result line is a
//! `minnow-explore-journal/v1` record with the full wire report
//! attached — and a worker that dies mid-evaluation simply has its
//! unacknowledged job re-issued, so a successive-halving search
//! finishes with a **byte-identical** frontier whether it was served
//! locally, from the store, or by N workers with one killed midway.
//!
//! Module map:
//!
//! * [`stats`] — daemon-wide atomic counters (`serve_stats`),
//! * [`store`] — size-capped content-addressed result store with LRU
//!   eviction and append-only persistence,
//! * [`queue`] — bounded single-flight work queue,
//! * [`proto`] — the `minnow-serve-proto/v1` wire schema,
//! * [`net`] — UDS/TCP stream plumbing and capped line I/O,
//! * [`http`] — the hand-rolled HTTP/1.1 front end,
//! * [`daemon`] — the resident daemon itself,
//! * [`worker`] — the pull-mode remote worker loop,
//! * [`client`] — request/response helpers for clients and tests.

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod http;
pub mod net;
pub mod proto;
pub mod queue;
pub mod stats;
pub mod store;
pub mod worker;

pub use daemon::{journal_filename, Daemon, ServeConfig};
pub use net::ServeAddr;
pub use stats::ServeStats;
pub use store::{store_key, Store};
pub use worker::{run_worker, WorkerConfig};

//! The `minnow-serve-proto/v1` wire schema.
//!
//! Every message is one line of JSON. Clients open a connection to the
//! daemon and send request objects (`{"op":...}`); the daemon answers
//! each with exactly one response object (`{"ok":true,...}` or
//! `{"ok":false,"error":...}`). A connection that sends
//! `{"op":"worker-hello"}` flips into the *worker protocol*: the
//! direction reverses and the daemon streams job lines down while the
//! worker streams result lines up.
//!
//! Worker result lines are deliberately **journal-schema compatible**:
//! the flat fields are exactly a `minnow-explore-journal/v1`
//! [`EvalRecord`], with the full wire [`EvalReport`] nested under
//! `report`. Anything that can read an exploration journal can read a
//! worker's result stream.

use minnow_bench::eval::{run_from_json, run_to_json, EvalReport};
use minnow_bench::json::JsonObject;
use minnow_bench::json_read::Json;
use minnow_bench::runner::BenchRun;
use minnow_explore::EvalRecord;

/// Protocol identifier, echoed by `ping`, `stats`, and worker
/// handshakes.
pub const PROTO_SCHEMA: &str = "minnow-serve-proto/v1";

/// Largest request line the daemon will buffer (1 MiB — the biggest
/// legitimate request is a single run object, well under 4 KiB).
pub const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// Largest response line a client will buffer (a served sweep returns
/// whole artifacts inline).
pub const MAX_RESPONSE_BYTES: u64 = 64 << 20;

/// The ops a client may open with.
pub const OPS: [&str; 6] = ["ping", "eval", "sweep", "explore", "stats", "shutdown"];

/// A uniform error response line.
pub fn error_line(op: &str, error: &str) -> String {
    JsonObject::new()
        .bool("ok", false)
        .str("op", op)
        .str("error", error)
        .finish()
}

/// The rung index encoded in an exploration request id (`<id>@r<k>`),
/// or 0: the field worker result lines report for journal
/// compatibility.
pub fn rung_of(id: &str) -> usize {
    id.rsplit_once("@r")
        .and_then(|(_, k)| k.parse().ok())
        .unwrap_or(0)
}

/// One job pushed to a worker.
#[derive(Debug, Clone)]
pub struct JobMsg {
    /// Acknowledgement key (the daemon queue's sequence number).
    pub seq: u64,
    /// The request's point id.
    pub id: String,
    /// The configuration to simulate.
    pub run: BenchRun,
}

/// Renders a job line for the worker stream.
pub fn job_line(seq: u64, id: &str, run: &BenchRun) -> String {
    JsonObject::new()
        .str("op", "job")
        .u64("seq", seq)
        .str("id", id)
        .raw("run", &run_to_json(run))
        .finish()
}

/// Parses a job line.
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn parse_job(doc: &Json) -> Result<JobMsg, String> {
    if doc.str_field("op")? != "job" {
        return Err("not a job line".into());
    }
    Ok(JobMsg {
        seq: doc.u64_field("seq")?,
        id: doc.str_field("id")?.to_string(),
        run: run_from_json(doc.get("run").ok_or("missing `run`")?)?,
    })
}

/// One result streamed back by a worker.
#[derive(Debug, Clone)]
pub struct ResultMsg {
    /// Echoed acknowledgement key.
    pub seq: u64,
    /// Echoed point id.
    pub id: String,
    /// The deterministic outcome.
    pub report: EvalReport,
    /// Worker-side simulation wall microseconds.
    pub wall_us: u64,
}

/// Renders a worker result line: a `minnow-explore-journal/v1` record
/// (seq = the job's ack key) with the full report nested under
/// `report`.
pub fn result_line(seq: u64, id: &str, run: &BenchRun, report: &EvalReport, wall_us: u64) -> String {
    JsonObject::new()
        .u64("seq", seq)
        .str("id", id)
        .u64("rung", rung_of(id) as u64)
        .f64("scale", run.scale)
        .u64("seed", run.seed)
        .u64("makespan", report.makespan)
        .u64("tasks", report.tasks)
        .u64("instructions", report.instructions)
        .u64("l2_misses", report.l2_misses)
        .u64("mem_accesses", report.mem_accesses)
        .bool("timed_out", report.timed_out)
        .u64("wall_us", wall_us)
        .raw("report", &report.to_json())
        .finish()
}

/// Parses a worker result line, validating the journal-compatible flat
/// record along the way.
///
/// # Errors
///
/// Returns a message naming the malformed field, or a cross-check
/// failure between the flat record and the nested report.
pub fn parse_result(doc: &Json) -> Result<ResultMsg, String> {
    // The flat fields must parse as a journal record — that *is* the
    // compatibility contract.
    let record = EvalRecord::from_json(doc)?;
    let report = EvalReport::from_json(doc.get("report").ok_or("missing `report`")?)?;
    if record.makespan != report.makespan || record.tasks != report.tasks {
        return Err(format!(
            "result line disagrees with its nested report \
             (makespan {} vs {}, tasks {} vs {})",
            record.makespan, report.makespan, record.tasks, report.tasks
        ));
    }
    Ok(ResultMsg {
        seq: record.seq,
        id: record.id,
        report,
        wall_us: record.wall_us,
    })
}

/// Renders the worker handshake line.
pub fn worker_hello(name: &str) -> String {
    JsonObject::new()
        .str("op", "worker-hello")
        .str("proto", PROTO_SCHEMA)
        .str("name", name)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_algos::WorkloadKind;
    use minnow_bench::sweep::derive_seed;

    #[test]
    fn job_lines_round_trip_exact_seeds() {
        let mut run = BenchRun::minnow_wdp(WorkloadKind::Sssp, 4);
        run.seed = derive_seed(42, "SSSP"); // full 64-bit value
        run.scale = 0.1;
        let line = job_line(9, "credits/SSSP/c32@r1", &run);
        let doc = Json::parse(&line).unwrap();
        let job = parse_job(&doc).unwrap();
        assert_eq!(job.seq, 9);
        assert_eq!(job.id, "credits/SSSP/c32@r1");
        assert_eq!(job.run.seed, run.seed, "seed survives the wire exactly");
        assert_eq!(run_to_json(&job.run), run_to_json(&run));
    }

    #[test]
    fn result_lines_are_journal_records_with_a_report_attached() {
        let mut run = BenchRun::minnow(WorkloadKind::Bfs, 2);
        run.scale = 0.25;
        run.seed = derive_seed(7, "BFS");
        let report = EvalReport {
            makespan: 1234,
            tasks: 56,
            instructions: 789,
            l2_misses: 10,
            mem_accesses: 20,
            ..EvalReport::default()
        };
        let line = result_line(3, "fig16/BFS/minnow@r2", &run, &report, 4242);
        let doc = Json::parse(&line).unwrap();

        // The compatibility contract: the flat fields parse as a
        // journal EvalRecord with the id's rung index.
        let record = EvalRecord::from_json(&doc).unwrap();
        assert_eq!(record.seq, 3);
        assert_eq!(record.rung, 2);
        assert_eq!(record.seed, run.seed);
        assert_eq!(record.makespan, 1234);
        assert_eq!(record.wall_us, 4242);

        let msg = parse_result(&doc).unwrap();
        assert_eq!(msg.report, report);

        // Tampering with the nested report is caught.
        let tampered = line.replace("\"makespan\":1234,\"tasks\":56,\"instructions\":789,\"timed_out\":false", "\"makespan\":1,\"tasks\":56,\"instructions\":789,\"timed_out\":false");
        assert_ne!(tampered, line, "tamper target found");
        let doc = Json::parse(&tampered).unwrap();
        assert!(parse_result(&doc).is_err());
    }

    #[test]
    fn rung_suffix_parsing_tolerates_plain_ids() {
        assert_eq!(rung_of("fig16/BFS/minnow@r2"), 2);
        assert_eq!(rung_of("plain-id"), 0);
        assert_eq!(rung_of("tricky@rat"), 0);
    }
}

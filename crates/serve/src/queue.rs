//! The bounded work queue between request handlers and executors.
//!
//! Handlers [`submit`](JobQueue::submit) evaluations that missed the
//! store; local executor threads and remote-worker feeders pull them
//! with [`next`](JobQueue::next) and publish outcomes with
//! [`complete`](JobQueue::complete). Three behaviours live here:
//!
//! * **Single-flight.** Concurrent submissions with the same store key
//!   coalesce onto one job: the duplicates just attach receivers, so N
//!   identical requests cost exactly one simulation.
//! * **Admission control.** The queue holds at most `cap` open jobs.
//!   External submissions are rejected (with the pending depth, so the
//!   caller can compute a retry-after hint); internal batch submissions
//!   block until an executor frees a slot.
//! * **Re-issue.** A feeder whose worker connection dies calls
//!   [`requeue`](JobQueue::requeue); the job goes back to the head of
//!   the ready list and the next puller — another worker or a local
//!   executor — re-runs it. Determinism makes the re-run
//!   indistinguishable from a first run.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

use minnow_bench::eval::EvalRequest;

use crate::stats::ServeStats;
use crate::store::StoredEval;

/// A completed evaluation (or the error that prevented it).
pub type EvalOutcome = Result<StoredEval, String>;

/// One job pulled from the queue.
#[derive(Debug, Clone)]
pub struct QueueJob {
    /// Queue-wide sequence number (acknowledgement key).
    pub seq: u64,
    /// The store key the result will be memoized under.
    pub key: String,
    /// The evaluation to run.
    pub request: EvalRequest,
}

/// Why a submission was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the queue is at capacity. Carries the number
    /// of open jobs, for retry-after hints.
    Full(usize),
    /// The daemon is shutting down.
    Shutdown,
}

#[derive(Debug)]
struct Job {
    key: String,
    request: EvalRequest,
    waiters: Vec<Sender<EvalOutcome>>,
}

#[derive(Debug, Default)]
struct State {
    next_seq: u64,
    /// Jobs awaiting a puller, oldest first (requeues jump the line).
    ready: VecDeque<u64>,
    /// Every open job (ready or running), by sequence number.
    jobs: HashMap<u64, Job>,
    /// Single-flight index: store key of every open job.
    by_key: HashMap<String, u64>,
    shutdown: bool,
}

/// The bounded single-flight queue. See the module docs.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<State>,
    /// Signalled when `ready` gains a job or shutdown begins.
    ready_cv: Condvar,
    /// Signalled when an open-job slot frees up.
    space_cv: Condvar,
    cap: usize,
    stats: Arc<ServeStats>,
}

impl JobQueue {
    /// A queue admitting at most `cap` open jobs (floor 1).
    pub fn new(cap: usize, stats: Arc<ServeStats>) -> JobQueue {
        JobQueue {
            state: Mutex::new(State::default()),
            ready_cv: Condvar::new(),
            space_cv: Condvar::new(),
            cap: cap.max(1),
            stats,
        }
    }

    /// Submits an evaluation, returning the receiver its outcome will
    /// arrive on. A submission whose key is already in flight attaches
    /// to the existing job regardless of capacity. Otherwise, when the
    /// queue is full, `block` selects between waiting for a slot
    /// (internal batches) and [`SubmitError::Full`] (external
    /// requests).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] (non-blocking, at capacity) or
    /// [`SubmitError::Shutdown`].
    pub fn submit(
        &self,
        request: EvalRequest,
        key: String,
        block: bool,
    ) -> Result<Receiver<EvalOutcome>, SubmitError> {
        let (tx, rx) = channel();
        let mut state = self.state.lock().unwrap();
        loop {
            if state.shutdown {
                return Err(SubmitError::Shutdown);
            }
            if let Some(seq) = state.by_key.get(&key).copied() {
                let job = state.jobs.get_mut(&seq).expect("indexed job exists");
                job.waiters.push(tx);
                ServeStats::bump(&self.stats.coalesced);
                return Ok(rx);
            }
            if state.jobs.len() < self.cap {
                break;
            }
            if !block {
                ServeStats::bump(&self.stats.rejected);
                return Err(SubmitError::Full(state.jobs.len()));
            }
            state = self.space_cv.wait(state).unwrap();
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.by_key.insert(key.clone(), seq);
        state.jobs.insert(
            seq,
            Job {
                key,
                request,
                waiters: vec![tx],
            },
        );
        state.ready.push_back(seq);
        ServeStats::bump(&self.stats.inflight);
        self.ready_cv.notify_one();
        Ok(rx)
    }

    /// Blocks until a job is ready (returning it) or the queue shuts
    /// down (returning `None`). The job stays open — and keeps its
    /// queue slot — until [`complete`](JobQueue::complete)d or
    /// [`requeue`](JobQueue::requeue)d.
    pub fn next(&self) -> Option<QueueJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(seq) = state.ready.pop_front() {
                let job = state.jobs.get(&seq).expect("ready job exists");
                return Some(QueueJob {
                    seq,
                    key: job.key.clone(),
                    request: job.request.clone(),
                });
            }
            if state.shutdown {
                return None;
            }
            state = self.ready_cv.wait(state).unwrap();
        }
    }

    /// Returns a pulled-but-unacknowledged job to the head of the ready
    /// list (worker connection died). A job that was completed in the
    /// meantime is dropped silently.
    pub fn requeue(&self, job: QueueJob) {
        let mut state = self.state.lock().unwrap();
        if state.jobs.contains_key(&job.seq) && !state.ready.contains(&job.seq) {
            state.ready.push_front(job.seq);
            ServeStats::bump(&self.stats.requeues);
            self.ready_cv.notify_one();
        }
    }

    /// Publishes a job's outcome to every attached waiter and frees its
    /// slot.
    pub fn complete(&self, seq: u64, outcome: &EvalOutcome) {
        let mut state = self.state.lock().unwrap();
        let Some(job) = state.jobs.remove(&seq) else {
            return; // duplicate ack (e.g. requeued job finished twice)
        };
        if state.by_key.get(&job.key) == Some(&seq) {
            state.by_key.remove(&job.key);
        }
        ServeStats::drop_gauge(&self.stats.inflight);
        for waiter in job.waiters {
            let _ = waiter.send(outcome.clone());
        }
        self.space_cv.notify_all();
    }

    /// Begins shutdown: fails every open job's waiters and wakes every
    /// blocked `next`/`submit`.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().unwrap();
        state.shutdown = true;
        state.ready.clear();
        state.by_key.clear();
        for (_, job) in state.jobs.drain() {
            ServeStats::drop_gauge(&self.stats.inflight);
            for waiter in job.waiters {
                let _ = waiter.send(Err("daemon shutting down".into()));
            }
        }
        self.ready_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Jobs awaiting a puller.
    pub fn pending(&self) -> usize {
        self.state.lock().unwrap().ready.len()
    }

    /// Open jobs (ready or running) — the quantity admission control
    /// caps.
    pub fn open_jobs(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_algos::WorkloadKind;
    use minnow_bench::eval::EvalReport;
    use minnow_bench::runner::BenchRun;
    use std::sync::atomic::Ordering;

    fn request(id: &str) -> EvalRequest {
        EvalRequest {
            id: id.into(),
            run: BenchRun::minnow(WorkloadKind::Bfs, 2),
        }
    }

    fn outcome(makespan: u64) -> EvalOutcome {
        Ok(StoredEval {
            report: EvalReport {
                makespan,
                ..EvalReport::default()
            },
            sim_wall_us: 1,
        })
    }

    #[test]
    fn duplicate_keys_coalesce_onto_one_job() {
        let stats = Arc::new(ServeStats::new());
        let q = JobQueue::new(8, Arc::clone(&stats));
        let rx1 = q.submit(request("a"), "k".into(), false).unwrap();
        let rx2 = q.submit(request("a'"), "k".into(), false).unwrap();
        assert_eq!(q.open_jobs(), 1, "second submit attached, not enqueued");
        assert_eq!(stats.coalesced.load(Ordering::Relaxed), 1);
        let job = q.next().unwrap();
        assert_eq!(job.key, "k");
        assert!(q.next_would_block());
        q.complete(job.seq, &outcome(42));
        assert_eq!(rx1.recv().unwrap().unwrap().report.makespan, 42);
        assert_eq!(rx2.recv().unwrap().unwrap().report.makespan, 42);
        assert_eq!(q.open_jobs(), 0);
        assert_eq!(stats.inflight.load(Ordering::Relaxed), 0);
        // The key is free again: a later submit is a fresh job.
        let _rx3 = q.submit(request("a"), "k".into(), false).unwrap();
        assert_eq!(q.open_jobs(), 1);
        assert_eq!(stats.coalesced.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn admission_control_rejects_nonblocking_and_unblocks_blocking() {
        let stats = Arc::new(ServeStats::new());
        let q = Arc::new(JobQueue::new(1, Arc::clone(&stats)));
        let _rx_a = q.submit(request("a"), "ka".into(), false).unwrap();
        let err = q.submit(request("b"), "kb".into(), false).unwrap_err();
        assert_eq!(err, SubmitError::Full(1));
        assert_eq!(stats.rejected.load(Ordering::Relaxed), 1);

        // A blocking submit parks until the slot frees.
        let q2 = Arc::clone(&q);
        let blocked = std::thread::spawn(move || {
            let rx = q2.submit(request("b"), "kb".into(), true).unwrap();
            rx.recv().unwrap().unwrap().report.makespan
        });
        let job_a = q.next().unwrap();
        q.complete(job_a.seq, &outcome(1));
        let job_b = q.next().unwrap();
        assert_eq!(job_b.key, "kb");
        q.complete(job_b.seq, &outcome(2));
        assert_eq!(blocked.join().unwrap(), 2);
    }

    #[test]
    fn requeued_jobs_are_reissued_then_single_completion_wins() {
        let stats = Arc::new(ServeStats::new());
        let q = JobQueue::new(4, Arc::clone(&stats));
        let rx = q.submit(request("a"), "k".into(), false).unwrap();
        let first_pull = q.next().unwrap();
        q.requeue(first_pull.clone());
        assert_eq!(stats.requeues.load(Ordering::Relaxed), 1);
        let second_pull = q.next().unwrap();
        assert_eq!(second_pull.seq, first_pull.seq, "same job, re-issued");
        q.complete(second_pull.seq, &outcome(9));
        // A late duplicate ack (the dead worker's result arriving after
        // all) is ignored.
        q.complete(first_pull.seq, &outcome(10));
        assert_eq!(rx.recv().unwrap().unwrap().report.makespan, 9);
        assert!(rx.recv().is_err(), "exactly one outcome is delivered");
        // Requeue of a completed job is dropped.
        q.requeue(first_pull);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn shutdown_fails_waiters_and_wakes_pullers() {
        let stats = Arc::new(ServeStats::new());
        let q = Arc::new(JobQueue::new(4, stats));
        let rx = q.submit(request("a"), "k".into(), false).unwrap();
        let pulled = q.next().unwrap(); // drain the ready list first
        let q2 = Arc::clone(&q);
        let puller = std::thread::spawn(move || q2.next());
        q.shutdown();
        let _ = pulled;
        assert!(rx.recv().unwrap().is_err());
        // The parked puller wakes with None once the ready list drains.
        assert!(puller.join().unwrap().is_none());
        assert_eq!(
            q.submit(request("b"), "k2".into(), true).unwrap_err(),
            SubmitError::Shutdown
        );
    }

    impl JobQueue {
        /// Test-only: `true` when no job is ready right now.
        fn next_would_block(&self) -> bool {
            self.state.lock().unwrap().ready.is_empty()
        }
    }
}

//! The content-addressed result store.
//!
//! Every completed evaluation is memoized under a key that names
//! everything the simulated outcome depends on:
//!
//! ```text
//! {namespace}|{run wire form}|in:{input digest}
//! ```
//!
//! * **namespace** — the space identity the request arrived under
//!   (`adhoc` for single evaluations, `sweep/<name>` for named sweeps,
//!   `space/<name>` for explorations). The ISSUE's key tuple — space
//!   identity, point fingerprint, seed, scale, input digest — is all
//!   here: seed and scale live inside the wire form.
//! * **run wire form** — `minnow_bench::eval::run_to_json`, the
//!   canonical serialization of exactly the simulation-relevant fields
//!   (and none of the outcome-neutral host-threading knobs), so two
//!   requests that must simulate identically share a key.
//! * **input digest** — FNV-1a/64 over the input file's bytes for
//!   external graphs (`gen` for generated inputs), so editing a graph
//!   on disk invalidates its cached results even at the same path.
//!
//! The store is size-capped with LRU eviction and persists itself as
//! an append-only JSONL file (`minnow-serve-store/v1`): one line per
//! insert, replayed in order on open (later lines win), compacted when
//! the file accumulates more dead lines than live entries. Eviction is
//! memory-only — an evicted entry whose line still sits in the file is
//! resurrected on the next open, which is harmless for a cache (the cap
//! is re-applied in replay order).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::SystemTime;

use minnow_bench::eval::{run_to_json, EvalReport};
use minnow_bench::json::JsonObject;
use minnow_bench::json_read::Json;
use minnow_bench::runner::BenchRun;

use crate::stats::ServeStats;

/// Schema identifier stamped on the persisted store's header line.
pub const STORE_SCHEMA: &str = "minnow-serve-store/v1";

/// FNV-1a over a byte string, the repo's stock 64-bit content hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-path digest memo: (file length, mtime) stamp plus the hex digest
/// computed when that stamp was last seen.
type DigestMemo = HashMap<PathBuf, (u64, Option<SystemTime>, String)>;

fn digest_cache() -> &'static Mutex<DigestMemo> {
    static CACHE: OnceLock<Mutex<DigestMemo>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The FNV-1a/64 digest of an input file's bytes, hex-encoded. Cached
/// per path and invalidated on length/mtime change, so a daemon serving
/// thousands of evaluations against one graph hashes it once.
///
/// # Errors
///
/// Returns a message naming the unreadable path.
pub fn input_digest(path: &Path) -> Result<String, String> {
    let meta =
        std::fs::metadata(path).map_err(|e| format!("input {}: {e}", path.display()))?;
    let stamp = (meta.len(), meta.modified().ok());
    if let Some((len, mtime, digest)) = digest_cache().lock().unwrap().get(path) {
        if (*len, *mtime) == stamp {
            return Ok(digest.clone());
        }
    }
    let bytes = std::fs::read(path).map_err(|e| format!("input {}: {e}", path.display()))?;
    let digest = format!("{:016x}", fnv64(&bytes));
    digest_cache()
        .lock()
        .unwrap()
        .insert(path.to_path_buf(), (stamp.0, stamp.1, digest.clone()));
    Ok(digest)
}

/// The content address of one evaluation: namespace, canonical run wire
/// form, input digest.
///
/// # Errors
///
/// Returns a message when the run names an unreadable input file.
pub fn store_key(namespace: &str, run: &BenchRun) -> Result<String, String> {
    let digest = match &run.input {
        Some(spec) => input_digest(&spec.path)?,
        None => "gen".into(),
    };
    Ok(format!("{namespace}|{}|in:{digest}", run_to_json(run)))
}

/// One memoized evaluation: the deterministic report plus the original
/// simulation's wall time (informational; repeat answers echo it).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEval {
    /// The deterministic simulation outcome.
    pub report: EvalReport,
    /// Wall microseconds the original simulation took.
    pub sim_wall_us: u64,
}

#[derive(Debug)]
struct Entry {
    eval: StoredEval,
    /// Store-local LRU clock value at last touch.
    last_used: u64,
    /// Accounted size: the persisted line's length.
    bytes: u64,
}

#[derive(Debug)]
struct Inner {
    entries: HashMap<String, Entry>,
    bytes: u64,
    tick: u64,
    file: Option<File>,
    /// Lines appended to the file since it was last compacted (live or
    /// superseded); drives the compaction heuristic on open.
    file_lines: u64,
}

/// The size-capped, persistent, content-addressed store.
#[derive(Debug)]
pub struct Store {
    inner: Mutex<Inner>,
    path: Option<PathBuf>,
    cap_bytes: u64,
    stats: Arc<ServeStats>,
}

fn persist_line(key: &str, eval: &StoredEval) -> String {
    JsonObject::new()
        .str("key", key)
        .u64("sim_wall_us", eval.sim_wall_us)
        .raw("report", &eval.report.to_json())
        .finish()
}

impl Store {
    /// Opens a store, replaying `path` when given (a missing file is an
    /// empty store). Entries beyond `cap_bytes` are LRU-evicted; the
    /// cap is a floor of one entry so a single oversized result still
    /// caches.
    ///
    /// # Errors
    ///
    /// Returns a message for an unreadable or schema-incompatible file.
    pub fn open(
        path: Option<PathBuf>,
        cap_bytes: u64,
        stats: Arc<ServeStats>,
    ) -> Result<Store, String> {
        let mut inner = Inner {
            entries: HashMap::new(),
            bytes: 0,
            tick: 0,
            file: None,
            file_lines: 0,
        };
        let mut skipped = 0usize;
        if let Some(p) = &path {
            match std::fs::read_to_string(p) {
                Ok(text) => {
                    for line in text.lines() {
                        if line.trim().is_empty() {
                            continue;
                        }
                        inner.file_lines += 1;
                        match Json::parse(line) {
                            Ok(doc) if doc.get("schema").is_some() => {
                                let schema = doc.str_field("schema").unwrap_or("?");
                                if schema != STORE_SCHEMA {
                                    return Err(format!(
                                        "store {}: schema `{schema}`, expected `{STORE_SCHEMA}`",
                                        p.display()
                                    ));
                                }
                            }
                            Ok(doc) => match parse_entry(&doc) {
                                Ok((key, eval)) => {
                                    insert_unlocked(&mut inner, &key, &eval, cap_bytes, None)
                                }
                                Err(_) => skipped += 1,
                            },
                            // A torn final line (daemon killed mid-append)
                            // or isolated corruption: skip, keep serving.
                            Err(_) => skipped += 1,
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("store {}: {e}", p.display())),
            }
            if skipped > 0 {
                eprintln!(
                    "minnow-serve: store {}: skipped {skipped} unparsable line(s)",
                    p.display()
                );
            }
            // Compact when the file carries more dead weight than live
            // entries (evictions and superseding inserts accumulate).
            let live = inner.entries.len() as u64;
            if inner.file_lines > live.saturating_mul(2) + 16 {
                compact(p, &inner)?;
                inner.file_lines = live;
            }
            if let Some(parent) = p.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("store {}: {e}", p.display()))?;
                }
            }
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .map_err(|e| format!("store {}: {e}", p.display()))?;
            if inner.file_lines == 0 {
                let header = JsonObject::new().str("schema", STORE_SCHEMA).finish();
                writeln!(file, "{header}").map_err(|e| format!("store {}: {e}", p.display()))?;
                inner.file_lines = 1;
            }
            inner.file = Some(file);
        }
        Ok(Store {
            inner: Mutex::new(inner),
            path,
            cap_bytes: cap_bytes.max(1),
            stats,
        })
    }

    /// Looks up a key, bumping the hit/miss counters and LRU clock.
    pub fn get(&self, key: &str) -> Option<StoredEval> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                ServeStats::bump(&self.stats.hits);
                Some(entry.eval.clone())
            }
            None => {
                ServeStats::bump(&self.stats.misses);
                None
            }
        }
    }

    /// Memoizes an evaluation: appends it to the persistence file
    /// (fsynced — results are worth milliseconds each) and LRU-evicts
    /// past the cap. Re-inserting a live key supersedes it.
    pub fn insert(&self, key: &str, eval: &StoredEval) {
        let mut inner = self.inner.lock().unwrap();
        insert_unlocked(&mut inner, key, eval, self.cap_bytes, Some(&self.stats));
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted bytes of the live entries.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap().bytes
    }

    /// The configured size cap in bytes.
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// The persistence path, when the store is durable.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

fn parse_entry(doc: &Json) -> Result<(String, StoredEval), String> {
    let key = doc.str_field("key")?.to_string();
    let report_doc = doc.get("report").ok_or("missing `report`")?;
    let report = EvalReport::from_json(report_doc)?;
    let sim_wall_us = doc.u64_field("sim_wall_us")?;
    Ok((
        key,
        StoredEval {
            report,
            sim_wall_us,
        },
    ))
}

fn insert_unlocked(
    inner: &mut Inner,
    key: &str,
    eval: &StoredEval,
    cap_bytes: u64,
    stats: Option<&ServeStats>,
) {
    let line = persist_line(key, eval);
    let cost = line.len() as u64 + 1;
    if let Some(file) = inner.file.as_mut() {
        // Persistence is best-effort: a full disk degrades the store to
        // memory-only rather than failing the evaluation that produced
        // the result.
        if writeln!(file, "{line}").is_ok() {
            let _ = file.sync_data();
            inner.file_lines += 1;
        }
    }
    inner.tick += 1;
    let tick = inner.tick;
    if let Some(old) = inner.entries.remove(key) {
        inner.bytes -= old.bytes;
    }
    inner.entries.insert(
        key.to_string(),
        Entry {
            eval: eval.clone(),
            last_used: tick,
            bytes: cost,
        },
    );
    inner.bytes += cost;
    while inner.bytes > cap_bytes && inner.entries.len() > 1 {
        let victim = inner
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
            .expect("non-empty");
        if let Some(old) = inner.entries.remove(&victim) {
            inner.bytes -= old.bytes;
        }
        if let Some(stats) = stats {
            ServeStats::bump(&stats.evictions);
        }
    }
}

fn compact(path: &Path, inner: &Inner) -> Result<(), String> {
    let mut doc = String::new();
    doc.push_str(&JsonObject::new().str("schema", STORE_SCHEMA).finish());
    doc.push('\n');
    // Rewrite live entries oldest-touch first so a replay reconstructs
    // the same LRU order.
    let mut live: Vec<(&String, &Entry)> = inner.entries.iter().collect();
    live.sort_by_key(|(_, e)| e.last_used);
    for (key, entry) in live {
        doc.push_str(&persist_line(key, &entry.eval));
        doc.push('\n');
    }
    let tmp = path.with_extension("compact.tmp");
    std::fs::write(&tmp, &doc).map_err(|e| format!("store {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("store {}: {e}", path.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_algos::WorkloadKind;

    fn report(makespan: u64) -> StoredEval {
        StoredEval {
            report: EvalReport {
                makespan,
                tasks: 1,
                ..EvalReport::default()
            },
            sim_wall_us: 7,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("minnow-store-{}-{name}", std::process::id()))
    }

    #[test]
    fn keys_separate_namespaces_and_simulation_relevant_fields_only() {
        let mut a = BenchRun::minnow(WorkloadKind::Bfs, 2);
        let mut b = a.clone();
        b.point_threads = 8; // host-threading knob: outcome-neutral
        assert_eq!(
            store_key("adhoc", &a).unwrap(),
            store_key("adhoc", &b).unwrap()
        );
        assert_ne!(
            store_key("adhoc", &a).unwrap(),
            store_key("sweep/smoke", &a).unwrap()
        );
        a.seed = 99;
        assert_ne!(
            store_key("adhoc", &a).unwrap(),
            store_key("adhoc", &b).unwrap(),
            "seed is part of the address"
        );
    }

    #[test]
    fn input_digest_tracks_file_content() {
        let p = tmp("digest.bin");
        std::fs::write(&p, b"hello").unwrap();
        let d1 = input_digest(&p).unwrap();
        assert_eq!(d1, input_digest(&p).unwrap(), "cached digest is stable");
        std::fs::write(&p, b"hello, world, now longer").unwrap();
        assert_ne!(d1, input_digest(&p).unwrap());
        std::fs::remove_file(&p).unwrap();
        assert!(input_digest(&p).is_err());
    }

    #[test]
    fn lru_eviction_honors_the_cap_and_touch_order() {
        let stats = Arc::new(ServeStats::new());
        // Cap sized for roughly two entries.
        let line = persist_line("k0", &report(1)).len() as u64 + 1;
        let store = Store::open(None, line * 2 + 2, Arc::clone(&stats)).unwrap();
        store.insert("k0", &report(10));
        store.insert("k1", &report(11));
        assert_eq!(store.len(), 2);
        // Touch k0 so k1 is the LRU victim.
        assert!(store.get("k0").is_some());
        store.insert("k2", &report(12));
        assert_eq!(store.len(), 2);
        assert!(store.get("k1").is_none(), "k1 was least-recently used");
        assert!(store.get("k0").is_some());
        assert!(store.get("k2").is_some());
        assert_eq!(stats.evictions.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert!(store.bytes() <= store.cap_bytes());
    }

    #[test]
    fn persistence_replays_across_opens_and_supersedes_in_order() {
        let p = tmp("persist.jsonl");
        let _ = std::fs::remove_file(&p);
        let stats = Arc::new(ServeStats::new());
        {
            let store = Store::open(Some(p.clone()), u64::MAX, Arc::clone(&stats)).unwrap();
            store.insert("a", &report(1));
            store.insert("b", &report(2));
            store.insert("a", &report(3)); // supersedes the first line
        }
        let reopened = Store::open(Some(p.clone()), u64::MAX, Arc::clone(&stats)).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("a").unwrap().report.makespan, 3);
        assert_eq!(reopened.get("b").unwrap().report.makespan, 2);
        // A torn final line (kill -9 mid-append) is skipped, not fatal.
        drop(reopened);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(b"{\"key\":\"torn").unwrap();
        drop(f);
        let salvaged = Store::open(Some(p.clone()), u64::MAX, stats).unwrap();
        assert_eq!(salvaged.len(), 2);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn compaction_drops_dead_lines_but_keeps_live_entries() {
        let p = tmp("compact.jsonl");
        let _ = std::fs::remove_file(&p);
        let stats = Arc::new(ServeStats::new());
        {
            let store = Store::open(Some(p.clone()), u64::MAX, Arc::clone(&stats)).unwrap();
            // 40 supersedes of one key: 41 body lines, 1 live entry.
            for i in 0..40 {
                store.insert("hot", &report(i));
            }
            store.insert("cold", &report(99));
        }
        let before = std::fs::read_to_string(&p).unwrap().lines().count();
        assert!(before > 20);
        let reopened = Store::open(Some(p.clone()), u64::MAX, stats).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("hot").unwrap().report.makespan, 39);
        let after = std::fs::read_to_string(&p).unwrap().lines().count();
        assert_eq!(after, 3, "header + two live entries after compaction");
        let _ = std::fs::remove_file(&p);
    }
}

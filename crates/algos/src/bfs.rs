//! Breadth-first search (paper §6.1): push-based, prioritized by ascending
//! hop distance. Runs as both the *BFS* benchmark (uniform random input)
//! and *G500* (Graph500 RMAT input).

use std::sync::Arc;

use minnow_graph::{Csr, NodeId};
use minnow_runtime::{Operator, PolicyKind, SpecWrite, Task, TaskCtx};

/// Unreached depth.
pub const UNREACHED: u64 = u64::MAX;

/// The push-based BFS operator.
#[derive(Debug)]
pub struct Bfs {
    graph: Arc<Csr>,
    source: NodeId,
    depth: Vec<u64>,
}

impl Bfs {
    /// Creates the operator for `graph` starting at `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn new(graph: Arc<Csr>, source: NodeId) -> Self {
        assert!((source as usize) < graph.nodes(), "source out of range");
        let n = graph.nodes();
        Bfs {
            graph,
            source,
            depth: vec![UNREACHED; n],
        }
    }

    /// Final hop distances.
    pub fn depths(&self) -> &[u64] {
        &self.depth
    }
}

impl Operator for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    fn initial_tasks(&self) -> Vec<Task> {
        vec![Task::new(0, self.source)]
    }

    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Obim(0)
    }

    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        // Direct fast path. Must stay in observable lockstep with
        // execute_spec + apply_spec (same trace accesses, same functional
        // writes) — the spec-on/off differential suites enforce it.
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(10);
        if self.depth[v as usize] < task.priority {
            ctx.add_branches(1);
            return; // stale: reached at a smaller depth already
        }
        if self.depth[v as usize] > task.priority {
            self.depth[v as usize] = task.priority;
            ctx.store_node(v);
        }
        let d = self.depth[v as usize];
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(8);
            if self.depth[u as usize] > d + 1 {
                self.depth[u as usize] = d + 1;
                ctx.atomic_node(u);
                ctx.push(Task::new(d + 1, u));
            }
        }
    }

    fn execute_spec(&self, task: Task, ctx: &mut TaskCtx) -> bool {
        // Slot 0 journals `depth`. Reads overlay the journal over the
        // committed array so intra-task read-after-write behaves exactly
        // like the in-place original.
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(10);
        let dv = ctx.spec_get(0, v).unwrap_or(self.depth[v as usize]);
        if dv < task.priority {
            ctx.add_branches(1);
            return true; // stale: reached at a smaller depth already
        }
        if dv > task.priority {
            ctx.spec_assign(0, v, task.priority);
            ctx.store_node(v);
        }
        let d = dv.min(task.priority);
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(8);
            let du = ctx.spec_get(0, u).unwrap_or(self.depth[u as usize]);
            if du > d + 1 {
                ctx.spec_assign(0, u, d + 1);
                ctx.atomic_node(u);
                ctx.push(Task::new(d + 1, u));
            }
        }
        true
    }

    fn apply_spec(&mut self, ctx: &TaskCtx) {
        for w in ctx.spec_log() {
            if let SpecWrite::Assign { slot: 0, node, bits } = *w {
                self.depth[node as usize] = bits;
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        let (levels, _, _) = minnow_graph::stats::bfs_levels(&self.graph, self.source);
        for (v, &want) in levels.iter().enumerate() {
            let want = if want == usize::MAX {
                UNREACHED
            } else {
                want as u64
            };
            if self.depth[v] != want {
                return Err(format!("node {v}: got {}, want {want}", self.depth[v]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::rmat::{self, RmatConfig};
    use minnow_graph::gen::uniform::{self, UniformConfig};
    use minnow_runtime::sim_exec::{run_software, ExecConfig};

    #[test]
    fn bfs_on_uniform_graph_is_exact() {
        let g = Arc::new(uniform::generate(&UniformConfig::new(1500, 4), 3));
        let mut op = Bfs::new(g, 0);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(4));
        assert!(!report.timed_out);
        op.check().unwrap();
    }

    #[test]
    fn g500_rmat_with_task_splitting_is_exact() {
        let g = Arc::new(rmat::generate(&RmatConfig::graph500(10, 16), 5));
        let mut op = Bfs::new(g, 0);
        let mut cfg = ExecConfig::new(4);
        cfg.split_threshold = Some(256); // force splitting of the hub
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &cfg);
        assert!(!report.timed_out);
        op.check().unwrap();
        // The hub's adjacency must have produced split tasks.
        let (hub, degree) = op.graph().max_degree();
        assert!(degree > 256, "hub {hub} degree {degree}");
        assert!(report.tasks as usize > op.graph().nodes() / 2);
    }

    #[test]
    fn lifo_order_still_converges() {
        let g = Arc::new(uniform::generate(&UniformConfig::new(600, 4), 9));
        let mut op = Bfs::new(g, 0);
        run_software(&mut op, PolicyKind::Lifo, &ExecConfig::new(2));
        op.check().unwrap();
    }

    #[test]
    fn isolated_source_terminates_immediately() {
        let g = Arc::new(Csr::from_edges(3, &[(1, 2)], None));
        let mut op = Bfs::new(g, 0);
        let report = run_software(&mut op, PolicyKind::Obim(0), &ExecConfig::new(1));
        assert_eq!(report.tasks, 1);
        assert_eq!(op.depths(), &[0, UNREACHED, UNREACHED]);
    }
}

//! Host-parallel (real multi-threaded) implementations of the suite's
//! data-driven workloads, built on the concurrent OBIM worklist from
//! [`minnow_runtime::par`].
//!
//! Everything else in this crate runs under the *simulated* machine; these
//! run on the actual host CPU, demonstrating that the framework's
//! algorithms are real parallel programs and providing fast answers for
//! users who just want results.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use minnow_graph::{Csr, NodeId};
use minnow_runtime::par::parallel_for_each;
use minnow_runtime::Task;

/// Host-parallel delta-stepping SSSP. Returns distances (`u64::MAX` =
/// unreachable).
///
/// # Panics
///
/// Panics if `source` is out of range or `threads == 0`.
pub fn sssp(graph: &Csr, source: NodeId, lg_delta: u32, threads: usize) -> Vec<u64> {
    assert!((source as usize) < graph.nodes(), "source out of range");
    let dist: Vec<AtomicU64> = (0..graph.nodes()).map(|_| AtomicU64::new(u64::MAX)).collect();
    dist[source as usize].store(0, Ordering::SeqCst);
    parallel_for_each(vec![Task::new(0, source)], threads, lg_delta, |task, push| {
        let v = task.node;
        let d = dist[v as usize].load(Ordering::SeqCst);
        if d < task.priority {
            return; // stale
        }
        for (_, u, w) in graph.edges_of(v) {
            let nd = d + w as u64;
            let mut cur = dist[u as usize].load(Ordering::SeqCst);
            while nd < cur {
                match dist[u as usize].compare_exchange(cur, nd, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => {
                        push(Task::new(nd, u));
                        break;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
    });
    dist.into_iter().map(|d| d.into_inner()).collect()
}

/// Host-parallel BFS. Returns hop distances (`u64::MAX` = unreachable).
///
/// # Panics
///
/// Panics if `source` is out of range or `threads == 0`.
pub fn bfs(graph: &Csr, source: NodeId, threads: usize) -> Vec<u64> {
    let g = unweight(graph);
    sssp(&g, source, 0, threads)
}

fn unweight(graph: &Csr) -> Csr {
    // BFS = SSSP with unit weights; strip weights if present.
    if !graph.is_weighted() {
        return graph.clone();
    }
    let mut edges = Vec::with_capacity(graph.edges());
    for v in 0..graph.nodes() as NodeId {
        for &u in graph.neighbors(v) {
            edges.push((v, u));
        }
    }
    Csr::from_edges(graph.nodes(), &edges, None)
}

/// Host-parallel connected components via min-label propagation. Returns
/// per-node labels (the minimum node id of each component).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn connected_components(graph: &Csr, threads: usize) -> Vec<u32> {
    let label: Vec<AtomicU32> = (0..graph.nodes() as u32).map(AtomicU32::new).collect();
    let initial: Vec<Task> = (0..graph.nodes() as NodeId)
        .map(|v| Task::new(v as u64, v))
        .collect();
    parallel_for_each(initial, threads, 4, |task, push| {
        let v = task.node;
        let l = label[v as usize].load(Ordering::SeqCst);
        if (l as u64) < task.priority {
            return;
        }
        for &u in graph.neighbors(v) {
            let mut cur = label[u as usize].load(Ordering::SeqCst);
            while l < cur {
                match label[u as usize].compare_exchange(cur, l, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => {
                        push(Task::new(l as u64, u));
                        break;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
    });
    label.into_iter().map(|l| l.into_inner()).collect()
}

/// Host-parallel bipartite check via 2-coloring. Returns `true` iff the
/// graph is bipartite.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn is_bipartite(graph: &Csr, threads: usize) -> bool {
    // Colors: 0 = none, 1 = red, 2 = blue.
    let color: Vec<AtomicU32> = (0..graph.nodes()).map(|_| AtomicU32::new(0)).collect();
    let conflict = AtomicBool::new(false);
    let initial: Vec<Task> = (0..graph.nodes() as NodeId).map(|v| Task::new(0, v)).collect();
    parallel_for_each(initial, threads, 0, |task, push| {
        let v = task.node;
        let _ = color[v as usize].compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);
        let mine = color[v as usize].load(Ordering::SeqCst);
        let want = 3 - mine;
        for &u in graph.neighbors(v) {
            match color[u as usize].compare_exchange(0, want, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => push(Task::new(0, u)),
                Err(actual) => {
                    if actual == mine {
                        conflict.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
    });
    !conflict.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::Sssp;
    use minnow_graph::gen::bipartite::{self, BipartiteConfig};
    use minnow_graph::gen::grid::{self, GridConfig};
    use minnow_graph::gen::powerlaw::{self, PowerLawConfig};

    #[test]
    fn host_sssp_matches_dijkstra() {
        let g = grid::generate(&GridConfig::new(20, 20).weighted(1..=9), 5);
        let got = sssp(&g, 0, 3, 4);
        let want = Sssp::reference(&g, 0);
        assert_eq!(got, want);
    }

    #[test]
    fn host_bfs_matches_levels() {
        let g = grid::generate(&GridConfig::new(15, 15).weighted(1..=9), 2);
        let got = bfs(&g, 0, 4);
        let (levels, _, _) = minnow_graph::stats::bfs_levels(&g, 0);
        for (v, &l) in levels.iter().enumerate() {
            let want = if l == usize::MAX { u64::MAX } else { l as u64 };
            assert_eq!(got[v], want, "node {v}");
        }
    }

    #[test]
    fn host_cc_matches_union_find() {
        let g = powerlaw::generate(&PowerLawConfig::new(800, 4, 1.1), 9);
        let labels = connected_components(&g, 4);
        let mut dsu = minnow_graph::dsu::Dsu::new(g.nodes());
        for v in 0..g.nodes() as NodeId {
            for &u in g.neighbors(v) {
                dsu.union(v, u);
            }
        }
        for v in 0..g.nodes() as u32 {
            for u in 0..g.nodes() as u32 {
                if dsu.same(v, u) {
                    assert_eq!(labels[v as usize], labels[u as usize]);
                }
            }
        }
    }

    #[test]
    fn host_bipartite_detects_both_cases() {
        let good = bipartite::generate(&BipartiteConfig::new(100, 50, 3, 1.0), 3);
        assert!(is_bipartite(&good, 4));
        let triangle =
            Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)], None).symmetrize();
        assert!(!is_bipartite(&triangle, 2));
    }
}

//! Connected components via minimum-label propagation (paper §6.1,
//! Nguyen et al. SOSP'13). Every node starts labeled with its own id; tasks
//! propagate a node's label to neighbors with larger labels, prioritized by
//! ascending component id.
//!
//! Tasks are tiny (a handful of instructions per edge), which is why CC is
//! the paper's most worklist-bottlenecked benchmark — 92% of cycles at 64
//! threads (Fig. 5), negative scaling past 16 threads (Fig. 15).

use std::sync::Arc;

use minnow_graph::{Csr, NodeId};
use minnow_runtime::{Operator, PolicyKind, SpecWrite, Task, TaskCtx};

/// The CC operator.
#[derive(Debug)]
pub struct Cc {
    graph: Arc<Csr>,
    label: Vec<u32>,
}

impl Cc {
    /// Creates the operator (labels initialized to node ids).
    pub fn new(graph: Arc<Csr>) -> Self {
        let n = graph.nodes();
        Cc {
            graph,
            label: (0..n as u32).collect(),
        }
    }

    /// Final labels (the minimum node id of each component).
    pub fn labels(&self) -> &[u32] {
        &self.label
    }
}

impl Operator for Cc {
    fn name(&self) -> &'static str {
        "CC"
    }

    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    fn initial_tasks(&self) -> Vec<Task> {
        (0..self.graph.nodes() as NodeId)
            .map(|v| Task::new(v as u64, v))
            .collect()
    }

    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Obim(4)
    }

    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        // Direct fast path; must stay in observable lockstep with
        // execute_spec + apply_spec (enforced by the spec differential
        // suites).
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(6);
        let l = self.label[v as usize];
        if (l as u64) < task.priority {
            ctx.add_branches(1);
            return; // a smaller label already propagated through v
        }
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(5);
            if l < self.label[u as usize] {
                self.label[u as usize] = l;
                ctx.atomic_node(u);
                ctx.push(Task::new(l as u64, u));
            }
        }
    }

    fn execute_spec(&self, task: Task, ctx: &mut TaskCtx) -> bool {
        // Slot 0 journals `label` (widened to u64 bits); reads overlay
        // the journal.
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(6);
        let l = ctx
            .spec_get(0, v)
            .map_or(self.label[v as usize], |bits| bits as u32);
        if (l as u64) < task.priority {
            ctx.add_branches(1);
            return true; // a smaller label already propagated through v
        }
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(5);
            let lu = ctx
                .spec_get(0, u)
                .map_or(self.label[u as usize], |bits| bits as u32);
            if l < lu {
                ctx.spec_assign(0, u, l as u64);
                ctx.atomic_node(u);
                ctx.push(Task::new(l as u64, u));
            }
        }
        true
    }

    fn apply_spec(&mut self, ctx: &TaskCtx) {
        for w in ctx.spec_log() {
            if let SpecWrite::Assign { slot: 0, node, bits } = *w {
                self.label[node as usize] = bits as u32;
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        // Labels must be the component-minimum node id, per union-find.
        let mut dsu = minnow_graph::dsu::Dsu::new(self.graph.nodes());
        for v in 0..self.graph.nodes() as NodeId {
            for &u in self.graph.neighbors(v) {
                dsu.union(v, u);
            }
        }
        let mut min_of_root = std::collections::HashMap::new();
        for v in 0..self.graph.nodes() as u32 {
            let r = dsu.find(v);
            let e = min_of_root.entry(r).or_insert(v);
            *e = (*e).min(v);
        }
        for v in 0..self.graph.nodes() as u32 {
            let want = min_of_root[&dsu.find(v)];
            if self.label[v as usize] != want {
                return Err(format!(
                    "node {v}: label {}, want {want}",
                    self.label[v as usize]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::powerlaw::{self, PowerLawConfig};
    use minnow_runtime::sim_exec::{run_software, ExecConfig};

    #[test]
    fn labels_converge_to_component_minima() {
        let g = Arc::new(powerlaw::generate(&PowerLawConfig::new(1200, 6, 1.1), 2));
        let mut op = Cc::new(g);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(4));
        assert!(!report.timed_out);
        op.check().unwrap();
    }

    #[test]
    fn multiple_components_keep_distinct_labels() {
        // Two triangles.
        let g = Arc::new(Csr::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
            None,
        ))
        .symmetrize();
        let g = Arc::new(g);
        let mut op = Cc::new(g);
        run_software(&mut op, PolicyKind::Obim(0), &ExecConfig::new(2));
        op.check().unwrap();
        assert_eq!(op.labels()[..3], [0, 0, 0]);
        assert_eq!(op.labels()[3..], [3, 3, 3]);
    }

    #[test]
    fn isolated_nodes_keep_their_ids() {
        let g = Arc::new(Csr::from_edges(4, &[(0, 1), (1, 0)], None));
        let mut op = Cc::new(g);
        run_software(&mut op, PolicyKind::Fifo, &ExecConfig::new(1));
        op.check().unwrap();
        assert_eq!(op.labels(), &[0, 0, 2, 3]);
    }

    #[test]
    fn cc_is_worklist_heavy() {
        // Tiny tasks: the worklist share of cycles must dominate memory at
        // moderate thread counts, echoing Fig. 5.
        let g = Arc::new(powerlaw::generate(&PowerLawConfig::new(1500, 5, 1.0), 8));
        let mut op = Cc::new(g);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(8));
        let wl = report.breakdown.fraction(report.breakdown.worklist);
        assert!(wl > 0.3, "CC worklist share {wl:.2} should be large");
    }
}

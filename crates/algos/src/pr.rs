//! PageRank (paper §6.1): non-blocking, data-driven, push-based residual
//! algorithm (Whang et al., Euro-Par'15), prioritized by *descending*
//! residual.
//!
//! Every task unconditionally pushes its residual to all out-neighbors with
//! atomic adds — the behaviour behind the paper's §3.2 observation that PR
//! spends 32% of cycles in stores/atomics, and §3.3's finding that removing
//! x86 fences would speed PR up to 5x.

use std::sync::Arc;

use minnow_graph::{Csr, NodeId};
use minnow_runtime::{Operator, PolicyKind, SpecWrite, Task, TaskCtx};

/// Damping factor.
pub const DAMPING: f64 = 0.85;

/// Maps a residual to an OBIM priority: larger residuals are more urgent
/// (smaller priority). Log-scale bucketing keeps the number of live OBIM
/// buckets small (~`-lg epsilon`), as in the scalable data-driven PageRank
/// the paper builds on (Whang et al., Euro-Par'15).
pub fn residual_priority(r: f64) -> u64 {
    if r >= 1.0 {
        0
    } else if r <= 0.0 {
        40
    } else {
        (-r.log2()).ceil().clamp(0.0, 40.0) as u64
    }
}

/// The push-based PageRank operator.
#[derive(Debug)]
pub struct PageRank {
    graph: Arc<Csr>,
    epsilon: f64,
    rank: Vec<f64>,
    residual: Vec<f64>,
}

impl PageRank {
    /// Creates the operator with convergence threshold `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0`.
    pub fn new(graph: Arc<Csr>, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let n = graph.nodes();
        PageRank {
            graph,
            epsilon,
            rank: vec![0.0; n],
            residual: vec![1.0; n],
        }
    }

    /// Final ranks.
    pub fn ranks(&self) -> &[f64] {
        &self.rank
    }

    /// Remaining residuals (all `< epsilon` after convergence).
    pub fn residuals(&self) -> &[f64] {
        &self.residual
    }

    /// Serial reference: the same push algorithm processed largest-residual
    /// first until convergence.
    pub fn reference(graph: &Csr, epsilon: f64) -> Vec<f64> {
        let n = graph.nodes();
        let mut rank = vec![0.0; n];
        let mut residual = vec![1.0f64; n];
        loop {
            let mut progressed = false;
            for v in 0..n {
                if residual[v] >= epsilon {
                    progressed = true;
                    let r = residual[v];
                    residual[v] = 0.0;
                    rank[v] += (1.0 - DAMPING) * r;
                    let deg = graph.out_degree(v as NodeId);
                    if deg > 0 {
                        let share = DAMPING * r / deg as f64;
                        for &u in graph.neighbors(v as NodeId) {
                            residual[u as usize] += share;
                        }
                    }
                }
            }
            if !progressed {
                return rank;
            }
        }
    }
}

impl Operator for PageRank {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    fn initial_tasks(&self) -> Vec<Task> {
        (0..self.graph.nodes() as NodeId)
            .map(|v| Task::new(residual_priority(1.0), v))
            .collect()
    }

    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Obim(6)
    }

    fn supports_splitting(&self) -> bool {
        // The residual claim is per-task; sub-range tasks would double-claim.
        false
    }

    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        // Direct fast path; must stay in observable lockstep with
        // execute_spec + apply_spec — including float operation order,
        // so ranks and residuals stay bit-identical (enforced by the
        // spec differential suites).
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(16);
        ctx.add_branches(1);
        let r = self.residual[v as usize];
        if r < self.epsilon {
            return;
        }
        self.residual[v as usize] = 0.0;
        self.rank[v as usize] += (1.0 - DAMPING) * r;
        ctx.store_node(v);
        let graph = self.graph.clone();
        let deg = graph.out_degree(v);
        if deg == 0 {
            return;
        }
        let share = DAMPING * r / deg as f64;
        let base = graph.edge_range(v).start;
        for slot in 0..deg {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            // Residual pushed unconditionally: atomic add per edge.
            ctx.atomic_node(u);
            ctx.add_instrs(9);
            let before = self.residual[u as usize];
            let after = before + share;
            self.residual[u as usize] = after;
            ctx.add_branches(1);
            if before < self.epsilon && after >= self.epsilon {
                ctx.push(Task::new(residual_priority(after), u));
            }
        }
    }

    fn execute_spec(&self, task: Task, ctx: &mut TaskCtx) -> bool {
        // Slot 0 journals `residual`, slot 1 journals `rank` (both as f64
        // bit patterns); reads overlay the journal.
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(16);
        ctx.add_branches(1);
        let r = f64::from_bits(
            ctx.spec_get(0, v)
                .unwrap_or(self.residual[v as usize].to_bits()),
        );
        if r < self.epsilon {
            return true;
        }
        ctx.spec_assign(0, v, 0.0f64.to_bits());
        let rank = f64::from_bits(
            ctx.spec_get(1, v)
                .unwrap_or(self.rank[v as usize].to_bits()),
        );
        ctx.spec_assign(1, v, (rank + (1.0 - DAMPING) * r).to_bits());
        ctx.store_node(v);
        let graph = self.graph.clone();
        let deg = graph.out_degree(v);
        if deg == 0 {
            return true;
        }
        let share = DAMPING * r / deg as f64;
        let base = graph.edge_range(v).start;
        for slot in 0..deg {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            // Residual pushed unconditionally: atomic add per edge.
            ctx.atomic_node(u);
            ctx.add_instrs(9);
            let before = f64::from_bits(
                ctx.spec_get(0, u)
                    .unwrap_or(self.residual[u as usize].to_bits()),
            );
            let after = before + share;
            ctx.spec_assign(0, u, after.to_bits());
            ctx.add_branches(1);
            if before < self.epsilon && after >= self.epsilon {
                ctx.push(Task::new(residual_priority(after), u));
            }
        }
        true
    }

    fn apply_spec(&mut self, ctx: &TaskCtx) {
        for w in ctx.spec_log() {
            match *w {
                SpecWrite::Assign { slot: 0, node, bits } => {
                    self.residual[node as usize] = f64::from_bits(bits);
                }
                SpecWrite::Assign { slot: 1, node, bits } => {
                    self.rank[node as usize] = f64::from_bits(bits);
                }
                _ => {}
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = self.residual.iter().position(|&r| r >= self.epsilon) {
            return Err(format!("residual at node {v} not converged: {}", self.residual[v]));
        }
        let expect = PageRank::reference(&self.graph, self.epsilon);
        for (v, (&got, &want)) in self.rank.iter().zip(expect.iter()).enumerate() {
            // Float accumulation order differs; bound by epsilon-scaled slack.
            let slack = 200.0 * self.epsilon * (1.0 + want.abs());
            if (got - want).abs() > slack {
                return Err(format!("node {v}: rank {got} vs reference {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::powerlaw::{self, PowerLawConfig};
    use minnow_runtime::sim_exec::{run_software, ExecConfig};

    #[test]
    fn converges_and_matches_reference() {
        let g = Arc::new(powerlaw::generate(&PowerLawConfig::new(600, 4, 1.2), 4));
        let mut op = PageRank::new(g, 1e-4);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(4));
        assert!(!report.timed_out);
        op.check().unwrap();
    }

    #[test]
    fn hub_nodes_rank_higher() {
        // Star: all leaves point at the hub.
        let edges: Vec<(u32, u32)> = (1..20).map(|v| (v, 0)).collect();
        let g = Arc::new(Csr::from_edges(20, &edges, None));
        let mut op = PageRank::new(g, 1e-6);
        run_software(&mut op, PolicyKind::Obim(6), &ExecConfig::new(2));
        op.check().unwrap();
        let hub = op.ranks()[0];
        let leaf = op.ranks()[1];
        assert!(hub > 3.0 * leaf, "hub {hub} vs leaf {leaf}");
    }

    #[test]
    fn atomics_dominate_the_store_mix() {
        let g = Arc::new(powerlaw::generate(&PowerLawConfig::new(400, 6, 1.1), 5));
        let mut op = PageRank::new(g, 1e-3);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(4));
        // PR's fence share must be visible (paper Fig. 5: 32% store cycles).
        let fence = report.breakdown.fraction(report.breakdown.fence);
        assert!(fence > 0.05, "fence share {fence:.3}");
    }

    #[test]
    fn priority_is_monotone_descending_in_residual() {
        assert!(residual_priority(1.0) < residual_priority(0.1));
        assert!(residual_priority(0.1) < residual_priority(0.001));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_rejected() {
        let g = Arc::new(Csr::from_edges(1, &[], None));
        let _ = PageRank::new(g, 0.0);
    }
}

//! Bipartite coloring (paper §6.1): decide 2-colorability by propagating
//! alternating colors to neighbors. Like TC, BC gains nothing from priority
//! ordering — it bounds Minnow's benefit from the scheduling side while
//! still being memory-bound (2.47x from prefetching alone, §6.3.2).

use std::sync::Arc;

use minnow_graph::{Csr, NodeId};
use minnow_runtime::{Operator, PolicyKind, SpecWrite, Task, TaskCtx};

/// Node colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Not yet colored.
    None,
    /// First color class.
    Red,
    /// Second color class.
    Blue,
}

impl Color {
    fn opposite(self) -> Color {
        match self {
            Color::Red => Color::Blue,
            Color::Blue => Color::Red,
            Color::None => Color::None,
        }
    }

    /// Journal encoding for the speculation log.
    fn to_bits(self) -> u64 {
        match self {
            Color::None => 0,
            Color::Red => 1,
            Color::Blue => 2,
        }
    }

    fn from_bits(bits: u64) -> Color {
        match bits {
            1 => Color::Red,
            2 => Color::Blue,
            _ => Color::None,
        }
    }
}

/// The bipartite-coloring operator.
#[derive(Debug)]
pub struct Bc {
    graph: Arc<Csr>,
    color: Vec<Color>,
    conflicts: u64,
}

impl Bc {
    /// Creates the operator (all nodes uncolored).
    pub fn new(graph: Arc<Csr>) -> Self {
        let n = graph.nodes();
        Bc {
            graph,
            color: vec![Color::None; n],
            conflicts: 0,
        }
    }

    /// Final colors.
    pub fn colors(&self) -> &[Color] {
        &self.color
    }

    /// Odd-cycle conflicts found (0 iff the graph is bipartite).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Whether the graph was 2-colorable.
    pub fn is_bipartite(&self) -> bool {
        self.conflicts == 0
    }
}

impl Operator for Bc {
    fn name(&self) -> &'static str {
        "BC"
    }

    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    fn initial_tasks(&self) -> Vec<Task> {
        // One seed per node: later seeds find their component already
        // colored and just re-propagate their actual color. BC gains
        // nothing from ordering, so every task is priority 0.
        (0..self.graph.nodes() as NodeId)
            .map(|v| Task::new(0, v))
            .collect()
    }

    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Chunked(16)
    }

    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        // Direct fast path; must stay in observable lockstep with
        // execute_spec + apply_spec (enforced by the spec differential
        // suites).
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(8);
        ctx.add_branches(1);
        if self.color[v as usize] == Color::None {
            self.color[v as usize] = Color::Red;
            ctx.store_node(v);
        }
        let mine = self.color[v as usize];
        let expected = mine.opposite();
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(6);
            match self.color[u as usize] {
                Color::None => {
                    self.color[u as usize] = expected;
                    ctx.atomic_node(u);
                    ctx.push(Task::new(task.priority, u));
                }
                c if c == mine => {
                    self.conflicts += 1;
                }
                _ => {}
            }
        }
    }

    fn execute_spec(&self, task: Task, ctx: &mut TaskCtx) -> bool {
        // Slot 0 journals `color` (encoded), slot 1 the conflict tally as
        // a delta; reads overlay the journal.
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(8);
        ctx.add_branches(1);
        let mut cv = ctx
            .spec_get(0, v)
            .map_or(self.color[v as usize], Color::from_bits);
        if cv == Color::None {
            cv = Color::Red;
            ctx.spec_assign(0, v, cv.to_bits());
            ctx.store_node(v);
        }
        let mine = cv;
        let expected = mine.opposite();
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        let mut conflicts = 0u64;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(6);
            let cu = ctx
                .spec_get(0, u)
                .map_or(self.color[u as usize], Color::from_bits);
            match cu {
                Color::None => {
                    ctx.spec_assign(0, u, expected.to_bits());
                    ctx.atomic_node(u);
                    ctx.push(Task::new(task.priority, u));
                }
                c if c == mine => {
                    conflicts += 1;
                }
                _ => {}
            }
        }
        if conflicts > 0 {
            ctx.spec_delta(1, conflicts);
        }
        true
    }

    fn apply_spec(&mut self, ctx: &TaskCtx) {
        for w in ctx.spec_log() {
            match *w {
                SpecWrite::Assign { slot: 0, node, bits } => {
                    self.color[node as usize] = Color::from_bits(bits);
                }
                SpecWrite::Delta { slot: 1, amount } => {
                    self.conflicts += amount;
                }
                _ => {}
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        // Every node with an edge must be colored, and every edge must
        // cross color classes exactly when no conflict was reported.
        for v in 0..self.graph.nodes() as NodeId {
            if self.graph.out_degree(v) > 0 && self.color[v as usize] == Color::None {
                return Err(format!("node {v} left uncolored"));
            }
        }
        if self.conflicts == 0 {
            for v in 0..self.graph.nodes() as NodeId {
                for &u in self.graph.neighbors(v) {
                    if self.color[v as usize] == self.color[u as usize] {
                        return Err(format!("edge {v}-{u} monochromatic"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::bipartite::{self, BipartiteConfig};
    use minnow_runtime::sim_exec::{run_software, ExecConfig};

    #[test]
    fn bipartite_input_two_colors_cleanly() {
        let g = Arc::new(bipartite::generate(
            &BipartiteConfig::new(400, 150, 4, 1.1),
            6,
        ));
        let mut op = Bc::new(g);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(4));
        assert!(!report.timed_out);
        assert!(op.is_bipartite());
        op.check().unwrap();
    }

    #[test]
    fn odd_cycle_reports_conflict() {
        let g = Arc::new(Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)], None).symmetrize());
        let mut op = Bc::new(g);
        run_software(&mut op, PolicyKind::Fifo, &ExecConfig::new(1));
        assert!(!op.is_bipartite());
        assert!(op.conflicts() > 0);
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let g = Arc::new(
            Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], None).symmetrize(),
        );
        let mut op = Bc::new(g);
        run_software(&mut op, PolicyKind::Chunked(4), &ExecConfig::new(2));
        assert!(op.is_bipartite());
        op.check().unwrap();
        assert_ne!(op.colors()[0], op.colors()[1]);
        assert_eq!(op.colors()[0], op.colors()[2]);
    }

    #[test]
    fn disconnected_components_all_colored() {
        let g = Arc::new(
            Csr::from_edges(6, &[(0, 1), (2, 3), (4, 5)], None).symmetrize(),
        );
        let mut op = Bc::new(g);
        run_software(&mut op, PolicyKind::Chunked(4), &ExecConfig::new(2));
        op.check().unwrap();
        assert!(op.is_bipartite());
    }
}

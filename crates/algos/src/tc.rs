//! Triangle counting (paper §6.1): the *node-iterator-hashed* algorithm
//! (Schank 2007) — for every node `v` and neighbor pair `u < w` (both
//! greater than `v`), a binary search in `u`'s sorted adjacency list
//! decides whether the closing edge exists.
//!
//! TC is the paper's control benchmark: it neither generates work
//! dynamically nor benefits from priority ordering, its tasks need no
//! atomics, and its (deliberately small) input fits in the LLC — so it
//! shows the *minimum* benefit of Minnow (§6.3: 1.53x with prefetching).
//! Uses 64B node records (§6.2) and the custom TC prefetch program (§5.3).

use std::sync::Arc;

use minnow_graph::{AddressMap, Csr, NodeId};
use minnow_runtime::{Operator, PolicyKind, PrefetchKind, SpecWrite, Task, TaskCtx};

/// The triangle-counting operator.
#[derive(Debug)]
pub struct Tc {
    graph: Arc<Csr>,
    triangles: u64,
}

impl Tc {
    /// Creates the operator.
    ///
    /// # Panics
    ///
    /// Panics if the graph's adjacency lists are not sorted
    /// (see [`Csr::sort_adjacency`]).
    pub fn new(graph: Arc<Csr>) -> Self {
        assert!(graph.is_sorted(), "TC requires sorted adjacency lists");
        Tc {
            graph,
            triangles: 0,
        }
    }

    /// Triangles counted so far (final after the worklist drains).
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Brute-force reference via hash-set intersection.
    pub fn reference(graph: &Csr) -> u64 {
        let sets: Vec<std::collections::HashSet<NodeId>> = (0..graph.nodes() as NodeId)
            .map(|v| graph.neighbors(v).iter().copied().collect())
            .collect();
        let mut count = 0;
        for v in 0..graph.nodes() as NodeId {
            for &u in graph.neighbors(v) {
                if u <= v {
                    continue;
                }
                for &w in graph.neighbors(v) {
                    if w <= u {
                        continue;
                    }
                    if sets[u as usize].contains(&w) {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

impl Operator for Tc {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    fn address_map(&self) -> AddressMap {
        AddressMap::wide_nodes()
    }

    fn initial_tasks(&self) -> Vec<Task> {
        (0..self.graph.nodes() as NodeId)
            .map(|v| Task::new(0, v))
            .collect()
    }

    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Chunked(16)
    }

    fn prefetch_kind(&self) -> PrefetchKind {
        PrefetchKind::TriangleCounting
    }

    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        // Direct fast path; must stay in observable lockstep with
        // execute_spec + apply_spec (enforced by the spec differential
        // suites).
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(10);
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        let nbrs = graph.neighbors(v);
        let range = task.resolve_range(nbrs.len());
        for i in range {
            let u = nbrs[i];
            ctx.load_edge(base + i, u);
            ctx.add_branches(1);
            if u <= v {
                continue;
            }
            ctx.load_node(u);
            for (j, &w) in nbrs.iter().enumerate().skip(i + 1) {
                ctx.load_edge(base + j, w);
                ctx.add_branches(1);
                ctx.add_instrs(4);
                if w <= u {
                    continue;
                }
                let (found, probes) = graph.has_edge(u, w);
                for p in probes {
                    ctx.load_edge(p, graph.edge_dst(p));
                    ctx.add_branches(1);
                    ctx.add_instrs(6);
                }
                if found {
                    self.triangles += 1;
                    ctx.add_instrs(2);
                }
            }
        }
    }

    fn execute_spec(&self, task: Task, ctx: &mut TaskCtx) -> bool {
        // The graph is immutable; the only functional write is the
        // triangle tally, journaled as a delta on slot 0.
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(10);
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        let nbrs = graph.neighbors(v);
        let range = task.resolve_range(nbrs.len());
        let mut tris = 0u64;
        for i in range {
            let u = nbrs[i];
            ctx.load_edge(base + i, u);
            ctx.add_branches(1);
            if u <= v {
                continue;
            }
            ctx.load_node(u);
            for (j, &w) in nbrs.iter().enumerate().skip(i + 1) {
                ctx.load_edge(base + j, w);
                ctx.add_branches(1);
                ctx.add_instrs(4);
                if w <= u {
                    continue;
                }
                let (found, probes) = graph.has_edge(u, w);
                for p in probes {
                    ctx.load_edge(p, graph.edge_dst(p));
                    ctx.add_branches(1);
                    ctx.add_instrs(6);
                }
                if found {
                    tris += 1;
                    ctx.add_instrs(2);
                }
            }
        }
        if tris > 0 {
            ctx.spec_delta(0, tris);
        }
        true
    }

    fn apply_spec(&mut self, ctx: &TaskCtx) {
        for w in ctx.spec_log() {
            if let SpecWrite::Delta { slot: 0, amount } = *w {
                self.triangles += amount;
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        let want = Tc::reference(&self.graph);
        if self.triangles != want {
            return Err(format!("counted {} triangles, want {want}", self.triangles));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::powerlaw::{self, PowerLawConfig};
    use minnow_runtime::sim_exec::{run_software, ExecConfig};

    fn sorted(mut g: Csr) -> Arc<Csr> {
        g.sort_adjacency();
        Arc::new(g)
    }

    #[test]
    fn counts_a_single_triangle() {
        let g = sorted(
            Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)], None).symmetrize(),
        );
        let mut op = Tc::new(g);
        let policy = op.default_policy();
        run_software(&mut op, policy, &ExecConfig::new(2));
        assert_eq!(op.triangles(), 1);
        op.check().unwrap();
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = sorted(Csr::from_edges(5, &edges, None));
        let mut op = Tc::new(g);
        run_software(&mut op, PolicyKind::Chunked(4), &ExecConfig::new(2));
        assert_eq!(op.triangles(), 10);
    }

    #[test]
    fn matches_reference_on_community_graph() {
        let g = sorted(powerlaw::generate(&PowerLawConfig::new(250, 6, 0.9), 7));
        let mut op = Tc::new(g);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(4));
        assert_eq!(report.tasks as usize, op.graph().nodes());
        op.check().unwrap();
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // A path graph.
        let g = sorted(Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)], None).symmetrize());
        let mut op = Tc::new(g);
        run_software(&mut op, PolicyKind::Fifo, &ExecConfig::new(1));
        assert_eq!(op.triangles(), 0);
        op.check().unwrap();
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_graph_rejected() {
        let g = Arc::new(Csr::from_edges(3, &[(0, 2), (0, 1)], None));
        let _ = Tc::new(g);
    }
}

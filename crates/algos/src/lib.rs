//! # minnow-algos — the paper's benchmark suite (§6.1)
//!
//! Seven parallel graph workloads implemented as
//! [`minnow_runtime::Operator`]s over CSR graphs, each functionally
//! verified against an independent serial reference:
//!
//! | module | workload | ordering | notes |
//! |---|---|---|---|
//! | [`sssp`] | single-source shortest path | delta-stepping (OBIM) | also Dijkstra/Bellman-Ford via policy choice |
//! | [`bfs`]  | breadth-first search | hop distance (OBIM) | used for both *BFS* and *G500* |
//! | [`cc`]   | connected components | ascending label | min-label propagation |
//! | [`pr`]   | PageRank | descending residual | push-based, atomics-heavy |
//! | [`tc`]   | triangle counting | none | node-iterator-hashed, 64B nodes, custom prefetch |
//! | [`bc`]   | bipartite coloring | none | 2-coloring propagation |
//!
//! [`suite`] binds each workload to its Table 1 input analogue and gives the
//! bench harness a uniform way to instantiate the whole suite.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod host;
pub mod pr;
pub mod sssp;
pub mod suite;
pub mod tc;

pub use crate::suite::WorkloadKind;

//! Single-source shortest path (paper §6.1, Fig. 1).
//!
//! The operator is the paper's Fig. 1 pseudocode: each task processes one
//! node, relaxing all outgoing edges and pushing improved neighbors with
//! `priority = newDist`. The *scheduling policy* then decides the
//! algorithm: a strict priority queue gives Dijkstra, FIFO gives
//! Bellman-Ford, and OBIM with `lg_bucket_interval = lg Δ` gives
//! delta-stepping — which is exactly why SSSP is the paper's headline
//! ordering-sensitivity example (§3.1: 576x over unordered GraphMat).

use std::sync::Arc;

use minnow_graph::{Csr, NodeId};
use minnow_runtime::{Operator, PolicyKind, SpecWrite, Task, TaskCtx};

/// Unreached distance.
pub const INF: u64 = u64::MAX;

/// The SSSP operator.
#[derive(Debug)]
pub struct Sssp {
    graph: Arc<Csr>,
    source: NodeId,
    /// Delta-stepping bucket exponent (`bucket = dist >> lg_delta`).
    lg_delta: u32,
    dist: Vec<u64>,
}

impl Sssp {
    /// Creates the operator for `graph` starting at `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or the graph is unweighted and
    /// empty of nodes.
    pub fn new(graph: Arc<Csr>, source: NodeId, lg_delta: u32) -> Self {
        assert!((source as usize) < graph.nodes(), "source out of range");
        let n = graph.nodes();
        Sssp {
            graph,
            source,
            lg_delta,
            dist: vec![INF; n],
        }
    }

    /// Final distances (INF = unreachable).
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }

    /// Serial Dijkstra reference.
    pub fn reference(graph: &Csr, source: NodeId) -> Vec<u64> {
        let mut dist = vec![INF; graph.nodes()];
        let mut heap = std::collections::BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, source)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (_, u, w) in graph.edges_of(v) {
                let nd = d + w as u64;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, u)));
                }
            }
        }
        dist
    }
}

impl Operator for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    fn initial_tasks(&self) -> Vec<Task> {
        vec![Task::new(0, self.source)]
    }

    fn default_policy(&self) -> PolicyKind {
        PolicyKind::Obim(self.lg_delta)
    }

    fn execute(&mut self, task: Task, ctx: &mut TaskCtx) {
        // Direct fast path; must stay in observable lockstep with
        // execute_spec + apply_spec (enforced by the spec differential
        // suites).
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(14);
        let d = self.dist[v as usize].min(task.priority);
        if self.dist[v as usize] < task.priority {
            // A shorter path already propagated from this node.
            ctx.add_branches(1);
            return;
        }
        if self.dist[v as usize] > task.priority {
            self.dist[v as usize] = task.priority;
            ctx.store_node(v);
        }
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            let w = graph.edge_weight(e) as u64;
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(10);
            let nd = d + w;
            if nd < self.dist[u as usize] {
                self.dist[u as usize] = nd;
                ctx.atomic_node(u);
                ctx.push(Task::new(nd, u));
            }
        }
    }

    fn execute_spec(&self, task: Task, ctx: &mut TaskCtx) -> bool {
        // Slot 0 journals `dist`; reads overlay the journal.
        let v = task.node;
        ctx.load_node(v);
        ctx.add_instrs(14);
        let dv = ctx.spec_get(0, v).unwrap_or(self.dist[v as usize]);
        let d = dv.min(task.priority);
        if dv < task.priority {
            // A shorter path already propagated from this node.
            ctx.add_branches(1);
            return true;
        }
        if dv > task.priority {
            ctx.spec_assign(0, v, task.priority);
            ctx.store_node(v);
        }
        let graph = self.graph.clone();
        let base = graph.edge_range(v).start;
        for slot in task.resolve_range(graph.out_degree(v)) {
            let e = base + slot;
            let u = graph.edge_dst(e);
            let w = graph.edge_weight(e) as u64;
            ctx.load_edge(e, u);
            ctx.load_node(u);
            ctx.add_branches(1);
            ctx.add_instrs(10);
            let nd = d + w;
            if nd < ctx.spec_get(0, u).unwrap_or(self.dist[u as usize]) {
                ctx.spec_assign(0, u, nd);
                ctx.atomic_node(u);
                ctx.push(Task::new(nd, u));
            }
        }
        true
    }

    fn apply_spec(&mut self, ctx: &TaskCtx) {
        for w in ctx.spec_log() {
            if let SpecWrite::Assign { slot: 0, node, bits } = *w {
                self.dist[node as usize] = bits;
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        let expect = Sssp::reference(&self.graph, self.source);
        for (v, (&got, &want)) in self.dist.iter().zip(expect.iter()).enumerate() {
            if got != want {
                return Err(format!("node {v}: got {got}, want {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_graph::gen::grid::{self, GridConfig};
    use minnow_runtime::sim_exec::{run_software, ExecConfig};

    fn weighted_grid() -> Arc<Csr> {
        Arc::new(grid::generate(&GridConfig::new(12, 12).weighted(1..=9), 17))
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        let g = weighted_grid();
        let mut op = Sssp::new(g, 0, 3);
        let policy = op.default_policy();
        let report = run_software(&mut op, policy, &ExecConfig::new(4));
        assert!(!report.timed_out);
        op.check().unwrap();
    }

    #[test]
    fn fifo_bellman_ford_is_correct_but_wasteful() {
        let g = weighted_grid();
        let mut ordered = Sssp::new(g.clone(), 0, 3);
        let r_ordered = run_software(&mut ordered, PolicyKind::Obim(3), &ExecConfig::new(2));
        ordered.check().unwrap();

        let mut fifo = Sssp::new(g, 0, 3);
        let r_fifo = run_software(&mut fifo, PolicyKind::Fifo, &ExecConfig::new(2));
        fifo.check().unwrap();
        assert!(
            r_fifo.tasks > r_ordered.tasks,
            "Bellman-Ford must relax more: {} vs {}",
            r_fifo.tasks,
            r_ordered.tasks
        );
    }

    #[test]
    fn strict_priority_is_most_work_efficient() {
        let g = weighted_grid();
        let mut strict = Sssp::new(g.clone(), 0, 3);
        let r_strict = run_software(&mut strict, PolicyKind::Strict, &ExecConfig::new(1));
        strict.check().unwrap();
        let mut obim = Sssp::new(g, 0, 3);
        let r_obim = run_software(&mut obim, PolicyKind::Obim(3), &ExecConfig::new(1));
        assert!(r_strict.tasks <= r_obim.tasks);
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        // Two disconnected 1x3 paths.
        let g = Arc::new(Csr::from_edges(
            6,
            &[(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)],
            Some(&[1, 1, 1, 1, 1, 1]),
        ));
        let mut op = Sssp::new(g, 0, 0);
        run_software(&mut op, PolicyKind::Obim(0), &ExecConfig::new(1));
        op.check().unwrap();
        assert_eq!(op.distances()[5], INF);
        assert_eq!(op.distances()[2], 2);
    }

    #[test]
    #[should_panic(expected = "source")]
    fn bad_source_rejected() {
        let g = Arc::new(Csr::from_edges(2, &[(0, 1)], None));
        let _ = Sssp::new(g, 9, 0);
    }
}

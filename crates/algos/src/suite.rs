//! The benchmark suite: workloads bound to their Table 2 inputs.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use minnow_graph::image::{load_image, write_image, LoadMode};
use minnow_graph::io::{self, ParseError};
use minnow_graph::{inputs, Csr, NodeId};
use minnow_runtime::Operator;

use crate::{bc::Bc, bfs::Bfs, cc::Cc, pr::PageRank, sssp::Sssp, tc::Tc};

/// Key identifying one generated input: workload, scale bits, seed.
type InputKey = (WorkloadKind, u64, u64);

/// One cache slot: a per-key cell so concurrent requests for *different*
/// graphs never serialize on each other.
type InputCell = Arc<OnceLock<Arc<Csr>>>;

/// Process-wide cache of generated inputs.
///
/// Sweeps run many (workload × config) points over the same handful of
/// graphs; generating each graph once and sharing the `Arc<Csr>` across
/// OS threads keeps parallel sweep workers from redundantly regenerating
/// (and momentarily duplicating) multi-hundred-MB inputs. The per-key
/// `OnceLock` means concurrent requests for the *same* graph block only
/// each other, never requests for different graphs.
fn input_cache() -> &'static Mutex<HashMap<InputKey, InputCell>> {
    static CACHE: OnceLock<Mutex<HashMap<InputKey, InputCell>>> = OnceLock::new();
    CACHE.get_or_init(Default::default)
}

/// Environment variable naming a directory where generated inputs are
/// persisted as `minnow-csr-image/v1` files. When set, [`WorkloadKind::input`]
/// loads cache hits from disk instead of regenerating, which turns repeated
/// sweep invocations at the same scale/seed from minutes of generation into
/// an mmap.
pub const IMAGE_CACHE_ENV: &str = "MINNOW_IMAGE_CACHE";

/// Key identifying one external graph file: path, format, load mode,
/// sortedness.
type FileKey = (PathBuf, &'static str, &'static str, bool);

/// Process-wide cache of file-ingested inputs, sharing one `Arc<Csr>` per
/// (path, mode, sortedness) across every sweep worker, exactly like
/// [`input_cache`] does for generated graphs.
fn file_cache() -> &'static Mutex<HashMap<FileKey, Arc<Csr>>> {
    static CACHE: OnceLock<Mutex<HashMap<FileKey, Arc<Csr>>>> = OnceLock::new();
    CACHE.get_or_init(Default::default)
}

/// Loads a graph from an external file (any [`io::GraphSource`] format;
/// `source: None` detects it from the extension) through the process-wide
/// cache.
///
/// With `require_sorted` the returned graph is guaranteed to have sorted
/// adjacency — TC's `operator_on` panics otherwise. Sorting a mapped image
/// copies it to owned storage first; pre-sorted images (the common case:
/// everything `minnow-ingest` writes is canonically sorted) stay zero-copy.
///
/// Errors are not cached: a fixed file can be retried with the same path.
pub fn file_input(
    path: &Path,
    source: Option<io::GraphSource>,
    mode: LoadMode,
    require_sorted: bool,
) -> Result<Arc<Csr>, ParseError> {
    let key = (
        path.to_path_buf(),
        source.map_or("detect", |s| s.label()),
        mode.label(),
        require_sorted,
    );
    if let Some(g) = file_cache().lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return Ok(g.clone());
    }
    // Load outside the lock: a rare concurrent miss duplicates the read but
    // never serializes unrelated loads behind it.
    let mut g = io::read_file(path, source, mode)?;
    if require_sorted && !g.is_sorted() {
        g.sort_adjacency();
    }
    let arc = Arc::new(g);
    let mut map = file_cache().lock().unwrap_or_else(|e| e.into_inner());
    Ok(map.entry(key).or_insert(arc).clone())
}

/// The seven paper workloads (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Single-source shortest path on `USA-road-d.W`.
    Sssp,
    /// Breadth-first search on `r4-2e23`.
    Bfs,
    /// Graph500 BFS on `rmat16-2e22`.
    G500,
    /// Connected components on `wikipedia-20051105`.
    Cc,
    /// PageRank on `wiki-Talk`.
    Pr,
    /// Triangle counting on `com-dblp-sym`.
    Tc,
    /// Bipartite coloring on `amazon-ratings`.
    Bc,
}

impl WorkloadKind {
    /// All workloads in the paper's presentation order.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Sssp,
        WorkloadKind::Bfs,
        WorkloadKind::G500,
        WorkloadKind::Cc,
        WorkloadKind::Pr,
        WorkloadKind::Tc,
        WorkloadKind::Bc,
    ];

    /// Workload label as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Sssp => "SSSP",
            WorkloadKind::Bfs => "BFS",
            WorkloadKind::G500 => "G500",
            WorkloadKind::Cc => "CC",
            WorkloadKind::Pr => "PR",
            WorkloadKind::Tc => "TC",
            WorkloadKind::Bc => "BC",
        }
    }

    /// The algorithm column of Table 2.
    pub fn algorithm(self) -> &'static str {
        match self {
            WorkloadKind::Sssp => "Single-Source Shortest Path (delta-stepping)",
            WorkloadKind::Bfs | WorkloadKind::G500 => "Breadth-First Search (push)",
            WorkloadKind::Cc => "Connected Components (min-label)",
            WorkloadKind::Pr => "PageRank (push, data-driven)",
            WorkloadKind::Tc => "Triangle Counting (node-iterator-hashed)",
            WorkloadKind::Bc => "Bipartite Coloring",
        }
    }

    /// The Table 1 input this workload runs on.
    pub fn input_name(self) -> &'static str {
        match self {
            WorkloadKind::Sssp => "USA-road-d.W",
            WorkloadKind::Bfs => "r4-2e23",
            WorkloadKind::G500 => "rmat16-2e22",
            WorkloadKind::Cc => "wikipedia-20051105",
            WorkloadKind::Pr => "wiki-Talk",
            WorkloadKind::Tc => "com-dblp-sym",
            WorkloadKind::Bc => "amazon-ratings",
        }
    }

    /// Returns this workload's input analogue at the given scale, generated
    /// at most once per process and shared thereafter (see [`input_cache`]).
    ///
    /// Inputs are immutable (`Arc<Csr>`): operators never write the graph,
    /// so one copy safely serves any number of concurrent simulation points.
    pub fn input(self, scale: f64, seed: u64) -> Arc<Csr> {
        let key = (self, scale.to_bits(), seed);
        let cell = {
            let mut map = input_cache().lock().unwrap_or_else(|e| e.into_inner());
            map.entry(key).or_default().clone()
        };
        cell.get_or_init(|| {
            if let Some(dir) = std::env::var_os(IMAGE_CACHE_ENV).filter(|v| !v.is_empty()) {
                match self.input_via_image_cache(scale, seed, Path::new(&dir)) {
                    Ok(g) => return g,
                    Err(e) => eprintln!(
                        "minnow: image cache unusable for {self} scale {scale} ({e}); regenerating"
                    ),
                }
            }
            self.generate_input(scale, seed)
        })
        .clone()
    }

    /// [`Self::input`]'s disk-backed slow path, parameterized on the cache
    /// directory so it is testable without touching the environment: loads
    /// the input's `minnow-csr-image/v1` file when present, otherwise
    /// generates the graph and persists it (write-to-temp + rename, so a
    /// concurrent process never observes a half-written image).
    pub fn input_via_image_cache(
        self,
        scale: f64,
        seed: u64,
        dir: &Path,
    ) -> Result<Arc<Csr>, String> {
        let file = dir.join(format!(
            "{}-s{:016x}-r{seed}.mcsr",
            self.name().to_ascii_lowercase(),
            scale.to_bits()
        ));
        if file.exists() {
            return load_image(&file, LoadMode::Auto)
                .map(Arc::new)
                .map_err(|e| format!("{}: {e}", file.display()));
        }
        let g = self.generate_input(scale, seed);
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let tmp = dir.join(format!(
            ".{}-s{:016x}-r{seed}.{}.tmp",
            self.name().to_ascii_lowercase(),
            scale.to_bits(),
            std::process::id()
        ));
        write_image(&g, &tmp).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &file).map_err(|e| format!("{}: {e}", file.display()))?;
        Ok(g)
    }

    /// Generates a fresh, uncached input analogue at the given scale.
    pub fn generate_input(self, scale: f64, seed: u64) -> Arc<Csr> {
        Arc::new(match self {
            WorkloadKind::Sssp => inputs::usa_road(scale, seed),
            WorkloadKind::Bfs => inputs::r4(scale, seed + 1),
            WorkloadKind::G500 => inputs::rmat16(scale, seed + 2),
            WorkloadKind::Cc => inputs::wikipedia(scale, seed + 3),
            WorkloadKind::Pr => inputs::wiki_talk(scale, seed + 4),
            WorkloadKind::Tc => inputs::com_dblp(scale, seed + 5),
            WorkloadKind::Bc => inputs::amazon_ratings(scale, seed + 6),
        })
    }

    /// Builds the operator over a prepared input graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph violates the workload's requirements (e.g. an
    /// unsorted graph for TC).
    pub fn operator_on(self, graph: Arc<Csr>) -> Box<dyn Operator + Send> {
        match self {
            WorkloadKind::Sssp => Box::new(Sssp::new(graph, 0, 3)),
            WorkloadKind::Bfs | WorkloadKind::G500 => Box::new(Bfs::new(graph, 0)),
            WorkloadKind::Cc => Box::new(Cc::new(graph)),
            WorkloadKind::Pr => Box::new(PageRank::new(graph, 1e-4)),
            WorkloadKind::Tc => Box::new(Tc::new(graph)),
            WorkloadKind::Bc => Box::new(Bc::new(graph)),
        }
    }

    /// Generates the input and builds the operator in one step.
    pub fn build(self, scale: f64, seed: u64) -> Box<dyn Operator + Send> {
        self.operator_on(self.input(scale, seed))
    }

    /// A BFS source with non-trivial reach (node 0 works for every
    /// generated analogue; exposed for documentation).
    pub fn source(self) -> NodeId {
        0
    }

    /// The OBIM bucket-interval exponent to program into Minnow engines for
    /// this workload (derived from the default policy; 0 for unordered
    /// workloads).
    pub fn lg_bucket(self) -> u32 {
        match self.build_policy() {
            minnow_runtime::PolicyKind::Obim(lg) => lg,
            _ => 0,
        }
    }

    /// The default scheduling policy without building an operator.
    pub fn build_policy(self) -> minnow_runtime::PolicyKind {
        match self {
            WorkloadKind::Sssp => minnow_runtime::PolicyKind::Obim(3),
            WorkloadKind::Bfs | WorkloadKind::G500 => minnow_runtime::PolicyKind::Obim(0),
            WorkloadKind::Cc => minnow_runtime::PolicyKind::Obim(4),
            WorkloadKind::Pr => minnow_runtime::PolicyKind::Obim(2),
            WorkloadKind::Tc | WorkloadKind::Bc => minnow_runtime::PolicyKind::Chunked(16),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_runtime::sim_exec::{run_software, ExecConfig};

    #[test]
    fn every_workload_builds_runs_and_verifies() {
        for kind in WorkloadKind::ALL {
            let mut op = kind.build(0.06, 42);
            let mut cfg = ExecConfig::new(2);
            cfg.task_limit = 2_000_000;
            let policy = op.default_policy();
            let report = run_software(op.as_mut(), policy, &cfg);
            assert!(!report.timed_out, "{kind} timed out");
            op.check().unwrap_or_else(|e| panic!("{kind} wrong: {e}"));
            assert!(report.tasks > 0, "{kind} executed nothing");
        }
    }

    #[test]
    fn inputs_are_cached_and_shared_across_threads() {
        let a = WorkloadKind::Bfs.input(0.02, 999);
        let b = WorkloadKind::Bfs.input(0.02, 999);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one graph");

        let fresh = WorkloadKind::Bfs.generate_input(0.02, 999);
        assert!(!Arc::ptr_eq(&a, &fresh), "generate_input must not cache");
        assert_eq!(*a, *fresh, "cached and fresh generation must agree");

        let other = WorkloadKind::Bfs.input(0.02, 1000);
        assert!(!Arc::ptr_eq(&a, &other), "different seeds are distinct keys");

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| WorkloadKind::Cc.input(0.02, 7)))
                .collect();
            let graphs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for g in &graphs[1..] {
                assert!(Arc::ptr_eq(&graphs[0], g), "threads must share one copy");
            }
        });
    }

    #[test]
    fn image_cache_round_trips_generated_inputs() {
        let dir = std::env::temp_dir().join(format!("minnow-imgcache-{}", std::process::id()));
        let kind = WorkloadKind::Bfs;
        let fresh = kind.generate_input(0.02, 31);
        let miss = kind.input_via_image_cache(0.02, 31, &dir).unwrap();
        assert_eq!(*fresh, *miss, "cache miss must generate the same graph");
        let hit = kind.input_via_image_cache(0.02, 31, &dir).unwrap();
        assert!(!Arc::ptr_eq(&miss, &hit), "hit comes from disk, not memory");
        assert_eq!(*miss, *hit, "disk round-trip must be lossless");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_input_caches_sorts_and_surfaces_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("minnow-fileinput-{}.el", std::process::id()));
        // Adjacency of node 0 is deliberately out of order.
        std::fs::write(&path, "0 2\n0 1\n1 2\n2 0\n2 1\n1 0\n").unwrap();

        let a = file_input(&path, None, LoadMode::Auto, false).unwrap();
        let b = file_input(&path, None, LoadMode::Auto, false).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one graph");
        assert!(!a.is_sorted());

        let sorted = file_input(&path, None, LoadMode::Auto, true).unwrap();
        assert!(sorted.is_sorted(), "require_sorted must deliver sorted adjacency");
        assert!(!Arc::ptr_eq(&a, &sorted), "sortedness is part of the key");
        // Sorted adjacency is exactly what TC demands.
        let mut op = WorkloadKind::Tc.operator_on(sorted);
        let report = run_software(
            op.as_mut(),
            minnow_runtime::PolicyKind::Chunked(16),
            &ExecConfig::new(1),
        );
        assert!(report.tasks > 0);

        std::fs::remove_file(&path).unwrap();
        let missing = dir.join("minnow-no-such-file.el");
        assert!(file_input(&missing, None, LoadMode::Auto, false).is_err());
    }

    #[test]
    fn names_and_inputs_are_distinct() {
        let mut names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
        assert_eq!(WorkloadKind::Sssp.to_string(), "SSSP");
        assert!(WorkloadKind::Tc.algorithm().contains("Triangle"));
    }

    #[test]
    fn bfs_and_g500_share_algorithm_but_not_input() {
        assert_eq!(
            WorkloadKind::Bfs.algorithm(),
            WorkloadKind::G500.algorithm()
        );
        assert_ne!(
            WorkloadKind::Bfs.input_name(),
            WorkloadKind::G500.input_name()
        );
    }
}

//! # minnow-prefetch — baseline hardware prefetchers
//!
//! The comparison points of the paper's Fig. 17/20:
//!
//! * [`stride::StridePrefetcher`] — a classic table-based stride prefetcher,
//! * [`imp::Imp`] — the Indirect Memory Prefetcher (Yu et al., MICRO 2015),
//!   which extends stride streams to `A[B[i]]` patterns by reading index
//!   values out of cached memory.
//!
//! Both attach to a core's L2 through the
//! [`minnow_sim::observer::HwPrefetcher`] interface and issue marked fills,
//! so the same cache-level prefetch-efficiency accounting used for Minnow's
//! worklist-directed prefetching applies to them (paper Fig. 20 compares
//! IMP's efficiency directly).
//!
//! Their structural weaknesses — reactive operation, fixed prefetch
//! distance, no feedback throttling — are modeled faithfully, because they
//! are exactly what the paper's comparison hinges on: "if the prefetched
//! graph node has equal to or fewer edges than the prefetch distance, then
//! every issued prefetch request will be incorrect" (§6.3.3).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod imp;
pub mod stride;

pub use crate::imp::Imp;
pub use crate::stride::StridePrefetcher;

//! Classic table-based stride prefetcher.
//!
//! Tracks one stream per (core, address region): when consecutive demand
//! loads in a region exhibit a stable stride, it prefetches
//! `addr + stride * distance`. Two-bit confidence avoids training on noise.
//! Graph node accesses are data-dependent (no stride), so in practice only
//! the sequential edge-array stream triggers — which is why the paper finds
//! basic stride prefetching largely ineffective on graph workloads.

use minnow_sim::cycles::Cycle;
use minnow_sim::hierarchy::MemoryHierarchy;
use minnow_sim::observer::{HwPrefetchStats, HwPrefetcher, MemoryImage};

/// Address-region granularity used as the stream index (a stand-in for the
/// load PC: one static load instruction dominates each region's stream).
fn region_of(addr: u64) -> usize {
    ((addr >> 44) & 0xF) as usize
}

const REGIONS: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A per-core stride prefetcher.
#[derive(Debug)]
pub struct StridePrefetcher {
    /// `table[core][region]`.
    table: Vec<[StreamEntry; REGIONS]>,
    distance: i64,
    stats: HwPrefetchStats,
}

impl StridePrefetcher {
    /// Builds a stride prefetcher for `cores` cores with the given prefetch
    /// distance (in elements of the detected stride).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `distance == 0`.
    pub fn new(cores: usize, distance: u32) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(distance > 0, "distance must be positive");
        StridePrefetcher {
            table: vec![[StreamEntry::default(); REGIONS]; cores],
            distance: distance as i64,
            stats: HwPrefetchStats::default(),
        }
    }

    /// The configured prefetch distance.
    pub fn distance(&self) -> u32 {
        self.distance as u32
    }

    fn issue(&mut self, core: usize, target: u64, now: Cycle, mem: &mut MemoryHierarchy) {
        let res = mem.prefetch_fill(core, target, now);
        if res.filled {
            self.stats.issued += 1;
        } else {
            self.stats.already_resident += 1;
        }
    }
}

impl HwPrefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn on_demand_load(
        &mut self,
        core: usize,
        addr: u64,
        _value: Option<u64>,
        now: Cycle,
        mem: &mut MemoryHierarchy,
        _image: &dyn MemoryImage,
    ) {
        self.stats.observed += 1;
        let entry = &mut self.table[core][region_of(addr)];
        if !entry.valid {
            *entry = StreamEntry {
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return;
        }
        let observed = addr as i64 - entry.last_addr as i64;
        entry.last_addr = addr;
        if observed == 0 {
            return;
        }
        if observed == entry.stride {
            entry.confidence = (entry.confidence + 1).min(3);
        } else {
            entry.stride = observed;
            entry.confidence = entry.confidence.saturating_sub(1);
            return;
        }
        if entry.confidence >= 2 {
            let target = addr as i64 + entry.stride * self.distance;
            let stride = entry.stride;
            if target > 0 {
                let target = target as u64;
                // Only cross-line prefetches matter.
                if target >> 6 != addr >> 6 || stride.unsigned_abs() >= 64 {
                    self.issue(core, target, now, mem);
                }
            }
        }
    }

    fn stats(&self) -> HwPrefetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnow_sim::observer::EmptyImage;
    use minnow_sim::SimConfig;

    fn setup() -> (StridePrefetcher, MemoryHierarchy) {
        (
            StridePrefetcher::new(1, 4),
            MemoryHierarchy::new(&SimConfig::small(1)),
        )
    }

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let (mut p, mut mem) = setup();
        let base = 0x2000_0000_0000u64;
        for i in 0..8u64 {
            p.on_demand_load(0, base + i * 64, None, i * 10, &mut mem, &EmptyImage);
        }
        assert!(p.stats().issued > 0, "stable stride must prefetch");
        // The line 4 strides ahead of the last access is resident.
        assert!(mem.l2_cache(0).probe_prefetched(base + (7 + 4) * 64));
    }

    #[test]
    fn random_stream_stays_quiet() {
        let (mut p, mut mem) = setup();
        let addrs = [0x1000u64, 0x100040, 0x2340, 0x99900, 0x1700, 0x505050];
        for (i, a) in addrs.iter().enumerate() {
            p.on_demand_load(0, 0x1000_0000_0000 + a, None, i as u64, &mut mem, &EmptyImage);
        }
        assert_eq!(p.stats().issued, 0, "no stable stride, no prefetch");
    }

    #[test]
    fn stride_break_resets_confidence() {
        let (mut p, mut mem) = setup();
        let base = 0x2000_0000_0000u64;
        // Short runs of 3 (like 3-edge adjacency lists) separated by jumps.
        let mut issued_before = 0;
        for node in 0..10u64 {
            let start = base + node * 10_000;
            for i in 0..3u64 {
                p.on_demand_load(0, start + i * 16, None, node * 100 + i, &mut mem, &EmptyImage);
            }
            issued_before = p.stats().issued.max(issued_before);
        }
        // Some prefetches may fire but they target beyond the short runs:
        // efficiency (used/issued) must be poor.
        let s = mem.l2_cache(0).stats();
        assert_eq!(s.prefetch_used.get(), 0, "short runs never use +4 targets");
    }

    #[test]
    fn separate_regions_have_separate_streams() {
        let (mut p, mut mem) = setup();
        // Interleave two perfect streams in different regions.
        for i in 0..6u64 {
            p.on_demand_load(0, 0x1000_0000_0000 + i * 32, None, i, &mut mem, &EmptyImage);
            p.on_demand_load(0, 0x2000_0000_0000 + i * 16, None, i, &mut mem, &EmptyImage);
        }
        assert!(p.stats().issued >= 2, "both streams detected");
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_rejected() {
        let _ = StridePrefetcher::new(1, 0);
    }
}
